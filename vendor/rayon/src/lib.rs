//! Offline stand-in for the subset of the `rayon` crate API this workspace
//! uses. The build environment has no crates.io access, so the workspace
//! vendors a small, dependency-free scoped task pool with the same call
//! surface: [`scope`], [`Scope::spawn`], and
//! [`ThreadPoolBuilder`]/[`ThreadPool::scope`] for an explicit thread
//! count.
//!
//! Scheduling model: one shared FIFO injector queue per scope, drained by
//! `num_threads` OS workers plus the calling thread (which helps while it
//! waits). Tasks may spawn further tasks, so load balances dynamically —
//! a worker that finishes its subtree immediately pulls the next pending
//! one. This is work-*sharing* rather than rayon's per-worker-deque
//! work-*stealing*; for the coarse subtree tasks this workspace spawns
//! (thousands of nodes each) the queue is touched rarely and contention is
//! negligible.

#![deny(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

type Job<'s> = Box<dyn FnOnce(&Scope<'_, 's>) + Send + 's>;

struct Shared<'s> {
    queue: VecDeque<Job<'s>>,
    /// Jobs currently executing on some thread.
    active: usize,
    shutdown: bool,
}

struct ScopeState<'s> {
    shared: Mutex<Shared<'s>>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when the scope may have quiesced (queue empty, none active).
    idle: Condvar,
}

/// A scope in which tasks borrowing the environment (`'env`) can be
/// spawned; all tasks finish before [`scope`] returns.
pub struct Scope<'a, 'env> {
    state: &'a ScopeState<'env>,
}

impl<'a, 'env> Scope<'a, 'env> {
    /// Queues `f` for execution on the scope's pool. `f` receives the
    /// scope again and may spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_, 'env>) + Send + 'env,
    {
        let mut sh = self.state.shared.lock().expect("scope lock");
        sh.queue.push_back(Box::new(f));
        drop(sh);
        self.state.work.notify_one();
    }
}

/// Decrements `active` and signals `idle` even if the job panicked, so the
/// waiting caller wakes up and the panic can propagate through
/// `std::thread::scope` instead of deadlocking.
struct ActiveGuard<'a, 'env> {
    state: &'a ScopeState<'env>,
}

impl Drop for ActiveGuard<'_, '_> {
    fn drop(&mut self) {
        let mut sh = self.state.shared.lock().expect("scope lock");
        sh.active -= 1;
        let quiet = sh.active == 0 && sh.queue.is_empty();
        drop(sh);
        if quiet {
            self.state.idle.notify_all();
        }
    }
}

fn run_one<'env>(state: &ScopeState<'env>, job: Job<'env>) {
    let guard = ActiveGuard { state };
    job(&Scope { state });
    drop(guard);
}

fn worker_loop<'env>(state: &ScopeState<'env>) {
    let mut sh = state.shared.lock().expect("scope lock");
    loop {
        if let Some(job) = sh.queue.pop_front() {
            sh.active += 1;
            drop(sh);
            run_one(state, job);
            sh = state.shared.lock().expect("scope lock");
            continue;
        }
        if sh.shutdown {
            return;
        }
        sh = state.work.wait(sh).expect("scope lock");
    }
}

/// The caller thread helps drain the queue, then blocks until every
/// spawned task (including transitively spawned ones) has finished.
fn help_until_quiet<'env>(state: &ScopeState<'env>) {
    let mut sh = state.shared.lock().expect("scope lock");
    loop {
        if let Some(job) = sh.queue.pop_front() {
            sh.active += 1;
            drop(sh);
            run_one(state, job);
            sh = state.shared.lock().expect("scope lock");
            continue;
        }
        if sh.active == 0 {
            return;
        }
        sh = state.idle.wait(sh).expect("scope lock");
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
}

fn scope_with_threads<'env, F, R>(threads: usize, op: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    let state = ScopeState {
        shared: Mutex::new(Shared {
            queue: VecDeque::new(),
            active: 0,
            shutdown: false,
        }),
        work: Condvar::new(),
        idle: Condvar::new(),
    };
    // The caller thread helps, so spawn threads-1 extra workers.
    let extra = threads.max(1) - 1;
    std::thread::scope(|ts| {
        for _ in 0..extra {
            ts.spawn(|| worker_loop(&state));
        }
        let result = op(&Scope { state: &state });
        help_until_quiet(&state);
        let mut sh = state.shared.lock().expect("scope lock");
        sh.shutdown = true;
        drop(sh);
        state.work.notify_all();
        result
    })
}

/// Runs `op` with a task scope over the default-size pool; returns after
/// every spawned task completes.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    scope_with_threads(default_threads(), op)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses `n` threads (0 = default: available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this shim; the `Result` mirrors
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A pool with a fixed thread count (threads are scoped per [`ThreadPool::scope`]
/// call in this shim rather than persistent).
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// [`scope`] on this pool's threads.
    pub fn scope<'env, F, R>(&self, op: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        scope_with_threads(self.threads, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_tasks_run_and_scope_waits() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_spawns_complete() {
        let counter = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..4 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 + 32);
    }

    #[test]
    fn single_thread_pool_still_drains() {
        let counter = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scope_returns_op_result() {
        let r = scope(|_| 42u32);
        assert_eq!(r, 42);
    }
}
