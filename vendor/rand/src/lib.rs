//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses. The build environment has no crates.io access, so the workspace
//! vendors a small, dependency-free implementation with the same call
//! surface: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is SplitMix64-seeded xoshiro256**, which passes BigCrush;
//! streams are deterministic per seed (stable across platforms), which is
//! all the workspace relies on (seeded experiments and tests). It is NOT a
//! cryptographic RNG and makes no attempt to reproduce upstream `rand`'s
//! exact value streams.

#![forbid(unsafe_code)]

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided entropy (here: the clock and
    /// address-space layout — adequate for non-cryptographic sampling).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let marker: u64 = &t as *const _ as u64;
        Self::seed_from_u64(t ^ marker.rotate_left(32))
    }
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`Range` or `RangeInclusive` of the
    /// integer types used in this workspace).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        // 53-bit uniform in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself — the receiver of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, bound)` by rejection (Lemire-style
/// threshold on the low bits is overkill for our widths; plain rejection
/// on the modulus bias region keeps it simple and exact).
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty sample range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let r = u64::MAX % bound;
    if r == bound - 1 {
        // 2^64 is a multiple of `bound`: no bias region.
        return rng.next_u64() % bound;
    }
    // Accept x in [0, 2^64 − (r+1)), the largest multiple of `bound` ≤ 2^64.
    let last_accept = u64::MAX - r - 1;
    loop {
        let x = rng.next_u64();
        if x <= last_accept {
            return x % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (as recommended by its authors).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias kept for API parity.
    pub type SmallRng = StdRng;
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
