//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace vendors a minimal benchmark harness with the same call
//! surface: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short warm-up, then `sample_size`
//! timed samples where each sample runs the routine enough iterations to
//! exceed a minimum sample duration. Median / min / max per-iteration
//! times are printed as a fixed-width table — no plots, no statistics
//! beyond that. `CRITERION_QUICK=1` shrinks the workload for smoke runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from const-folding inputs
/// or dead-code-eliminating results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work units per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    target_samples: u64,
    min_sample: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fill `min_sample`?
        let t0 = Instant::now();
        black_box(routine());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.min_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.target_samples as usize);
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let dt = t.elapsed();
            samples.push(dt / per_sample as u32);
            self.iters_done += per_sample;
            self.total += dt;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let (min, max) = (samples[0], samples[samples.len() - 1]);
        println!(
            "    {:>12?}  (min {:>10?}, max {:>10?}, {} iters)",
            median, min, max, self.iters_done
        );
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Recorded for API parity; rates are not derived in this shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        println!("  {}/{}", self.name, id);
        let quick = quick_mode();
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            target_samples: if quick { 2 } else { self.sample_size as u64 },
            min_sample: if quick {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(20)
            },
        };
        f(&mut b);
    }

    /// Ends the group (separator line; kept for API parity).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("{name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(BenchmarkId::from(""), &mut f);
        g.finish();
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main()` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (`--bench`, filters); ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim/self_test");
        g.sample_size(2);
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                (0..x).map(black_box).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0, "routine executed");
    }
}
