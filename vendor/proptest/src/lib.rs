//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace vendors a small, dependency-light implementation with the same
//! call surface:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//!   `prop_shuffle`, ranges, tuples, [`arbitrary::any`],
//! * [`collection::vec`] and [`sample::subsequence`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Semantics: each test body runs for `ProptestConfig::cases` random cases
//! drawn from a per-test deterministic RNG (reproducible across runs and
//! platforms). There is **no shrinking** — on failure the case index and
//! seed are printed so the case can be replayed. `PROPTEST_CASES` in the
//! environment overrides the case count globally.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::seq::SliceRandom;
    use rand::Rng as _;

    /// A reusable recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Shuffles generated collections uniformly at random.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<S> {
        pub(crate) inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.new_value(rng);
            v.shuffle(&mut rng.0);
            v
        }
    }

    macro_rules! impl_strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_strategy_for_tuple {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_for_tuple! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for "an arbitrary value of this type".

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng as _, RngCore as _};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// Strategy for the full domain of `T` — see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — an arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// A range of collection sizes; built from `usize`, `a..b` or `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.lo..=self.hi_inclusive)
        }

        pub(crate) fn clamp_hi(&self, hi: usize) -> SizeRange {
            SizeRange {
                lo: self.lo.min(hi),
                hi_inclusive: self.hi_inclusive.min(hi),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s with element strategy `S` — see [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// `vec(element, size)` — vectors of `size` elements each drawn from
    /// `element`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod sample {
    //! Sampling from fixed collections.

    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::seq::SliceRandom as _;

    /// Strategy yielding order-preserving random subsequences — see
    /// [`subsequence`].
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
            let len = self.size.clamp_hi(self.values.len()).pick(rng);
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            idx.shuffle(&mut rng.0);
            idx.truncate(len);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// A random subsequence (subset in original order) of `values`, with
    /// length drawn from `size`.
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence { values, size: size.into() }
    }
}

pub mod test_runner {
    //! The per-test case loop driven by [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Sentinel returned by `prop_assume!` when a case is rejected.
    #[derive(Debug)]
    pub struct Rejected;

    /// Run-loop configuration. Only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count (`PROPTEST_CASES` env overrides).
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// The deterministic RNG handed to strategies.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// RNG for case `case` of the test named `name` — fully
        /// deterministic, so failures are replayable.
        pub fn for_case(name: &str, case: u64) -> (TestRng, u64) {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            let seed = h ^ case.wrapping_mul(0x9e3779b97f4a7c15);
            (TestRng(StdRng::seed_from_u64(seed)), seed)
        }
    }

    /// Runs the case loop: `run_case` is invoked once per case with a fresh
    /// deterministic RNG. Used by the [`crate::proptest!`] expansion.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut run_case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), Rejected>,
    {
        let cases = config.effective_cases();
        let mut rejected = 0u64;
        for case in 0..cases as u64 {
            let (mut rng, seed) = TestRng::for_case(name, case);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                || run_case(&mut rng),
            ));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(Rejected)) => rejected += 1,
                Err(payload) => {
                    eprintln!(
                        "proptest: {name} failed at case {case}/{cases} (seed {seed:#x})"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        // With everything rejected the test exercised nothing; surface it.
        assert!(
            (rejected as u32) < cases || cases == 0,
            "proptest: {name} rejected all {cases} cases via prop_assume!"
        );
    }
}

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Property-test harness macro: see the crate docs. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:ident in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $(let $p = $s;)+
            $crate::test_runner::run(
                stringify!($name),
                &__config,
                |__rng| {
                    $(let $p = $crate::strategy::Strategy::new_value(&$p, __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Rejects the current case (it is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_combinators() {
        let (mut rng, _) = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..200 {
            let x = (3u32..7).new_value(&mut rng);
            assert!((3..7).contains(&x));
            let (a, b) = (0usize..3, 5u32..=6).new_value(&mut rng);
            assert!(a < 3 && (5..=6).contains(&b));
            let v = crate::collection::vec(0u32..10, 2..5).new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
            let doubled = (1u32..4).prop_map(|k| k * 2).new_value(&mut rng);
            assert!([2, 4, 6].contains(&doubled));
            let nested = (2usize..5)
                .prop_flat_map(|n| crate::collection::vec(0u32..4, n))
                .new_value(&mut rng);
            assert!((2..5).contains(&nested.len()));
            let sub = crate::sample::subsequence((0u32..9).collect::<Vec<_>>(), 3..=5)
                .new_value(&mut rng);
            assert!((3..=5).contains(&sub.len()));
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "order-preserving");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: params bind, assume skips, asserts check.
        #[test]
        fn macro_smoke(n in 1u32..50, flip in any::<bool>()) {
            prop_assume!(n != 13);
            prop_assert!((1..50).contains(&n));
            prop_assert_eq!(flip as u32 <= 1, true);
        }
    }
}
