//! Offline stand-in for the subset of the `mio` non-blocking I/O crate
//! used by this workspace.
//!
//! The build environment has no crates.io access and the workspace
//! forbids `unsafe`, so this shim cannot talk to the OS readiness
//! facilities (`epoll`/`kqueue`) the real crate wraps. It preserves the
//! *contract* instead: [`Poll::poll`] is a **readiness hint** generator —
//! it parks the caller for a bounded tick and then reports every
//! registered source ready for its registered interests. The real `mio`
//! documents exactly this obligation on callers ("spurious events" are
//! allowed; a ready event is a hint to *attempt* the operation and
//! handle [`std::io::ErrorKind::WouldBlock`]), so code written against
//! this shim is also correct against the real crate — it just wakes on
//! a timer instead of on the kernel's edge.
//!
//! Sockets in [`net`] are thin wrappers over `std::net` with
//! `set_nonblocking(true)` applied, so `accept`/`read`/`write` return
//! `WouldBlock` rather than parking the event loop, exactly as mio's
//! do.
//!
//! Subset implemented: [`Token`], [`Interest`], [`Events`],
//! [`event::Event`], [`event::Source`], [`Poll`], [`Registry`], and
//! [`net::TcpListener`] / [`net::TcpStream`].

#![forbid(unsafe_code)]

use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Associates readiness events with the source that was registered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Interest set a source is registered with (readable and/or writable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const READABLE: Interest = Interest(0b01);
    pub const WRITABLE: Interest = Interest(0b10);

    /// Union of two interest sets.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

pub mod event {
    use super::{Interest, Registry, Token};
    use std::io;

    /// A single readiness event: the registered token plus which of the
    /// registered interests are (hinted) ready.
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        pub(crate) token: Token,
        pub(crate) interest: Interest,
    }

    impl Event {
        pub fn token(&self) -> Token {
            self.token
        }

        pub fn is_readable(&self) -> bool {
            self.interest.is_readable()
        }

        pub fn is_writable(&self) -> bool {
            self.interest.is_writable()
        }
    }

    /// An I/O source that can be registered with a [`Registry`].
    ///
    /// In this shim registration is pure bookkeeping (there is no OS
    /// selector to attach a descriptor to), so the default-style
    /// implementations on the `net` types simply record the token and
    /// interest in the registry's table.
    pub trait Source {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;

        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;

        fn deregister(&mut self, registry: &Registry) -> io::Result<()>;
    }
}

/// A collection of readiness events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    capacity: usize,
    events: Vec<event::Event>,
}

impl Events {
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            capacity: capacity.max(1),
            events: Vec::new(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, event::Event> {
        self.events.iter()
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a event::Event;
    type IntoIter = std::slice::Iter<'a, event::Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[derive(Debug, Default)]
struct RegistryState {
    /// `(token, interests)` per live registration, registration order.
    entries: Vec<(Token, Interest)>,
}

/// Handle used to register sources with a [`Poll`] instance.
#[derive(Debug, Clone)]
pub struct Registry {
    state: Arc<Mutex<RegistryState>>,
}

impl Registry {
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.register(self, token, interests)
    }

    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.reregister(self, token, interests)
    }

    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister(self)
    }

    /// Try to clone the registry handle (matches the real crate's API;
    /// cloning the inner `Arc` cannot fail here).
    pub fn try_clone(&self) -> io::Result<Registry> {
        Ok(self.clone())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryState> {
        // A panic while holding this mutex is a shim bug, not a caller
        // state: recover the table rather than poisoning the event loop.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn add(&self, token: Token, interests: Interest) -> io::Result<()> {
        let mut st = self.lock();
        if st.entries.iter().any(|(t, _)| *t == token) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "token already registered",
            ));
        }
        st.entries.push((token, interests));
        Ok(())
    }

    fn update(&self, token: Token, interests: Interest) -> io::Result<()> {
        let mut st = self.lock();
        match st.entries.iter_mut().find(|(t, _)| *t == token) {
            Some(entry) => {
                entry.1 = interests;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "token not registered",
            )),
        }
    }

    fn remove(&self, token: Token) -> io::Result<()> {
        let mut st = self.lock();
        let before = st.entries.len();
        st.entries.retain(|(t, _)| *t != token);
        if st.entries.len() == before {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "token not registered",
            ));
        }
        Ok(())
    }
}

/// Polls registered sources for readiness.
///
/// This shim has no OS selector: `poll` sleeps for at most the given
/// timeout (bounded by a small tick so shutdown stays responsive) and
/// then reports **every** registered source ready for its registered
/// interests. That is a valid — maximally spurious — implementation of
/// mio's level-triggered hint contract; callers must already tolerate
/// `WouldBlock` on the subsequent operation.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

/// The sleep quantum `poll` uses when the caller passes a long or
/// absent timeout, keeping the loop responsive to cross-thread state
/// changes (new writes queued, shutdown requested) that a real selector
/// would surface as wakeups.
const TICK: Duration = Duration::from_millis(1);

impl Poll {
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                state: Arc::new(Mutex::new(RegistryState::default())),
            },
        })
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Block for up to `timeout` (or one tick when `None`), then fill
    /// `events` with a readiness hint per registered source.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let wait = timeout.unwrap_or(TICK).min(TICK);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        let st = self.registry.lock();
        for &(token, interest) in st.entries.iter().take(events.capacity) {
            events.events.push(event::Event { token, interest });
        }
        Ok(())
    }
}

pub mod net {
    use super::{event, Interest, Registry, Token};
    use std::io::{self, Read, Write};
    use std::net::{self, SocketAddr, ToSocketAddrs};

    /// Registration bookkeeping shared by both socket types: remembers
    /// the token this source was registered under so `deregister` can
    /// find it.
    #[derive(Debug, Default)]
    struct Registration {
        token: Option<Token>,
    }

    impl Registration {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.add(token, interests)?;
            self.token = Some(token);
            Ok(())
        }

        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            if let Some(old) = self.token {
                if old != token {
                    registry.remove(old)?;
                    registry.add(token, interests)?;
                    self.token = Some(token);
                    return Ok(());
                }
            }
            registry.update(token, interests)?;
            self.token = Some(token);
            Ok(())
        }

        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            match self.token.take() {
                Some(token) => registry.remove(token),
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "source was never registered",
                )),
            }
        }
    }

    /// A non-blocking TCP listener.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: net::TcpListener,
        registration: Registration,
    }

    impl TcpListener {
        /// Bind and switch to non-blocking mode: `accept` returns
        /// `WouldBlock` instead of parking when no peer is pending.
        pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
            let inner = net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener {
                inner,
                registration: Registration::default(),
            })
        }

        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, addr) = self.inner.accept()?;
            stream.set_nonblocking(true)?;
            Ok((
                TcpStream {
                    inner: stream,
                    registration: Registration::default(),
                },
                addr,
            ))
        }

        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl event::Source for TcpListener {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            self.registration.register(registry, token, interests)
        }

        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            self.registration.reregister(registry, token, interests)
        }

        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            self.registration.deregister(registry)
        }
    }

    /// A non-blocking TCP stream.
    #[derive(Debug)]
    pub struct TcpStream {
        inner: net::TcpStream,
        registration: Registration,
    }

    impl TcpStream {
        /// Open a connection and switch it to non-blocking mode.
        ///
        /// Unlike the real crate this connects *synchronously* (std has
        /// no portable safe non-blocking connect); by the time the
        /// stream is returned it is writable, which only strengthens
        /// the readiness hints [`super::Poll::poll`] hands out.
        pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            let inner = net::TcpStream::connect(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpStream {
                inner,
                registration: Registration::default(),
            })
        }

        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        pub fn shutdown(&self, how: net::Shutdown) -> io::Result<()> {
            self.inner.shutdown(how)
        }

        /// Adopt an already-connected `std` stream (used by callers
        /// that accept via `std` or hold streams from elsewhere).
        pub fn from_std(stream: net::TcpStream) -> TcpStream {
            let _ = stream.set_nonblocking(true);
            TcpStream {
                inner: stream,
                registration: Registration::default(),
            }
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Read for &TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            (&self.inner).read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.inner.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    impl Write for &TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.inner).write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            (&self.inner).flush()
        }
    }

    impl event::Source for TcpStream {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            self.registration.register(registry, token, interests)
        }

        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            self.registration.reregister(registry, token, interests)
        }

        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            self.registration.deregister(registry)
        }
    }

    /// Helper used by tests and the `ToSocketAddrs`-style call sites:
    /// resolve a `host:port` string to the first address.
    pub fn first_addr(spec: &str) -> io::Result<SocketAddr> {
        spec.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn interest_algebra() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }

    #[test]
    fn registration_lifecycle_and_readiness_hints() {
        let mut poll = Poll::new().unwrap();
        let addr = net::first_addr("127.0.0.1:0").unwrap();
        let mut listener = net::TcpListener::bind(addr).unwrap();
        poll.registry()
            .register(&mut listener, Token(7), Interest::READABLE)
            .unwrap();
        // Double registration under the same token is an error.
        let mut other = net::TcpListener::bind(addr).unwrap();
        assert!(poll
            .registry()
            .register(&mut other, Token(7), Interest::READABLE)
            .is_err());

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        let ev = events.iter().find(|e| e.token() == Token(7)).unwrap();
        assert!(ev.is_readable() && !ev.is_writable());

        poll.registry().deregister(&mut listener).unwrap();
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().all(|e| e.token() != Token(7)));
    }

    #[test]
    fn nonblocking_accept_and_roundtrip() {
        let addr = net::first_addr("127.0.0.1:0").unwrap();
        let listener = net::TcpListener::bind(addr).unwrap();
        // No pending peer: WouldBlock, not a park.
        match listener.accept() {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            other => panic!("expected WouldBlock, got {other:?}"),
        }
        let target = listener.local_addr().unwrap();
        let mut client = net::TcpStream::connect(target).unwrap();
        let (mut served, _) = loop {
            match listener.accept() {
                Ok(pair) => break pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        };
        client.write_all(b"ping\n").unwrap();
        let mut buf = [0u8; 8];
        let got = loop {
            match served.read(&mut buf) {
                Ok(k) => break k,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("read failed: {e}"),
            }
        };
        assert_eq!(&buf[..got], b"ping\n");
    }
}
