//! General logical graphs — covering realistic (non-all-to-all) traffic.
//!
//! The paper closes by naming "more general logical graphs" as the next
//! instance class. This example generates four workload shapes on a
//! 16-node ring, covers each with DRC cycles, and compares cost against
//! the all-to-all optimum `ρ(16)`.
//!
//! ```sh
//! cargo run --example workload_driven
//! ```

use cyclecover::core::{general, rho};
use cyclecover::ring::Ring;
use cyclecover::workload;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let n = 16usize;
    let ring = Ring::new(n as u32);
    let mut rng = StdRng::seed_from_u64(2001);

    let instances: Vec<(&str, cyclecover::graph::Graph)> = vec![
        ("all-to-all", workload::all_to_all(n)),
        ("uniform p=0.3", workload::uniform_random(n, 0.3, &mut rng)),
        ("permutation", workload::permutation(n, &mut rng)),
        ("hotspot 2 hubs", workload::hotspot(n, 2, 0.9, 0.05, &mut rng)),
        ("locality d<=3", workload::locality(n, 3)),
    ];

    println!(
        "{:>16} {:>9} {:>8} {:>9} {:>8}",
        "workload", "requests", "cycles", "phantoms", "util%"
    );
    println!("{}", "-".repeat(56));
    for (name, inst) in &instances {
        let Some(got) = general::greedy_cover(ring, inst, 4) else {
            println!("{name:>16}: no requests");
            continue;
        };
        let covered = inst.edge_count();
        // Utilization: instance edges per chord-slot provisioned.
        let slots: usize = got.covering.tiles().iter().map(|t| t.len()).sum();
        println!(
            "{:>16} {:>9} {:>8} {:>9} {:>7.0}%",
            name,
            covered,
            got.covering.len(),
            got.phantom_edges.len(),
            100.0 * covered as f64 / slots as f64
        );
        assert!(general::covers_instance(&got.covering, inst));
    }
    println!("\nall-to-all optimum rho(16) = {} cycles", rho(16));
}
