//! The request/engine API in five minutes: certify the paper's worked
//! example `ρ(4) = 3` end to end, compare every registered engine on one
//! instance, and emit the JSON wire format a service would return.
//!
//! ```sh
//! cargo run --release --example engine_api
//! ```

use cyclecover::io::json::solution_to_json;
use cyclecover::solver::api::{
    engine_by_name, engines, LowerBoundProof, Optimality, Problem, SolveRequest,
};

fn main() {
    // --- The paper's worked example: rho(4) = 3, certified. -------------
    let problem = Problem::complete(4);
    let engine = engine_by_name("bitset").expect("bitset is always registered");
    let solution = engine.solve(&problem, &SolveRequest::find_optimal());

    assert_eq!(solution.size(), Some(3), "rho(4) = 3 per the paper");
    match solution.optimality() {
        Optimality::Optimal { lower_bound_proof } => match lower_bound_proof {
            LowerBoundProof::ExhaustiveSearch {
                infeasible_budget,
                nodes,
                symmetry_factor,
            } => println!(
                "rho(4) = 3 certified: budget {infeasible_budget} refuted \
                 exhaustively in {nodes} nodes (symmetry x{symmetry_factor})"
            ),
            LowerBoundProof::CombinatorialBound { bound } => {
                println!("rho(4) = 3 certified by the combinatorial bound {bound}")
            }
        },
        other => panic!("expected an optimality certificate, got {other:?}"),
    }

    // --- Same request, every engine that supports it. -------------------
    println!("\nrho(9) across the registry:");
    let problem = Problem::complete(9);
    let request = SolveRequest::find_optimal().with_max_nodes(100_000_000);
    for engine in engines() {
        if !engine.supports(&problem, &request) {
            continue;
        }
        let sol = engine.solve(&problem, &request);
        println!(
            "  {:16} size={:?} certificate={:10} nodes={} wall={:.1?}",
            engine.name(),
            sol.size(),
            match sol.optimality() {
                Optimality::Optimal { .. } => "OPTIMAL",
                Optimality::Feasible => "feasible",
                Optimality::Infeasible => "infeasible",
                Optimality::BudgetExhausted { .. } => "exhausted",
                Optimality::Failed { .. } => "failed",
            },
            sol.stats().nodes,
            sol.stats().wall
        );
    }

    // --- The wire format a solve service would hand back. ---------------
    let sol = engine_by_name("bitset")
        .expect("registered")
        .solve(&Problem::complete(6), &SolveRequest::find_optimal());
    println!("\nsolution JSON (n = 6):\n{}", solution_to_json(&sol));
}
