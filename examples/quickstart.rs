//! Quickstart: build an optimal survivable covering for a 13-node optical
//! ring and inspect it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cyclecover::core::{construct_optimal, rho};

fn main() {
    let n = 13;

    // The paper's Theorem 1: rho(13) = p(p+1)/2 with p = 6.
    println!("minimum number of protected subnetworks rho({n}) = {}", rho(n));

    // Build the covering: every request of K_13 lies in some cycle, and
    // every cycle routes edge-disjointly on the ring C_13.
    let covering = construct_optimal(n);
    assert_eq!(covering.len() as u64, rho(n));
    covering.validate().expect("construction is always valid");

    let stats = covering.stats();
    println!(
        "covering: {} cycles = {} triangles + {} quadrilaterals",
        stats.cycles, stats.c3, stats.c4
    );
    println!(
        "exact partition: {} (odd n: every request covered exactly once)",
        covering.is_exact_decomposition(1)
    );

    println!("\nthe cycles (vertices in ring order):");
    for (i, tile) in covering.tiles().iter().enumerate() {
        println!("  #{i:2}: {:?} gaps {:?}", tile.vertices(), tile.gaps(covering.ring()));
    }
}
