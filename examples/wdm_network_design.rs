//! End-to-end WDM ring design: the workflow the paper's introduction
//! describes — route the all-to-all demand set, divide the network into
//! independently-protected subnetworks, assign wavelength pairs, account
//! for ADMs and cost, then survive a fiber cut.
//!
//! ```sh
//! cargo run --example wdm_network_design
//! ```

use cyclecover::core::construct_optimal;
use cyclecover::net::{audit_all_failures, CostModel, WdmNetwork};

fn main() {
    // A 16-node metro ring (n ≡ 0 mod 8 exercises the solver-assisted path).
    let n = 16;
    let covering = construct_optimal(n);
    println!(
        "covering K_{n} with {} cycles (status: see construct_with_status)",
        covering.len()
    );

    // Each covering cycle becomes a subnetwork with a wavelength pair.
    let net = WdmNetwork::from_covering(&covering);
    println!("subnetworks : {}", net.subnetworks().len());
    println!("wavelengths : {} (working + spare per subnetwork)", net.wavelength_count());
    println!("ADMs        : {}", net.total_adms());

    // The paper's §2 cost discussion, quantified.
    for (name, model) in [
        ("paper (min cycles)", CostModel::subnetwork_count_objective()),
        ("refs [3,4] (min ADMs)", CostModel::adm_objective()),
        ("blended", CostModel::blended()),
    ] {
        println!("cost[{name}] = {:.1}", model.evaluate(&net));
    }

    // Cut one fiber and watch the automatic protection switching.
    let failed = 5;
    let report = net.fail_link(failed);
    println!("\nfiber cut on link {failed}: {} demands rerouted", report.reroutes.len());
    for r in report.reroutes.iter().take(5) {
        println!(
            "  subnet {:2}: demand {:?} moved to spare wavelength, {} -> {} links (stretch {:.1})",
            r.subnet,
            r.demand,
            r.working.len(),
            r.protection.len(),
            r.stretch()
        );
    }
    println!("  …");
    assert!(report.all_restored);

    // The paper's survivability claim, audited over every possible cut.
    let audit = audit_all_failures(&net);
    println!(
        "\nfull audit: {} reroutes across {} failure scenarios — all restored: {}",
        audit.total_reroutes, n, audit.fully_survivable
    );
}
