//! Exact-solver exploration: certify the paper's formulas on small rings
//! and poke at the machinery (tile universes, branch & bound, greedy,
//! Dancing Links).
//!
//! ```sh
//! cargo run --release --example solver_exploration
//! ```

use cyclecover::core::rho;
use cyclecover::ring::Ring;
use cyclecover::solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
use cyclecover::solver::lower_bound::capacity_lower_bound;
use cyclecover::solver::{dlx::ExactCover, greedy, TileUniverse};

fn main() {
    println!("exhaustive optimality on small rings (engine API):");
    let engine = engine_by_name("bitset").expect("registered engine");
    for n in 4u32..=9 {
        let problem = Problem::complete(n);
        let universe_size = problem.universe().len();
        let sol = engine.solve(
            &problem,
            &SolveRequest::find_optimal().with_max_nodes(1_000_000_000),
        );
        assert!(matches!(sol.optimality(), Optimality::Optimal { .. }));
        let opt = sol.size().expect("covering");
        println!(
            "  n={n}: universe={universe_size:4} tiles, optimum={opt} (rho={}, capacity LB={}), {} nodes",
            rho(n),
            capacity_lower_bound(n),
            sol.stats().nodes
        );
        assert_eq!(opt as u64, rho(n));
    }

    println!("\ngreedy baseline vs optimum:");
    for n in 5u32..=12 {
        let u = TileUniverse::new(Ring::new(n), 4);
        let g = greedy::greedy_cover(&u);
        println!("  n={n:2}: greedy={:3}  rho={}", g.len(), rho(n));
    }

    println!("\nDancing Links: perfect matchings of K_2m (exact cover counting):");
    for m in 2usize..=7 {
        let v = 2 * m;
        let mut ec = ExactCover::new(v);
        for i in 0..v {
            for j in (i + 1)..v {
                ec.add_row(&[i, j]);
            }
        }
        // (2m−1)!! perfect matchings.
        let count = ec.count_solutions(u64::MAX);
        println!("  K_{v}: {count} perfect matchings");
    }
}
