//! Trees of rings — the paper's first named extension topology.
//!
//! Builds a three-level metro network (a core ring with access rings
//! hanging off it), covers the all-to-all instance ring-by-ring, and
//! proves single-link survivability by exhaustive failure injection.
//!
//! ```sh
//! cargo run --example tree_of_rings
//! ```

use cyclecover::graph::builders;
use cyclecover::topo::{protect, tree_of_rings::TreeOfRingsBuilder};

fn main() {
    // Core ring of 6 offices; two aggregation rings on offices 0 and 3;
    // one access ring hanging off the first aggregation ring.
    let mut b = TreeOfRingsBuilder::root(6);
    let agg0 = b.attach(0, 0, 5);
    let _agg1 = b.attach(0, 3, 5);
    let hub = 8; // a fresh vertex of agg0 (6, 7, 8, 9 were created)
    let _access = b.attach(agg0, hub, 4);
    let t = b.build();

    println!(
        "topology: {} rings, {} nodes, {} fiber links",
        t.rings().len(),
        t.vertex_count(),
        t.graph().edge_count()
    );

    // Every request decomposes into per-ring segments through the hubs.
    let (u, v) = (4u32, t.vertex_count() as u32 - 1);
    println!("\nrequest ({u}, {v}) traverses:");
    for (ring, a, bb) in t.segments(u, v) {
        println!("  ring #{ring}: segment {a} -> {bb}");
    }

    // Cover all-to-all traffic: each ring independently covers the
    // segments that cross it (the paper's "independent sub-networks").
    let inst = builders::complete(t.vertex_count());
    let cover = t.cover(&inst, 4);
    let seg_inst = t.segment_instance(&inst);
    cover
        .validate(t.graph(), &seg_inst)
        .expect("per-ring coverings cover every segment");
    println!(
        "\ncovering: {} cycles protect {} segment-requests",
        cover.len(),
        seg_inst.edge_count()
    );

    // Fail every fiber link; every affected demand must reroute inside
    // its cycle.
    let audit = protect::audit_link_failures(t.graph(), &cover);
    println!(
        "failure audit: {} links failed, fully survivable = {}, worst detour = {} hops",
        t.graph().edge_count(),
        audit.fully_survivable,
        audit.worst_detour
    );
    assert!(audit.fully_survivable);
}
