//! Persist a design, reload it, and render it — the operator loop.
//!
//! A covering is a deployable artifact: this example constructs one,
//! saves it in the v1 text format, re-loads it (parsing re-validates
//! every cycle against the DRC), diffs it against the original, and
//! renders both a ring SVG and a torus SVG into `target/`.
//!
//! ```sh
//! cargo run --example persist_and_render
//! ```

use cyclecover::core::construct_optimal;
use cyclecover::graph::builders;
use cyclecover::io::{format, svg};
use cyclecover::topo::{mesh_cover, GridTopology};

fn main() {
    let out_dir = std::path::Path::new("target");
    std::fs::create_dir_all(out_dir).expect("target dir");

    // 1. Construct and persist.
    let cover = construct_optimal(11);
    let text = format::to_text(&cover);
    let file = out_dir.join("k11_covering.txt");
    std::fs::write(&file, &text).expect("write covering");
    println!("saved {} cycles to {}", cover.len(), file.display());

    // 2. Reload: the parser re-validates ranges, arities and the DRC.
    let loaded = format::from_text(&std::fs::read_to_string(&file).unwrap()).expect("parses");
    assert_eq!(loaded.len(), cover.len());
    assert!(loaded.validate().is_ok());
    assert_eq!(format::to_text(&loaded), text, "round trip is a fixpoint");
    println!("reloaded and re-validated: OK");

    // 3. Render the ring covering.
    let ring_svg = svg::render_covering(&loaded, &svg::SvgOptions::default());
    let ring_file = out_dir.join("k11_covering.svg");
    std::fs::write(&ring_file, ring_svg).expect("write svg");
    println!("rendered ring covering to {}", ring_file.display());

    // 4. Render a torus covering on the mesh layout (first 12 cycles for
    //    legibility).
    let torus = GridTopology::torus(3, 4);
    let tcover = mesh_cover::cover_torus(&torus);
    tcover
        .validate(torus.graph(), &builders::complete(12))
        .expect("valid");
    let cycles: Vec<Vec<u32>> = tcover
        .cycles()
        .iter()
        .take(12)
        .map(|rc| rc.cycle.vertices().to_vec())
        .collect();
    let mesh_svg = svg::render_mesh_covering(3, 4, &cycles, &svg::SvgOptions::default());
    let mesh_file = out_dir.join("torus_3x4_covering.svg");
    std::fs::write(&mesh_file, mesh_svg).expect("write svg");
    println!(
        "rendered {} of {} torus cycles to {}",
        cycles.len(),
        tcover.len(),
        mesh_file.display()
    );
}
