//! Certificates in action: establish the full verification story for a
//! sweep of ring sizes and print the design report for one of them.
//!
//! ```sh
//! cargo run --release --example certified_design
//! ```

use cyclecover::core::Certificate;
use cyclecover::net::{report::design_report, WdmNetwork};

fn main() {
    println!("optimality certificates, one per construction class:");
    for n in [9u32, 10, 12, 8, 16, 24, 61, 62] {
        let cert = Certificate::establish(n);
        println!("  {}", cert.summary());
    }

    println!("\nfull design report for the n = 26 metro ring:");
    let cert = Certificate::establish(26);
    let net = WdmNetwork::from_covering(&cert.covering);
    print!("{}", design_report(&net));

    println!("\nunprotected-routing comparison (the paper's 'half capacity' premise):");
    let ring = cert.covering.ring();
    let premium = cyclecover::net::wavelength::protection_premium(ring, cert.covering.len());
    println!(
        "  protected wavelengths / unprotected wavelengths = {premium:.2} (≈ 2 by design)"
    );
}
