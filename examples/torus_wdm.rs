//! Tori — structured coverings and wavelength reuse.
//!
//! On the ring, every covering cycle winds the whole ring, so cycles
//! can never share a wavelength. On a torus the picture changes: a
//! covering cycle occupies one row and two columns, footprints can be
//! disjoint, and wavelength assignment becomes conflict-graph coloring
//! — this example quantifies the reuse.
//!
//! ```sh
//! cargo run --example torus_wdm
//! ```

use cyclecover::color::{clique_lower_bound, conflict_graph, dsatur, verify_coloring};
use cyclecover::graph::builders;
use cyclecover::topo::{mesh_cover, protect, GridTopology};

fn main() {
    let torus = GridTopology::torus(4, 5);
    let n = torus.vertex_count();
    println!("physical topology: 4x5 torus, {n} switches, {} links", torus.graph().edge_count());

    // Structured covering: lifted ring coverings along rows/columns +
    // one crossed quad per combinatorial rectangle for the mixed traffic.
    let cover = mesh_cover::cover_torus(&torus);
    let inst = builders::complete(n);
    cover.validate(torus.graph(), &inst).expect("covers K_20");
    let stats = cover.stats(torus.graph());
    println!(
        "covering: {} cycles ({} C3, {} C4, {} longer), max link share {}",
        stats.cycles, stats.c3, stats.c4, stats.longer, stats.max_edge_load
    );

    // Wavelength assignment = coloring the conflict graph of footprints.
    let conflicts = conflict_graph(&cover.footprints());
    let coloring = dsatur(&conflicts);
    assert!(verify_coloring(&conflicts, &coloring));
    println!(
        "wavelengths: {} pairs via DSATUR (clique lower bound {}), vs {} pairs on a ring (no reuse)",
        coloring.count,
        clique_lower_bound(&conflicts),
        cover.len()
    );
    let reuse = cover.len() as f64 / coloring.count as f64;
    println!("wavelength reuse factor: {reuse:.2}x");

    // And the protection story still holds.
    let audit = protect::audit_link_failures(torus.graph(), &cover);
    println!(
        "failure audit: fully survivable = {}, worst detour = {} hops",
        audit.fully_survivable, audit.worst_detour
    );
    assert!(audit.fully_survivable);
}
