//! The paper's worked example as library usage: `G = C_4`, `I = K_4`.
//!
//! Shows how the DRC is checked and why the "obvious" two-C4 covering
//! fails while the C4+2×C3 covering works.
//!
//! ```sh
//! cargo run --example spaa_example
//! ```

use cyclecover::core::DrcCovering;
use cyclecover::graph::CycleSubgraph;
use cyclecover::ring::{routing, Ring};

fn main() {
    let ring = Ring::new(4);

    // Covering A: (1,2,3,4,1) and (1,3,4,2,1) in the paper's 1-based labels.
    let straight = CycleSubgraph::new(vec![0, 1, 2, 3]);
    let crossed = CycleSubgraph::new(vec![0, 2, 3, 1]);

    println!("cycle (1,2,3,4): routable = {}", routing::is_drc_routable(ring, &straight));
    println!("cycle (1,3,4,2): routable = {}", routing::is_drc_routable(ring, &crossed));
    println!("  -> requests (1,3) and (2,4) both need two of C4's four links;");
    println!("     no edge-disjoint assignment exists (the oracle proves it).");

    match DrcCovering::from_cycles(ring, &[straight.clone(), crossed]) {
        Err(e) => println!("covering A rejected: {e}"),
        Ok(_) => unreachable!("the paper (and our oracle) say this cannot happen"),
    }

    // Covering B: the C4 plus triangles (1,2,4) and (1,3,4).
    let t1 = CycleSubgraph::new(vec![0, 1, 3]);
    let t2 = CycleSubgraph::new(vec![0, 2, 3]);
    let cover = DrcCovering::from_cycles(ring, &[straight, t1, t2]).expect("valid");
    cover.validate().expect("covers all of K4");
    println!(
        "covering B accepted: {} cycles covering all {} requests — rho(4) = 3.",
        cover.len(),
        cover.coverage().support_size()
    );
}
