//! Protection vs restoration — the trade the paper's introduction frames.
//!
//! Cycle-covering *protection* pre-assigns a spare wavelength per
//! subnetwork: instant recovery, double capacity. *Restoration* shares a
//! pooled capacity and reroutes on demand: slower, cheaper. This example
//! sweeps ring sizes and prints the capacity premium protection pays for
//! its switching speed.
//!
//! ```sh
//! cargo run --example restoration_vs_protection
//! ```

use cyclecover::net::{compare_schemes, RestorationNetwork};
use cyclecover::ring::Ring;

fn main() {
    println!("{:>4} {:>12} {:>10} {:>12} {:>8}", "n", "protection", "working", "restoration", "ratio");
    println!("{}", "-".repeat(52));
    for n in [6u32, 8, 10, 12, 16, 20, 24, 32] {
        let cmp = compare_schemes(n);
        println!(
            "{:>4} {:>12} {:>10} {:>12} {:>8.2}",
            n,
            cmp.protection_wavelengths,
            cmp.working_capacity,
            cmp.restoration_capacity,
            cmp.protection_over_restoration
        );
    }

    // Under-provisioned restoration blocks demands; show the cliff.
    let n = 16u32;
    let probe = RestorationNetwork::all_to_all(Ring::new(n), u32::MAX);
    let full = probe.min_full_restoration_capacity();
    println!("\nC_{n}: blocking vs provisioned capacity (full restoration at {full}):");
    for cap in (full.saturating_sub(4))..=full {
        let net = RestorationNetwork::all_to_all(Ring::new(n), cap);
        let worst_blocked = (0..n)
            .map(|e| net.restore_failure(e).blocked)
            .max()
            .unwrap_or(0);
        println!("  capacity {cap:>3}: worst-case blocked demands = {worst_blocked}");
    }
}
