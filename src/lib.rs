//! Facade crate — re-exports the full cyclecover workspace API.
//!
//! One `use cyclecover::…` per subsystem:
//!
//! * [`core`] — the paper's contribution: `ρ(n)`, optimal constructions,
//!   covering validation, λ-fold and general-instance extensions;
//! * [`ring`] — the physical ring model: arcs, chords, tiles, the DRC
//!   oracle, ring loading;
//! * [`graph`] — the multigraph substrate: builders, traversal, max
//!   flow, connectivity;
//! * [`solver`] — exact covering solvers (DLX, branch & bound, greedy,
//!   local-search improvement) and lower bounds;
//! * [`design`] — classical covering designs (STS, packings, 4-cycle
//!   systems), the DRC-oblivious baselines;
//! * [`net`] — the WDM network simulator: wavelengths, ADMs, failures,
//!   protection vs restoration;
//! * [`topo`] — extension topologies: grids, tori, trees of rings;
//! * [`color`] — conflict-graph coloring for wavelength assignment;
//! * [`workload`] — traffic-instance generators;
//! * [`io`] — persistence (text format), the JSON wire protocol, CSV
//!   tables, SVG rendering;
//! * [`service`] — the batching solve service: universe cache, EDF
//!   scheduling, request coalescing over the engine registry.

pub use cyclecover_color as color;
pub use cyclecover_core as core;
pub use cyclecover_design as design;
pub use cyclecover_graph as graph;
pub use cyclecover_io as io;
pub use cyclecover_net as net;
pub use cyclecover_ring as ring;
pub use cyclecover_service as service;
pub use cyclecover_solver as solver;
pub use cyclecover_topo as topo;
pub use cyclecover_workload as workload;
