//! Property tests for the coloring machinery: validity on arbitrary
//! graphs, ordering of bounds (clique ≤ χ ≤ DSATUR ≤ Δ+1), and
//! conflict-graph construction from random footprints.

use cyclecover_color::{
    clique_lower_bound, conflict_graph, dsatur, exact_chromatic, greedy_coloring,
    largest_first_order, smallest_last_order, verify_coloring,
};
use cyclecover_graph::Graph;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<bool>(), n * (n - 1) / 2).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if bits[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All four algorithms produce valid colorings with coherent counts.
    #[test]
    fn bounds_chain_holds(g in arb_graph(11)) {
        let lf = greedy_coloring(&g, &largest_first_order(&g));
        let sl = greedy_coloring(&g, &smallest_last_order(&g));
        let ds = dsatur(&g);
        let ex = exact_chromatic(&g);
        for c in [&lf, &sl, &ds, &ex] {
            prop_assert!(verify_coloring(&g, c));
        }
        let clique = clique_lower_bound(&g);
        prop_assert!(clique <= ex.count);
        prop_assert!(ex.count <= ds.count);
        prop_assert!(ds.count as usize <= g.max_degree() + 1);
        prop_assert!(sl.count as usize <= g.max_degree() + 1);
    }

    /// Conflict graphs: edge iff footprints intersect — checked against
    /// a naive set-based reimplementation.
    #[test]
    fn conflict_graph_matches_naive(
        fps in proptest::collection::vec(proptest::collection::vec(0u32..12, 0..5), 0..8)
    ) {
        let g = conflict_graph(&fps);
        prop_assert_eq!(g.vertex_count(), fps.len());
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                let naive = fps[i].iter().any(|x| fps[j].contains(x));
                prop_assert_eq!(g.has_edge(i as u32, j as u32), naive, "({}, {})", i, j);
            }
        }
    }

    /// Coloring a conflict graph yields a usable wavelength plan: no two
    /// same-color footprints intersect.
    #[test]
    fn wavelength_plan_is_conflict_free(
        fps in proptest::collection::vec(proptest::collection::vec(0u32..10, 1..4), 1..8)
    ) {
        let g = conflict_graph(&fps);
        let coloring = dsatur(&g);
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                if coloring.colors[i] == coloring.colors[j] {
                    prop_assert!(!fps[i].iter().any(|x| fps[j].contains(x)));
                }
            }
        }
    }
}
