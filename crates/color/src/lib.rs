//! # cyclecover-color
//!
//! Graph coloring for **wavelength assignment** — the "last phase of the
//! network design" the paper defers ("Here we do not consider the
//! allocation of wavelengths to the request (that is done later…)").
//!
//! On the ring every covering cycle winds the whole ring, so no two
//! subnetworks can share a wavelength and assignment is trivial
//! (`cycle i ↦ wavelength pair i`, see `cyclecover-net::wavelength`).
//! On the extension topologies this changes completely: a covering cycle
//! on a torus occupies only a few rows/columns, two cycles with disjoint
//! physical footprints can reuse a wavelength, and minimizing wavelengths
//! becomes graph coloring of the **conflict graph** (cycles adjacent iff
//! their routings share a physical link) — the objective of the paper's
//! reference \[4\] (Gerstel–Lin–Sasaki). This crate provides the coloring
//! machinery:
//!
//! * [`greedy_coloring`] — sequential greedy in a caller-chosen order;
//! * [`largest_first_order`] / [`smallest_last_order`] — classic orders
//!   (smallest-last is optimal on chordal graphs and never worse than
//!   `1 + max core degree`);
//! * [`dsatur`] — Brélaz's saturation-degree heuristic;
//! * [`exact_chromatic`] — exact branch-and-bound (small graphs), used
//!   to certify the heuristics in tests and experiments;
//! * [`verify_coloring`] / [`clique_lower_bound`] — validation and a
//!   cheap lower bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conflict;

pub use conflict::conflict_graph;

use cyclecover_graph::Graph;

/// A proper vertex coloring: `colors[v]` ∈ `0..count`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    /// Color per vertex.
    pub colors: Vec<u32>,
    /// Number of colors used.
    pub count: u32,
}

/// Checks that no edge is monochromatic and colors are dense `0..count`.
pub fn verify_coloring(g: &Graph, c: &Coloring) -> bool {
    if c.colors.len() != g.vertex_count() {
        return false;
    }
    if g.edges()
        .iter()
        .any(|e| c.colors[e.u() as usize] == c.colors[e.v() as usize])
    {
        return false;
    }
    let max = c.colors.iter().copied().max().map_or(0, |m| m + 1);
    max == c.count && (g.vertex_count() == 0) == (c.count == 0)
}

/// Sequential greedy coloring in the given vertex order: each vertex
/// takes the smallest color absent from its already-colored neighbors.
///
/// # Panics
/// Panics if `order` is not a permutation of `0..n`.
pub fn greedy_coloring(g: &Graph, order: &[u32]) -> Coloring {
    let n = g.vertex_count();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(!seen[v as usize], "duplicate vertex {v} in order");
        seen[v as usize] = true;
    }
    let mut colors = vec![u32::MAX; n];
    let mut forbidden = vec![u32::MAX; n.max(1)]; // stamp array: forbidden[c] == v means color c blocked for v
    let mut count = 0;
    for (stamp, &v) in order.iter().enumerate() {
        for w in g.neighbors(v) {
            let cw = colors[w as usize];
            if cw != u32::MAX {
                forbidden[cw as usize] = stamp as u32;
            }
        }
        let mut c = 0u32;
        while forbidden[c as usize] == stamp as u32 {
            c += 1;
        }
        colors[v as usize] = c;
        count = count.max(c + 1);
    }
    Coloring { colors, count }
}

/// Vertices by decreasing degree (Welsh–Powell order).
pub fn largest_first_order(g: &Graph) -> Vec<u32> {
    let mut order: Vec<u32> = (0..g.vertex_count() as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    order
}

/// Smallest-last order: repeatedly remove a minimum-degree vertex; color
/// in reverse removal order. Greedy on this order uses at most
/// `1 + degeneracy(g)` colors.
pub fn smallest_last_order(g: &Graph) -> Vec<u32> {
    let n = g.vertex_count();
    let mut deg: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n as u32)
            .filter(|&v| !removed[v as usize])
            .min_by_key(|&v| deg[v as usize])
            .expect("vertices remain");
        removed[v as usize] = true;
        order.push(v);
        for w in g.neighbors(v) {
            if !removed[w as usize] {
                deg[w as usize] -= 1;
            }
        }
    }
    order.reverse();
    order
}

/// DSATUR (Brélaz): repeatedly color the vertex with the most distinctly
/// colored neighbors (ties: higher degree), taking the smallest feasible
/// color. Exact on bipartite graphs, strong on the sparse conflict
/// graphs wavelength assignment produces.
pub fn dsatur(g: &Graph) -> Coloring {
    let n = g.vertex_count();
    let mut colors = vec![u32::MAX; n];
    let mut count = 0u32;
    // Saturation sets as bitmasks for ≤ 64 colors, Vec<bool> beyond; the
    // workspace's conflict graphs use far fewer than 64 wavelengths, so
    // the fast path is effectively always taken.
    let mut sat: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); n];
    for _ in 0..n {
        let v = (0..n as u32)
            .filter(|&v| colors[v as usize] == u32::MAX)
            .max_by_key(|&v| (sat[v as usize].len(), g.degree(v)))
            .expect("uncolored vertices remain");
        let mut c = 0u32;
        while sat[v as usize].contains(&c) {
            c += 1;
        }
        colors[v as usize] = c;
        count = count.max(c + 1);
        for w in g.neighbors(v) {
            if colors[w as usize] == u32::MAX {
                sat[w as usize].insert(c);
            }
        }
    }
    Coloring { colors, count }
}

/// A maximal-clique lower bound on the chromatic number, grown greedily
/// from each vertex in decreasing-degree order (cheap, surprisingly
/// tight on interval-like conflict graphs).
pub fn clique_lower_bound(g: &Graph) -> u32 {
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    let mut best = 1u32;
    for &seed in largest_first_order(g).iter().take(32) {
        let mut clique = vec![seed];
        for v in largest_first_order(g) {
            if v != seed && clique.iter().all(|&u| g.has_edge(u, v)) {
                clique.push(v);
            }
        }
        best = best.max(clique.len() as u32);
    }
    best
}

/// Exact chromatic number by branch and bound over color classes,
/// seeded with the DSATUR upper bound and the clique lower bound.
/// Exponential worst case — intended for graphs of ≤ ~40 vertices
/// (certification of heuristics in tests/experiments).
///
/// Returns the coloring and its (optimal) count.
pub fn exact_chromatic(g: &Graph) -> Coloring {
    let n = g.vertex_count();
    if n == 0 {
        return Coloring {
            colors: Vec::new(),
            count: 0,
        };
    }
    let ub = dsatur(g);
    let lb = clique_lower_bound(g);
    if ub.count == lb {
        return ub;
    }
    // Try successively smaller targets until infeasible.
    let mut best = ub;
    while best.count > lb {
        let target = best.count - 1;
        match try_color(g, target) {
            Some(c) => best = c,
            None => break,
        }
    }
    best
}

/// Backtracking k-coloring; vertices in smallest-last order, symmetry
/// broken by only allowing a vertex to open color `c` if colors `< c`
/// are all open already.
fn try_color(g: &Graph, k: u32) -> Option<Coloring> {
    let order = smallest_last_order(g);
    let n = g.vertex_count();
    let mut colors = vec![u32::MAX; n];
    fn go(g: &Graph, order: &[u32], pos: usize, k: u32, used: u32, colors: &mut Vec<u32>) -> bool {
        if pos == order.len() {
            return true;
        }
        let v = order[pos];
        let cap = (used + 1).min(k); // symmetry breaking
        for c in 0..cap {
            if g.neighbors(v).any(|w| colors[w as usize] == c) {
                continue;
            }
            colors[v as usize] = c;
            if go(g, order, pos + 1, k, used.max(c + 1), colors) {
                return true;
            }
            colors[v as usize] = u32::MAX;
        }
        false
    }
    if go(g, &order, 0, k, 0, &mut colors) {
        let count = colors.iter().copied().max().map_or(0, |m| m + 1);
        Some(Coloring { colors, count })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_graph::builders;

    fn check_all(g: &Graph, chromatic: u32) {
        let lf = greedy_coloring(g, &largest_first_order(g));
        let sl = greedy_coloring(g, &smallest_last_order(g));
        let ds = dsatur(g);
        let ex = exact_chromatic(g);
        for (name, c) in [("lf", &lf), ("sl", &sl), ("dsatur", &ds), ("exact", &ex)] {
            assert!(verify_coloring(g, c), "{name} invalid");
            assert!(c.count >= chromatic, "{name} below chromatic");
        }
        assert_eq!(ex.count, chromatic, "exact must hit the chromatic number");
        assert!(clique_lower_bound(g) <= chromatic);
    }

    #[test]
    fn complete_graphs() {
        for n in [1usize, 2, 3, 5, 7] {
            check_all(&builders::complete(n), n as u32);
        }
    }

    #[test]
    fn cycles_even_odd() {
        check_all(&builders::cycle(6), 2);
        check_all(&builders::cycle(7), 3);
        check_all(&builders::cycle(4), 2);
        check_all(&builders::cycle(3), 3);
    }

    #[test]
    fn paths_and_empty() {
        check_all(&builders::path(6), 2);
        check_all(&Graph::new(5), 1);
        check_all(&Graph::new(0), 0);
    }

    #[test]
    fn petersen_graph_is_3_chromatic() {
        // Outer C5 (0–4), inner pentagram (5–9), spokes.
        let mut g = Graph::new(10);
        for i in 0..5u32 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, 5 + i);
        }
        check_all(&g, 3);
    }

    #[test]
    fn wheel_graphs() {
        // W_6 (even cycle + hub): chromatic 4? C5 + hub = 4; C6 + hub = 3… wait:
        // odd wheel (odd rim) needs 4, even rim needs 3.
        for (rim, chi) in [(5u32, 4u32), (6, 3)] {
            let mut g = Graph::new(rim as usize + 1);
            for i in 0..rim {
                g.add_edge(i, (i + 1) % rim);
                g.add_edge(i, rim);
            }
            check_all(&g, chi);
        }
    }

    #[test]
    fn greedy_respects_any_order() {
        let g = builders::complete(6);
        let order: Vec<u32> = (0..6).rev().collect();
        let c = greedy_coloring(&g, &order);
        assert!(verify_coloring(&g, &c));
        assert_eq!(c.count, 6);
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn greedy_rejects_bad_order() {
        let g = builders::path(3);
        greedy_coloring(&g, &[0, 0, 2]);
    }

    #[test]
    fn random_graphs_heuristics_vs_exact() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = rng.gen_range(4..12);
            let mut g = Graph::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.35) {
                        g.add_edge(u, v);
                    }
                }
            }
            let ex = exact_chromatic(&g);
            assert!(verify_coloring(&g, &ex));
            let ds = dsatur(&g);
            assert!(ds.count >= ex.count);
            assert!(ds.count <= ex.count + 2, "DSATUR should be near-optimal here");
        }
    }

    #[test]
    fn smallest_last_bounds_degeneracy() {
        // A tree has degeneracy 1: smallest-last greedy uses ≤ 2 colors.
        let mut g = Graph::new(7);
        for v in 1..7u32 {
            g.add_edge(v / 2, v); // binary tree shape... parent(v)=v/2
        }
        let c = greedy_coloring(&g, &smallest_last_order(&g));
        assert!(verify_coloring(&g, &c));
        assert!(c.count <= 2);
    }
}
