//! Conflict graphs of resource footprints.
//!
//! Wavelength assignment reduces to coloring the graph whose vertices
//! are subnetworks and whose edges join subnetworks that *share a
//! physical link*. This module builds that graph from raw footprints
//! (sorted-deduplicated lists of physical edge indices), keeping the
//! crate independent of any particular covering representation.

use cyclecover_graph::Graph;

/// Builds the conflict graph of `footprints`: vertex `i` per footprint,
/// edge `{i, j}` iff the footprints intersect.
///
/// Footprints need not be sorted; each is deduplicated internally. The
/// construction sorts each footprint once and intersects with a linear
/// merge — `O(Σ|f| log |f| + k² · min|f|)` worst case, which is fine for
/// the ≤ few-thousand-cycle coverings of the workspace.
pub fn conflict_graph(footprints: &[Vec<u32>]) -> Graph {
    let k = footprints.len();
    let mut sorted: Vec<Vec<u32>> = footprints.to_vec();
    for f in &mut sorted {
        f.sort_unstable();
        f.dedup();
    }
    let mut g = Graph::new(k);
    for i in 0..k {
        for j in (i + 1)..k {
            if intersects(&sorted[i], &sorted[j]) {
                g.add_edge(i as u32, j as u32);
            }
        }
    }
    g
}

/// Linear merge intersection test on sorted slices.
fn intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_footprints_yield_empty_graph() {
        let g = conflict_graph(&[vec![0, 1], vec![2, 3], vec![4]]);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn shared_link_creates_conflict() {
        let g = conflict_graph(&[vec![0, 1], vec![1, 2], vec![3]]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn identical_footprints_form_a_clique() {
        let fp = vec![vec![5, 9], vec![9, 5], vec![5, 5, 9]];
        let g = conflict_graph(&fp);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn unsorted_input_handled() {
        let g = conflict_graph(&[vec![9, 1, 5], vec![2, 9]]);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(conflict_graph(&[]).vertex_count(), 0);
        let g = conflict_graph(&[vec![], vec![1]]);
        assert_eq!(g.edge_count(), 0);
    }
}
