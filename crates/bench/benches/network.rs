//! B5/B6 — WDM network benches: build-out and failure-recovery sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cyclecover_core::construct_optimal;
use cyclecover_net::{audit_all_failures, WdmNetwork};

fn bench_network_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/build");
    for n in [50u32, 101, 150] {
        let cover = construct_optimal(n);
        g.throughput(Throughput::Elements(cover.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &cover, |b, cover| {
            b.iter(|| WdmNetwork::from_covering(cover).wavelength_count())
        });
    }
    g.finish();
}

fn bench_failure_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/failure_audit");
    g.sample_size(20);
    for n in [20u32, 40, 60] {
        let cover = construct_optimal(n);
        let net = WdmNetwork::from_covering(&cover);
        g.throughput(Throughput::Elements(n as u64 * net.subnetworks().len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| audit_all_failures(net).total_reroutes)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_network_build, bench_failure_sweep);
criterion_main!(benches);
