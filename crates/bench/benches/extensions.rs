//! B7 — timing the extension subsystems: general-graph DRC oracle,
//! torus/tree coverings, conflict-graph coloring, ring loading.
//!
//! Complements B1–B6 (construction/checking/solving/network): these
//! groups calibrate the future-work machinery so the experiment tables
//! can state honest scaling claims (e.g., the torus construction is
//! linear in its output size; the DRC oracle is microseconds per quad).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclecover_color::{conflict_graph, dsatur};
use cyclecover_graph::{builders, CycleSubgraph};
use cyclecover_ring::loading::{all_to_all_demands, local_search_loading};
use cyclecover_ring::Ring;
use cyclecover_topo::drc::{route_cycle, DEFAULT_BUDGET};
use cyclecover_topo::{mesh_cover, protect, GridTopology, TreeOfRings};

fn bench_drc_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("drc_oracle");
    for (r, cols) in [(4u32, 4u32), (6, 6), (8, 8)] {
        let topo = GridTopology::torus(r, cols);
        // A crossed quad's diagonal pair — the hardest small cycle.
        let cyc = CycleSubgraph::new(vec![
            topo.vertex(0, 0),
            topo.vertex(r - 1, cols - 1),
            topo.vertex(0, cols - 1),
            topo.vertex(r - 1, 0),
        ]);
        g.bench_with_input(
            BenchmarkId::new("torus_quad", format!("{r}x{cols}")),
            &(&topo, &cyc),
            |b, (topo, cyc)| {
                b.iter(|| {
                    let out = route_cycle(black_box(topo.graph()), cyc, 2 * (r + cols), DEFAULT_BUDGET);
                    assert!(out.is_routed());
                })
            },
        );
    }
    g.finish();
}

fn bench_torus_cover(c: &mut Criterion) {
    let mut g = c.benchmark_group("torus_cover");
    g.sample_size(10);
    for (r, cols) in [(3u32, 4u32), (4, 5), (5, 6)] {
        let topo = GridTopology::torus(r, cols);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}x{cols}")),
            &topo,
            |b, topo| b.iter(|| mesh_cover::cover_torus(black_box(topo)).len()),
        );
    }
    g.finish();
}

fn bench_tree_cover(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_of_rings_cover");
    g.sample_size(10);
    for k in [2u32, 3, 4] {
        let t = TreeOfRings::chain(k, 6);
        let inst = builders::complete(t.vertex_count());
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("chain{k}x6")),
            &(&t, &inst),
            |b, (t, inst)| b.iter(|| t.cover(black_box(inst), 4).len()),
        );
    }
    g.finish();
}

fn bench_failure_audit(c: &mut Criterion) {
    let mut g = c.benchmark_group("topo_failure_audit");
    g.sample_size(10);
    let topo = GridTopology::torus(4, 5);
    let cover = mesh_cover::cover_torus(&topo);
    g.bench_function("torus_4x5_all_links", |b| {
        b.iter(|| {
            let audit = protect::audit_link_failures(black_box(topo.graph()), black_box(&cover));
            assert!(audit.fully_survivable);
        })
    });
    // Ablation: scoped-thread parallel sweep vs sequential, on a torus
    // big enough for the fan-out to matter.
    let big = GridTopology::torus(6, 8);
    let big_cover = mesh_cover::cover_torus(&big);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("torus_6x8_parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let audit = protect::audit_link_failures_parallel(
                        black_box(big.graph()),
                        black_box(&big_cover),
                        threads,
                    );
                    assert!(audit.fully_survivable);
                })
            },
        );
    }
    g.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavelength_coloring");
    for (r, cols) in [(3u32, 4u32), (4, 5), (5, 6)] {
        let topo = GridTopology::torus(r, cols);
        let cover = mesh_cover::cover_torus(&topo);
        let conflicts = conflict_graph(&cover.footprints());
        g.bench_with_input(
            BenchmarkId::new("dsatur", format!("{r}x{cols}")),
            &conflicts,
            |b, conflicts| b.iter(|| dsatur(black_box(conflicts)).count),
        );
    }
    g.finish();
}

fn bench_ring_loading(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_loading");
    for n in [12u32, 16, 24] {
        let ring = Ring::new(n);
        let demands = all_to_all_demands(ring);
        g.bench_with_input(
            BenchmarkId::new("local_search", n),
            &(ring, &demands),
            |b, (ring, demands)| b.iter(|| local_search_loading(*ring, black_box(demands)).max_load),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_drc_oracle,
    bench_torus_cover,
    bench_tree_cover,
    bench_failure_audit,
    bench_coloring,
    bench_ring_loading
);
criterion_main!(benches);
