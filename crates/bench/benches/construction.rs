//! B1/B2 — construction timing: the odd and even constructions are
//! effectively linear in output size (O(n²) tiles of O(1) each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cyclecover_core::{construct_optimal, odd};

fn bench_odd_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct/odd");
    for n in [21u32, 51, 101, 201, 401] {
        let tiles = cyclecover_core::rho(n);
        g.throughput(Throughput::Elements(tiles));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| odd::construct(n))
        });
    }
    g.finish();
}

fn bench_even_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct/even");
    for n in [22u32, 50, 102, 202, 402] {
        let tiles = cyclecover_core::rho(n);
        g.throughput(Throughput::Elements(tiles));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| construct_optimal(n))
        });
    }
    g.finish();
}

fn bench_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("validate");
    for n in [51u32, 101, 201] {
        let cover = construct_optimal(n);
        g.throughput(Throughput::Elements(cover.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &cover, |b, cover| {
            b.iter(|| cover.validate())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_odd_construction,
    bench_even_construction,
    bench_validation
);
criterion_main!(benches);
