//! B3 — DRC checking throughput: winding fast path vs exhaustive oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclecover_graph::CycleSubgraph;
use cyclecover_ring::{routing, Ring};
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

fn random_cycles(n: u32, k: usize, count: usize, seed: u64) -> Vec<CycleSubgraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut verts: Vec<u32> = (0..n).collect();
            verts.shuffle(&mut rng);
            verts.truncate(k);
            // Random order: half winding-ish (sorted), half shuffled.
            if rng.gen_bool(0.5) {
                verts.sort_unstable();
            }
            CycleSubgraph::new(verts)
        })
        .collect()
}

fn bench_winding_vs_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("drc_check");
    for (n, k) in [(32u32, 4usize), (64, 6), (128, 8)] {
        let ring = Ring::new(n);
        let cycles = random_cycles(n, k, 256, 7);
        g.bench_with_input(BenchmarkId::new("winding", format!("n{n}_k{k}")), &cycles, |b, cs| {
            b.iter(|| {
                cs.iter()
                    .filter(|cy| routing::winding_routing(ring, cy).is_some())
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("oracle", format!("n{n}_k{k}")), &cycles, |b, cs| {
            b.iter(|| {
                cs.iter()
                    .filter(|cy| routing::route_cycle(ring, cy).is_some())
                    .count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_winding_vs_oracle);
criterion_main!(benches);
