//! B4 — exact solver scaling: optimal covering search and the Dancing
//! Links exact-cover engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclecover_ring::Ring;
use cyclecover_solver::{bnb, dlx::ExactCover, greedy, TileUniverse};

fn bench_bnb_optimal(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/bnb_optimal");
    g.sample_size(10);
    for n in [6u32, 7, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            b.iter(|| bnb::solve_optimal(&u, 1_000_000_000).expect("solved").1)
        });
    }
    g.finish();
}

/// Bitset kernel vs the legacy multiplicity kernel on the same
/// infeasibility proof (`ρ(n) − 1` over the full universe) — the
/// before/after of the word-packed coverage refactor.
fn bench_kernel_comparison(c: &mut Criterion) {
    use cyclecover_solver::lower_bound::rho_formula;
    let mut g = c.benchmark_group("solver/kernel_infeasibility");
    g.sample_size(10);
    // Only even p makes the proof a real search (odd-n rho-1 is a 1-node
    // capacity prune); n = 8 is the smallest such instance.
    for n in [8u32] {
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let spec = bnb::CoverSpec::complete(n);
        let budget = rho_formula(n) as u32 - 1;
        g.bench_with_input(BenchmarkId::new("bitset", n), &n, |b, _| {
            b.iter(|| {
                let (o, s) = bnb::cover_spec_within_budget(&u, &spec, budget, u64::MAX);
                assert!(matches!(o, bnb::Outcome::Infeasible));
                s.nodes
            })
        });
        g.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, _| {
            b.iter(|| {
                let (o, s) = bnb::cover_spec_within_budget_legacy(&u, &spec, budget, u64::MAX);
                assert!(matches!(o, bnb::Outcome::Infeasible));
                s.nodes
            })
        });
    }
    g.finish();
}

/// The acceptance workload: certify `ρ(10)` (prove 12 infeasible, find a
/// 13-covering) — sequential bitset search and the rayon frontier search.
fn bench_rho10_certification(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/rho10_certify");
    g.sample_size(10);
    let u = TileUniverse::new(Ring::new(10), 10);
    let spec = bnb::CoverSpec::complete(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let (below, _) = bnb::cover_spec_within_budget(&u, &spec, 12, u64::MAX);
            assert!(matches!(below, bnb::Outcome::Infeasible));
            let (at, _) = bnb::cover_spec_within_budget(&u, &spec, 13, u64::MAX);
            assert!(matches!(at, bnb::Outcome::Feasible(_)));
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            let (below, _) =
                bnb::cover_spec_within_budget_parallel(&u, &spec, 12, u64::MAX, 0);
            assert!(matches!(below, bnb::Outcome::Infeasible));
            let (at, _) =
                bnb::cover_spec_within_budget_parallel(&u, &spec, 13, u64::MAX, 0);
            assert!(matches!(at, bnb::Outcome::Feasible(_)));
        })
    });
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/greedy_cover");
    for n in [12u32, 20, 30] {
        let u = TileUniverse::new(Ring::new(n), 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &u, |b, u| {
            b.iter(|| greedy::greedy_cover(u).len())
        });
    }
    g.finish();
}

fn bench_dlx(c: &mut Criterion) {
    // Exact cover: all perfect matchings of K_{2m} (classic DLX stressor).
    let mut g = c.benchmark_group("solver/dlx_matchings");
    for m in [4usize, 5, 6] {
        let v = 2 * m;
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter(|| {
                let mut ec = ExactCover::new(v);
                for i in 0..v {
                    for j in (i + 1)..v {
                        ec.add_row(&[i, j]);
                    }
                }
                ec.count_solutions(1_000_000)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bnb_optimal,
    bench_kernel_comparison,
    bench_rho10_certification,
    bench_greedy,
    bench_dlx
);
criterion_main!(benches);
