//! B4 — exact solver scaling through the engine API: optimal covering
//! search, kernel comparison, and the Dancing Links exact-cover engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclecover_ring::Ring;
use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest, SymmetryMode};
use cyclecover_solver::bnb::{budget_search_reference, CoverSpec, Outcome};
use cyclecover_solver::{dlx::ExactCover, greedy, TileUniverse};

fn bench_bnb_optimal(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/bnb_optimal");
    g.sample_size(10);
    let engine = engine_by_name("bitset").unwrap();
    for n in [6u32, 7, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let problem = Problem::complete(n);
            let request = SolveRequest::find_optimal().with_max_nodes(1_000_000_000);
            b.iter(|| {
                let sol = engine.solve(&problem, &request);
                assert!(matches!(sol.optimality(), Optimality::Optimal { .. }));
                sol.size()
            })
        });
    }
    g.finish();
}

/// Bitset kernel vs the legacy multiplicity kernel on the same
/// infeasibility proof (`ρ(n) − 1` over the full universe) — the
/// before/after of the word-packed coverage refactor, both behind the
/// engine boundary.
fn bench_kernel_comparison(c: &mut Criterion) {
    use cyclecover_solver::lower_bound::rho_formula;
    let mut g = c.benchmark_group("solver/kernel_infeasibility");
    g.sample_size(10);
    // Only even p makes the proof a real search (odd-n rho-1 is a 1-node
    // capacity prune); n = 8 is the smallest such instance.
    for n in [8u32] {
        let problem = Problem::complete(n);
        let request = SolveRequest::prove_infeasible(rho_formula(n) as u32 - 1);
        for kernel in ["bitset", "legacy"] {
            let engine = engine_by_name(kernel).unwrap();
            g.bench_with_input(BenchmarkId::new(kernel, n), &n, |b, _| {
                b.iter(|| {
                    let sol = engine.solve(&problem, &request);
                    assert!(matches!(sol.optimality(), Optimality::Infeasible));
                    sol.stats().nodes
                })
            });
        }
    }
    g.finish();
}

/// The PR-3 recursive search vs the iterative allocation-free core on
/// the same workload (the n = 8 budget-8 refutation, `SymmetryMode::Off`
/// so both explore the identical 97,465-node tree), plus the iterative
/// core with its residual-state memo on — the recursion-to-arena rewrite
/// and the memo's node cut, measured side by side.
fn bench_recursive_vs_iterative(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/recursive_vs_iterative");
    g.sample_size(10);
    let problem = Problem::complete(8);
    let spec = CoverSpec::complete(8);
    g.bench_function("recursive", |b| {
        b.iter(|| {
            let (outcome, stats) = budget_search_reference(
                problem.universe(),
                &spec,
                8,
                u64::MAX,
                SymmetryMode::Off,
            );
            assert_eq!(outcome, Outcome::Infeasible);
            stats.nodes
        })
    });
    let engine = engine_by_name("bitset").unwrap();
    for (label, memo) in [("iterative", false), ("iterative-memo", true)] {
        let request = SolveRequest::prove_infeasible(8)
            .with_symmetry(SymmetryMode::Off)
            .with_memo(memo);
        g.bench_function(label, |b| {
            b.iter(|| {
                let sol = engine.solve(&problem, &request);
                assert!(matches!(sol.optimality(), Optimality::Infeasible));
                sol.stats().nodes
            })
        });
    }
    g.finish();
}

/// The acceptance workload: certify `ρ(10)` (prove 12 infeasible, find a
/// 13-covering) — the sequential bitset engine and the rayon frontier
/// engine.
fn bench_rho10_certification(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/rho10_certify");
    g.sample_size(10);
    let problem = Problem::complete(10);
    for (label, engine) in [("sequential", "bitset"), ("parallel", "bitset-parallel")] {
        let engine = engine_by_name(engine).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| {
                let below = engine.solve(&problem, &SolveRequest::prove_infeasible(12));
                assert!(matches!(below.optimality(), Optimality::Infeasible));
                let at = engine.solve(&problem, &SolveRequest::within_budget(13));
                assert!(matches!(at.optimality(), Optimality::Feasible));
            })
        });
    }
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/greedy_cover");
    for n in [12u32, 20, 30] {
        let u = TileUniverse::new(Ring::new(n), 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &u, |b, u| {
            b.iter(|| greedy::greedy_cover(u).len())
        });
    }
    g.finish();
}

fn bench_dlx(c: &mut Criterion) {
    // Exact cover: all perfect matchings of K_{2m} (classic DLX stressor).
    let mut g = c.benchmark_group("solver/dlx_matchings");
    for m in [4usize, 5, 6] {
        let v = 2 * m;
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter(|| {
                let mut ec = ExactCover::new(v);
                for i in 0..v {
                    for j in (i + 1)..v {
                        ec.add_row(&[i, j]);
                    }
                }
                ec.count_solutions(1_000_000)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bnb_optimal,
    bench_kernel_comparison,
    bench_recursive_vs_iterative,
    bench_rho10_certification,
    bench_greedy,
    bench_dlx
);
criterion_main!(benches);
