//! B4 — exact solver scaling: optimal covering search and the Dancing
//! Links exact-cover engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclecover_ring::Ring;
use cyclecover_solver::{bnb, dlx::ExactCover, greedy, TileUniverse};

fn bench_bnb_optimal(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/bnb_optimal");
    g.sample_size(10);
    for n in [6u32, 7, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let u = TileUniverse::new(Ring::new(n), n as usize);
            b.iter(|| bnb::solve_optimal(&u, 1_000_000_000).expect("solved").1)
        });
    }
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/greedy_cover");
    for n in [12u32, 20, 30] {
        let u = TileUniverse::new(Ring::new(n), 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &u, |b, u| {
            b.iter(|| greedy::greedy_cover(u).len())
        });
    }
    g.finish();
}

fn bench_dlx(c: &mut Criterion) {
    // Exact cover: all perfect matchings of K_{2m} (classic DLX stressor).
    let mut g = c.benchmark_group("solver/dlx_matchings");
    for m in [4usize, 5, 6] {
        let v = 2 * m;
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter(|| {
                let mut ec = ExactCover::new(v);
                for i in 0..v {
                    for j in (i + 1)..v {
                        ec.add_row(&[i, j]);
                    }
                }
                ec.count_solutions(1_000_000)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bnb_optimal, bench_greedy, bench_dlx);
criterion_main!(benches);
