//! # cyclecover-bench
//!
//! The experiment harness for the reproduction: one binary per table /
//! figure of `EXPERIMENTS.md` (E1–E14) plus Criterion timing benches
//! (B1–B7). See `DESIGN.md` §4 for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cells.iter().zip(widths) {
        s.push_str(&format!("{c:>w$}  ", w = w));
    }
    s.trim_end().to_string()
}

/// Prints a header + underline for fixed-width columns.
pub fn header(names: &[&str], widths: &[usize]) {
    let cells: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    println!("{}", row(&cells, widths));
    let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", row(&underline, widths));
}
