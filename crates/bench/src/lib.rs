//! # cyclecover-bench
//!
//! The experiment harness for the reproduction: one binary per table /
//! figure of `EXPERIMENTS.md` (E1–E14) plus Criterion timing benches
//! (B1–B7). See `DESIGN.md` §4 for the experiment index.
//!
//! # `BENCH_*.json` provenance
//!
//! The `BENCH_<k>.json` files at the repository root are perf-trajectory
//! snapshots written by the `bench_snapshot` binary at the PR that
//! changed the solver, on the reference single-core container:
//!
//! * `BENCH_1.json` — PR 1 (bitset kernel): ρ(n ≤ 10) certification node
//!   counts, engines `bitset` vs `legacy`. These are the **exact** (±0)
//!   baselines the `SymmetryMode::Off` rows are gated against.
//! * `BENCH_3.json` — PR 3 (dihedral symmetry + stronger bounds): the
//!   same workload across the `off`/`root`/`full` symmetry dimension,
//!   plus the n = 12 certification rows.
//! * `BENCH_5.json` — PR 5 (iterative search core + residual-state
//!   memo): the symmetry dimension crossed with the memo off/on
//!   dimension, with per-row memo hit and canonical-prune counts. The
//!   `off` memo-off rows must still equal BENCH_1 ±0 (the iterative
//!   core's exactness gate) and the memo-on rows are the regression
//!   *ceilings* used by `bench_snapshot --quick --check`, the CI
//!   node-count gate — including the ρ(10) `root`+memo acceptance
//!   ceiling (≤ 400k witness nodes vs BENCH_3's 770,227).
//! * `BENCH_9.json` — PR 9 (λ-fold lane kernel): the unit sweep plus
//!   λ-fold rows certifying ρ_λ(n) on the packed 2-bit-lane kernel vs
//!   the frozen recursive `legacy` reference (legacy witness counts
//!   gated ±0, packed under ceilings *and* strictly under legacy), and
//!   the capped n = 16 budget-33 construction-gap probe, which must
//!   stay inconclusive (a certified row would close the ρ(16) gap).
//!
//! Node counts are deterministic and machine-independent; the `wall_ms`
//! fields are hardware noise and never gated on. Service-level
//! throughput (cache hit rate, coalescing, jobs/s) is snapshotted by the
//! `bench_service` binary, which asserts its queue exercises the
//! machinery but writes no baseline file — wall-clock on the shared box
//! is too noisy to gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cells.iter().zip(widths) {
        s.push_str(&format!("{c:>w$}  ", w = w));
    }
    s.trim_end().to_string()
}

/// Prints a header + underline for fixed-width columns.
pub fn header(names: &[&str], widths: &[usize]) {
    let cells: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    println!("{}", row(&cells, widths));
    let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", row(&underline, widths));
}
