//! Throughput snapshot of the batching solve service on a mixed,
//! workload-generated queue.
//!
//! Builds a reproducible (seeded) job queue mixing the shapes real
//! provisioning traffic has — repeated complete instances over a few
//! ring sizes, partial instances drawn from the `cyclecover-workload`
//! generators (uniform, locality, permutation demands), heuristic-engine
//! jobs, deadline-carrying jobs, and one already-expired job — then
//! drains it through [`SolveService`] and reports the service-level
//! numbers that matter for the "heavy traffic" north star: jobs/s,
//! universe-cache hit rate, coalescing rate, and per-engine node totals.
//!
//! Usage: `cargo run --release -p cyclecover-bench --bin bench_service
//! [-- --jobs N] [--workers N] [--cache-mb M] [--quick] [--json]
//! [--fault-plan plan.json]`
//!
//! Node counts and the hit/coalesce accounting are deterministic for a
//! given queue; wall-clock is hardware noise (see the ROADMAP bench
//! notes). `--json` prints the raw `cyclecover-batch-summary` document
//! instead of the table. `--fault-plan` installs a deterministic
//! fault-injection plan (see `docs/robustness.md`) so the resilience
//! columns — retries, degradations, failures per 1k jobs — exercise the
//! recovery paths; without it those columns measure the clean-path
//! overhead of the fault machinery, which must stay at zero.

use cyclecover_graph::Graph;
use cyclecover_io::json::SolveJob;
use cyclecover_service::{batch_summary_json, CertCache, FaultPlan, ServiceConfig, SolveService};
use cyclecover_solver::api::{Objective, SymmetryMode};
use cyclecover_solver::lower_bound::rho_formula;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn requests_of(g: &Graph) -> Vec<(u32, u32)> {
    g.edges().iter().map(|e| (e.u(), e.v())).collect()
}

/// The mixed queue: `count` jobs over rings `6..=max_n`, seeded.
fn build_queue(count: usize, max_n: u32, rng: &mut StdRng) -> Vec<SolveJob> {
    let mut jobs: Vec<SolveJob> = Vec::with_capacity(count);
    for i in 0..count {
        let n = rng.gen_range(6..=max_n);
        let mut job = SolveJob::new(format!("q{i}"), n);
        match i % 6 {
            // Complete certification — the ρ(n) workload.
            0 => {}
            // Feasibility probe just above the optimum, with a heuristic
            // fallback rung: unused on the clean path, the degradation
            // ladder's workload under a fault plan.
            1 => {
                job.objective = Objective::WithinBudget(rho_formula(n) as u32 + 1);
                job.fallback = vec!["greedy".to_string()];
            }
            // Heuristic upper bound (complete spec only).
            2 => job.engine = "greedy-improve".to_string(),
            // Partial instances from the workload generators.
            3 => {
                let g = cyclecover_workload::uniform_random(n as usize, 0.5, rng);
                let reqs = requests_of(&g);
                if !reqs.is_empty() {
                    job.requests = Some(reqs);
                }
            }
            4 => {
                let g = cyclecover_workload::locality(n as usize, 2);
                job.requests = Some(requests_of(&g));
            }
            _ => {
                let g = cyclecover_workload::permutation(n as usize, rng);
                let reqs = requests_of(&g);
                if !reqs.is_empty() {
                    job.requests = Some(reqs);
                }
                // A generous deadline: exercises the EDF path without
                // cutting anything short.
                job.deadline_ms = Some(60_000);
            }
        }
        // Every fourth job is an exact duplicate of an earlier one (new
        // id): the coalescing workload.
        if i % 4 == 3 && i > 0 {
            let mut dup = jobs[rng.gen_range(0..jobs.len())].clone();
            dup.id = format!("q{i}");
            job = dup;
        }
        jobs.push(job);
    }
    // One unmeetable deadline: the rejected-without-running path.
    let mut doomed = SolveJob::new("doomed", max_n);
    doomed.deadline_ms = Some(0);
    jobs.push(doomed);
    // A refutation/certification pair with the dihedral reduction off —
    // the one shape in this size range whose search does real memo work,
    // so the memo columns (and --shared-memo's cross-job reuse) measure
    // something: under a shared store the certification reuses the
    // refutation's entries.
    let mut refute = SolveJob::new("refute-off-8", 8);
    refute.objective = Objective::WithinBudget(rho_formula(8) as u32 - 1);
    refute.symmetry = Some(SymmetryMode::Off);
    jobs.push(refute);
    let mut certify = SolveJob::new("certify-off-8", 8);
    certify.symmetry = Some(SymmetryMode::Off);
    jobs.push(certify);
    jobs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 60usize;
    let mut workers = 1usize;
    let mut cache_mb = 64usize;
    let mut as_json = false;
    let mut shared_memo = false;
    let mut fault_plan: Option<FaultPlan> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jobs" => jobs = it.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).expect("--workers N"),
            "--cache-mb" => {
                cache_mb = it.next().and_then(|v| v.parse().ok()).expect("--cache-mb M")
            }
            "--quick" => jobs = 20,
            "--json" => as_json = true,
            "--shared-memo" => shared_memo = true,
            "--fault-plan" => {
                let path: &str = it.next().expect("--fault-plan plan.json");
                let text = std::fs::read_to_string(path).expect("readable fault plan");
                fault_plan = Some(FaultPlan::from_json(&text).expect("well-formed fault plan"));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    let max_n = 9;
    let mut rng = StdRng::seed_from_u64(2001);
    let queue = build_queue(jobs, max_n, &mut rng);

    let mut service = SolveService::new(ServiceConfig {
        workers,
        cache_bytes: cache_mb << 20,
        backoff_base_ms: 0,
        shared_memo,
        ..ServiceConfig::default()
    });
    service.set_cert_cache(CertCache::new());
    let faulted = fault_plan.is_some();
    if let Some(plan) = fault_plan {
        service.set_fault_plan(plan);
    }
    for job in queue.clone() {
        service.submit(job).expect("generated jobs are admissible");
    }
    let report = service.drain();

    if as_json {
        print!("{}", batch_summary_json(&report));
        return;
    }

    // Replay pass: the identical queue against the now-warm certificate
    // cache — the repeat-traffic shape the persistent cache exists for.
    // Terminal complete-spec certificates answer with zero kernel nodes.
    for job in queue {
        service.submit(job).expect("replayed jobs are admissible");
    }
    let replay = service.drain();
    let st = &report.stats;
    println!("bench_service — mixed workload queue (seeded, n <= {max_n})");
    println!(
        "jobs: {} submitted, {} solved, {} coalesced, {} expired, {} errors",
        st.submitted, st.solved, st.coalesced, st.expired, st.errors
    );
    let wall = st.wall.as_secs_f64();
    println!(
        "throughput: {:.1} jobs/s ({:.1} ms total, {workers} worker(s))",
        st.solved as f64 / wall.max(1e-9),
        wall * 1e3
    );
    println!(
        "universe cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {} KiB resident (budget {} MiB)",
        st.cache.hits,
        st.cache.misses,
        st.cache.hit_rate() * 100.0,
        st.cache.evictions,
        st.cache.bytes / 1024,
        cache_mb
    );
    println!(
        "queue wait: {:.3} ms mean over {} jobs",
        st.mean_queue_wait.as_secs_f64() * 1e3,
        report.jobs.len()
    );
    // Resilience columns, normalized per 1k jobs so runs of different
    // sizes compare: all-zero on a clean run (the fault machinery must
    // cost nothing when no plan is installed).
    let per_1k = |v: u64| v as f64 * 1000.0 / st.submitted.max(1) as f64;
    println!(
        "faults: {} injected | per 1k jobs: {:.1} retries, {:.1} degraded, {:.1} failed, {:.1} quarantined",
        st.faults_injected,
        per_1k(st.retries),
        per_1k(st.degraded as u64),
        per_1k(st.failed as u64),
        per_1k(st.quarantined as u64),
    );
    // Memo columns, same per-1k normalization: the cold pass shows the
    // refutation store's traffic ("shared" engages only under
    // --shared-memo); the replay pass shows the certificate cache
    // answering repeat traffic without the kernel.
    let rp = &replay.stats;
    let rp_1k = |v: u64| v as f64 * 1000.0 / rp.submitted.max(1) as f64;
    println!(
        "memo (cold pass), per 1k jobs: {:.1} memo hits, {:.1} shared hits, {:.1} cert-cache hits",
        per_1k(st.memo_hits),
        per_1k(st.shared_hits),
        per_1k(st.cert_cache_hits as u64),
    );
    println!(
        "memo (replay pass), per 1k jobs: {:.1} memo hits, {:.1} shared hits, {:.1} cert-cache hits",
        rp_1k(rp.memo_hits),
        rp_1k(rp.shared_hits),
        rp_1k(rp.cert_cache_hits as u64),
    );
    for e in &st.engines {
        println!(
            "engine {:16} {:4} solves, {:4} jobs served, {:10} nodes",
            e.name, e.solves, e.jobs, e.nodes
        );
    }
    // Sanity: the snapshot is only meaningful if the service-level
    // machinery actually engaged.
    assert!(st.cache.hits > 0, "no universe reuse in the mixed queue");
    assert!(st.coalesced > 0, "no coalescing in the mixed queue");
    assert_eq!(st.expired, 1, "the doomed job must expire");
    assert_eq!(st.errors, 0, "admission errors in the generated queue");
    assert_eq!(st.cert_cache_hits, 0, "a cold cache cannot hit");
    assert!(
        rp.cert_cache_hits > 0,
        "the replayed queue never hit the certificate cache"
    );
    if shared_memo {
        assert!(st.shared_hits > 0, "--shared-memo engaged no cross-job reuse");
    } else {
        assert_eq!(st.shared_hits, 0, "sharing is opt-in; the default must not engage it");
    }
    if faulted {
        assert!(
            st.faults_injected > 0,
            "a fault plan was installed but never fired"
        );
    } else {
        assert_eq!(st.faults_injected, 0, "clean run injected faults");
        assert_eq!(st.retries, 0, "clean run retried");
        assert_eq!(st.failed, 0, "clean run failed jobs");
    }
}
