//! E13 — the ring loading baseline (unprotected routing).
//!
//! The paper's planning split: routing, then resource allocation. This
//! table solves the classical ring loading problem on the all-to-all
//! instance — the minimum per-link capacity of an unprotected design —
//! with the three solvers (shortest-arc, local search, exact B&B) and
//! the capacity lower bound, certifying optimality where the exact
//! search completes.

use cyclecover_bench::{header, row};
use cyclecover_ring::loading::{
    all_to_all_demands, loading_lower_bound, local_search_loading, optimal_loading,
    shortest_loading,
};
use cyclecover_ring::Ring;

fn main() {
    println!("E13 — ring loading (min max link load) for all-to-all demands on C_n");
    println!();
    let widths = [5, 9, 7, 9, 10, 7];
    header(&["n", "demands", "LB", "shortest", "localsrch", "exact"], &widths);
    for n in [4u32, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14] {
        let ring = Ring::new(n);
        let demands = all_to_all_demands(ring);
        let lb = loading_lower_bound(ring, &demands);
        let s = shortest_loading(ring, &demands);
        let ls = local_search_loading(ring, &demands);
        // The exact tree grows ~2^demands; past n = 10 the certificate
        // costs more than it teaches (local search is already at the LB
        // or within 2 of it) — report "-" honestly instead of burning CPU.
        let exact = if n <= 10 {
            optimal_loading(ring, &demands, 100_000_000)
        } else {
            None
        };
        let exact_str = match &exact {
            Some(o) => o.max_load.to_string(),
            None if n <= 10 => "budget".to_string(),
            None => "-".to_string(),
        };
        if let Some(o) = &exact {
            assert!(o.max_load <= ls.max_load && ls.max_load <= s.max_load, "n={n}");
            assert!(o.max_load >= lb, "n={n}");
        }
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    demands.len().to_string(),
                    lb.to_string(),
                    s.max_load.to_string(),
                    ls.max_load.to_string(),
                    exact_str,
                ],
                &widths
            )
        );
    }
    println!();
    println!("shortest-arc routing is optimal on odd rings (strict shortest arcs,");
    println!("symmetric load); even rings route diameters to balance.");
}
