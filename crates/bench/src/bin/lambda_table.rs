//! E8 — extensions table: λK_n instances and general logical graphs.
//!
//! The note's closing section: "we are now investigating cases with other
//! communication instances such as λK_n (or more general logical
//! graphs)." This experiment maps the terrain:
//!
//! * λK_n: copy-concatenation upper bound `λ·ρ(n)` vs the scaled capacity
//!   bound — tight for odd `n`, gapped by ~λ/2 for even `n` (the open
//!   question);
//! * random instances: greedy covering sizes and phantom-capacity waste.

use cyclecover_bench::{header, row};
use cyclecover_core::{general, lambda};
use cyclecover_graph::Graph;
use cyclecover_ring::Ring;
use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Exact λ-fold optimum through the engine API (`None` = node limit).
fn exact_lambda(n: u32, lam: u32, max_nodes: u64) -> Option<usize> {
    let sol = engine_by_name("bitset").expect("registered engine").solve(
        &Problem::lambda_fold(n, lam),
        &SolveRequest::find_optimal().with_max_nodes(max_nodes),
    );
    match sol.optimality() {
        Optimality::Optimal { .. } => sol.size(),
        _ => None,
    }
}

fn main() {
    println!("E8a — lambda-fold instances: bounds on rho_lambda(n)");
    println!();
    let widths = [5, 4, 10, 10, 8, 8];
    header(&["n", "lam", "cap.LB", "built", "exact", "tight?"], &widths);
    for n in [9u32, 10, 11, 12, 13, 14] {
        for lam in 1u32..=4 {
            let lb = lambda::capacity_lower_bound(n, lam);
            let cover = lambda::construct(n, lam);
            assert!(cover.coverage().covers_complete(lam), "n={n} λ={lam}");
            let built = cover.len() as u64;
            // Exact lambda-fold optimum for the smallest instances: does the
            // even-n gap close? (New knowledge beyond the paper.)
            let exact = if n <= 7 || (n <= 8 && lam <= 2) {
                exact_lambda(n, lam, 100_000_000)
                    .map(|opt| opt.to_string())
                    .unwrap_or_else(|| "limit".into())
            } else {
                "-".into()
            };
            println!(
                "{}",
                row(
                    &[
                        n.to_string(),
                        lam.to_string(),
                        lb.to_string(),
                        built.to_string(),
                        exact,
                        if built == lb { "yes" } else { "gap" }.to_string(),
                    ],
                    &widths,
                )
            );
        }
    }
    // The headline probe: rho_2(6) — capacity says 9, copies say 10.
    {
        if let Some(opt) = exact_lambda(6, 2, 500_000_000) {
            println!();
            println!(
                "probe: rho_2(6) = {opt} (capacity LB 9, copy-concatenation 10) — the \
 lambda-fold gap {} for even n at lambda = 2.",
                if opt == 9 { "CLOSES" } else { "persists" }
            );
        }
    }
    println!();
    println!("odd n rows are tight (Theorem 1 partitions scale); even n rows show the");
    println!("copy-concatenation gap the paper flags as open.");

    println!();
    println!("E8b — general logical graphs (random instances, greedy covering)");
    println!();
    let widths = [5, 9, 9, 9, 10];
    header(&["n", "edges", "cycles", "phantom", "density"], &widths);
    let mut rng = StdRng::seed_from_u64(2001); // SPAA 2001
    for n in [10u32, 14, 18, 24, 30] {
        for density in [0.2f64, 0.5, 0.8] {
            let mut inst = Graph::new(n as usize);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(density) {
                        inst.add_edge(u, v);
                    }
                }
            }
            if inst.edge_count() == 0 {
                continue;
            }
            let got = general::greedy_cover(Ring::new(n), &inst, 4).expect("non-empty");
            assert!(general::covers_instance(&got.covering, &inst));
            println!(
                "{}",
                row(
                    &[
                        n.to_string(),
                        inst.edge_count().to_string(),
                        got.covering.len().to_string(),
                        got.phantom_edges.len().to_string(),
                        format!("{density:.1}"),
                    ],
                    &widths,
                )
            );
        }
    }
    println!();
    println!("phantom = chords reserved only to close protection cycles (waste);");
    println!("sparse instances pay proportionally more phantom capacity — the effect");
    println!("the paper's 'more general logical graphs' extension must manage.");
}
