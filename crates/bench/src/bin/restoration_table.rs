//! E11 — protection vs restoration capacity (the paper's introduction).
//!
//! For each ring size: the wavelengths pre-assigned by cycle-covering
//! protection (`2ρ(n)`), the per-link capacity of the bare working
//! routing, the minimum pooled capacity for full single-failure
//! restoration, and the premium protection pays for instantaneous
//! switching. Also cross-checks the optimal ring-loading baseline.

use cyclecover_bench::{header, row};
use cyclecover_net::compare_schemes;
use cyclecover_ring::loading::{
    all_to_all_demands, loading_lower_bound, local_search_loading, shortest_loading,
};
use cyclecover_ring::Ring;

fn main() {
    println!("E11 — survivability schemes on C_n (all-to-all): capacity accounting");
    println!();
    let widths = [5, 11, 9, 8, 8, 12, 7];
    header(
        &["n", "protection", "working", "loadLB", "loadLS", "restoration", "ratio"],
        &widths,
    );
    for n in [6u32, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48] {
        let cmp = compare_schemes(n);
        let ring = Ring::new(n);
        let demands = all_to_all_demands(ring);
        let ls = local_search_loading(ring, &demands);
        let lb = loading_lower_bound(ring, &demands);
        // Consistency: the working capacity equals the shortest loading.
        assert_eq!(cmp.working_capacity, shortest_loading(ring, &demands).max_load);
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    cmp.protection_wavelengths.to_string(),
                    cmp.working_capacity.to_string(),
                    lb.to_string(),
                    ls.max_load.to_string(),
                    cmp.restoration_capacity.to_string(),
                    format!("{:.2}", cmp.protection_over_restoration),
                ],
                &widths
            )
        );
    }
    println!();
    println!("protection = 2*rho(n) wavelength pairs; restoration = min pooled capacity");
    println!("for full recovery of any single link failure; ratio = protection/restoration.");
}
