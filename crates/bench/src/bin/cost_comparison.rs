//! E7 — cost-model comparison: the paper's objective vs. refs \[3,4\].
//!
//! The paper minimizes the *number of subnetworks*; Eilam–Moran–Zaks \[3\]
//! and Gerstel–Lin–Sasaki \[4\] minimize total ADM count (Σ cycle sizes).
//! This table evaluates our optimal covering and the pure-triangle
//! covering under: cycle count, wavelength count, total ADMs, and the
//! blended cost model — showing the trade-off the paper's §2 discusses
//! (triangles have fewer ADMs per cycle but need ~33% more cycles).

use cyclecover_bench::{header, row};
use cyclecover_core::{construct_optimal, DrcCovering};
use cyclecover_design::greedy_triangle_cover;
use cyclecover_net::{CostModel, WdmNetwork};
use cyclecover_ring::{Ring, Tile};

fn triangle_covering(n: u32) -> DrcCovering {
    let ring = Ring::new(n);
    let tiles = greedy_triangle_cover(n as usize)
        .into_iter()
        .map(|t| Tile::from_vertices(ring, t.to_vec()))
        .collect();
    let c = DrcCovering::from_tiles(ring, tiles);
    c.validate().expect("triangle covering valid");
    c
}

fn main() {
    println!("E7 — cost comparison: ours (min cycles) vs triangle covering (refs [6,7])");
    println!();
    let widths = [5, 10, 10, 10, 10, 12, 12];
    header(
        &["n", "cycles", "cyclesT", "ADMs", "ADMsT", "blended", "blendedT"],
        &widths,
    );
    for n in [8u32, 12, 16, 20, 30, 40, 50, 70, 100] {
        let ours = WdmNetwork::from_covering(&construct_optimal(n));
        let tris = WdmNetwork::from_covering(&triangle_covering(n));
        let blended = CostModel::blended();
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    ours.subnetworks().len().to_string(),
                    tris.subnetworks().len().to_string(),
                    ours.total_adms().to_string(),
                    tris.total_adms().to_string(),
                    format!("{:.0}", blended.evaluate(&ours)),
                    format!("{:.0}", blended.evaluate(&tris)),
                ],
                &widths,
            )
        );
    }
    println!();
    println!("reading: 'cycles' favors ours by ~4/3 (the paper's objective on rings);");
    println!("ADM counts are close (C4s carry 4 requests on 4 ADMs vs C3s' 3-for-3), so");
    println!("the blended model follows the wavelength term — minimizing cycle count wins,");
    println!("which is the paper's §2 argument for rho(n) as THE ring design objective.");
}
