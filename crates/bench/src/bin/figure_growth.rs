//! E5 — growth figure: `ρ(n)` vs. the baselines a practitioner would try.
//!
//! Series (CSV to stdout + ASCII plot):
//! * `rho`        — the paper's optimum (our construction, validated);
//! * `capacity`   — the lower bound `⌈Σdist/n⌉`;
//! * `triangles`  — pure triangle covering (design-theory baseline,
//!   refs \[6,7\]: every triangle covering is DRC-valid);
//! * `greedy`     — greedy set-cover over all C3/C4 tiles;
//! * `insertion`  — incremental vertex-insertion heuristic (cover `K_{n−1}`
//!   optimally, then patch the new vertex's star with triangles).
//!
//! The shape to reproduce: all curves grow ~n²; triangles sit ~4/3 above
//! `rho` (n²/6 vs n²/8), greedy lands between, insertion ~(1 + o(1))·rho.

use cyclecover_core::construct_optimal;
use cyclecover_design::{greedy_triangle_cover, triangle_covering_number};
use cyclecover_ring::{Ring, Tile};
use cyclecover_solver::lower_bound::capacity_lower_bound;
use cyclecover_solver::{greedy, TileUniverse};

/// Vertex-insertion baseline: optimal covering of `K_{n−1}` on `C_{n−1}`
/// (re-embedded on `C_n`), plus triangles `(v, 2i, 2i+1)` patching the new
/// vertex `v = n−1`'s star.
fn insertion_baseline(n: u32) -> usize {
    let ring = Ring::new(n);
    let prev = construct_optimal(n - 1);
    let mut tiles: Vec<Tile> = prev
        .tiles()
        .iter()
        .map(|t| Tile::from_vertices(ring, t.vertices().to_vec()))
        .collect();
    let v = n - 1;
    let mut x = 0;
    while x + 1 < v {
        tiles.push(Tile::from_vertices(ring, vec![x, x + 1, v]));
        x += 2;
    }
    if x < v {
        // odd leftover vertex: close with (v, x, 0)
        tiles.push(Tile::from_vertices(ring, vec![0, x, v]));
    }
    // sanity: must cover K_n
    let cover = cyclecover_core::DrcCovering::from_tiles(ring, tiles);
    cover.validate().expect("insertion baseline covers");
    cover.len()
}

fn main() {
    println!("E5 — covering size vs n (CSV)");
    println!("n,rho,capacity,triangle_opt,triangle_greedy,tile_greedy,insertion");
    let mut rows = Vec::new();
    for n in (5u32..=60).chain([80, 100, 120, 150, 200]) {
        let built = construct_optimal(n).len();
        let tri_opt = triangle_covering_number(n as u64);
        let tri_greedy = greedy_triangle_cover(n as usize).len();
        let tile_greedy = if n <= 30 {
            let u = TileUniverse::new(Ring::new(n), 4);
            greedy::greedy_cover(&u).len().to_string()
        } else {
            String::new()
        };
        let ins = insertion_baseline(n);
        println!(
            "{n},{},{},{},{},{},{}",
            built,
            capacity_lower_bound(n),
            tri_opt,
            tri_greedy,
            tile_greedy,
            ins
        );
        rows.push((n, built as f64, tri_opt as f64, ins as f64));
    }

    // ASCII plot of the headline ratio: triangles / rho -> 4/3.
    println!();
    println!("ratio of baseline to rho(n) (x = n, '#' = triangle covering, '+' = insertion):");
    for &(n, built, tri, ins) in &rows {
        if n % 5 != 0 {
            continue;
        }
        let r_tri = tri / built;
        let r_ins = ins / built;
        let col = |r: f64| ((r - 1.0) * 60.0).round().max(0.0) as usize;
        let mut line = vec![b' '; 75];
        line[0] = b'|';
        let ct = col(r_tri).min(70);
        let ci = col(r_ins).min(70);
        line[ct + 1] = b'#';
        line[ci + 1] = b'+';
        println!(
            "n={n:3} {} tri/rho={r_tri:.3} ins/rho={r_ins:.3}",
            String::from_utf8(line).unwrap()
        );
    }
    println!();
    println!("expected shape: '#' stabilizes near 4/3 (n^2/6 vs n^2/8); '+' decays toward 1.");
}
