//! E4 — optimality certification: exhaustive lower-bound proofs.
//!
//! For each small `n`, prove by exhaustive branch & bound that no
//! DRC-covering with `ρ(n)−1` cycles exists, and find one with `ρ(n)` —
//! certifying the paper's formulas including the `+1` parity refinement of
//! Theorem 2 (even `p`), which exceeds the capacity bound.

use cyclecover_bench::{header, row};
use cyclecover_core::rho;
use cyclecover_ring::Ring;
use cyclecover_solver::lower_bound::capacity_lower_bound;
use cyclecover_solver::{bnb, TileUniverse};
use std::time::Instant;

fn main() {
    println!("E4 — exhaustive optimality certificates (branch & bound over ALL cycles)");
    println!();
    let widths = [4, 8, 8, 13, 14, 10, 16];
    header(
        &["n", "cap.LB", "rho(n)", "rho-1 feas?", "rho feas?", "certified", "nodes"],
        &widths,
    );
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
    for n in 4u32..=12 {
        let target = rho(n) as u32;
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let spec = bnb::CoverSpec::complete(n);
        let t0 = Instant::now();
        let node_cap = if n >= 12 { 60_000_000 } else { 2_000_000_000 };
        let (below_outcome, lb_stats) =
            bnb::cover_spec_within_budget_parallel(&u, &spec, target - 1, node_cap, threads);
        let below = match below_outcome {
            bnb::Outcome::Infeasible => Some(true),
            bnb::Outcome::Feasible(_) => Some(false),
            bnb::Outcome::NodeLimit => None,
        };
        // Upper bound: prefer the constructive witness (validated by the
        // library); fall back to search only if the construction has excess.
        let (cover, status) = cyclecover_core::construct_with_status(n);
        let at_feasible = if matches!(status, cyclecover_core::Optimality::Optimal) {
            assert_eq!(cover.len() as u32, target);
            cover.validate().expect("constructive witness valid");
            true
        } else {
            let (at, _) = bnb::cover_within_budget(&u, target, 2_000_000_000);
            matches!(at, bnb::Outcome::Feasible(_))
        };
        let below_str = match below {
            Some(true) => "no (proved)",
            Some(false) => "YES?!",
            None => "node limit",
        };
        let certified = below == Some(true) && at_feasible;
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    capacity_lower_bound(n).to_string(),
                    target.to_string(),
                    below_str.to_string(),
                    if at_feasible { "yes (constr.)" } else { "NO?!" }.to_string(),
                    if certified { "OPTIMAL" } else { "-" }.to_string(),
                    format!("{} ({:.1?})", lb_stats.nodes, t0.elapsed()),
                ],
                &widths,
            )
        );
    }
    println!();
    println!("Note the rows n = 8 and n = 12 would read 'cap.LB = rho' if Theorem 2 had no");
    println!("+1 refinement; n = 8 (p = 4, even) certifies rho = capacity + 1 exhaustively.");
}
