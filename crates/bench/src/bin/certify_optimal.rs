//! E4 — optimality certification: exhaustive lower-bound proofs.
//!
//! For each small `n`, prove by exhaustive branch & bound that no
//! DRC-covering with `ρ(n)−1` cycles exists, and find one with `ρ(n)` —
//! certifying the paper's formulas including the `+1` parity refinement of
//! Theorem 2 (even `p`), which exceeds the capacity bound.

use cyclecover_bench::{header, row};
use cyclecover_core::rho;
use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
use cyclecover_solver::lower_bound::capacity_lower_bound;
use std::time::Instant;

fn main() {
    println!("E4 — exhaustive optimality certificates (branch & bound over ALL cycles)");
    println!();
    let widths = [4, 8, 8, 13, 14, 10, 16];
    header(
        &["n", "cap.LB", "rho(n)", "rho-1 feas?", "rho feas?", "certified", "nodes"],
        &widths,
    );
    let parallel = engine_by_name("bitset-parallel").expect("registered engine");
    let sequential = engine_by_name("bitset").expect("registered engine");
    for n in 4u32..=12 {
        let target = rho(n) as u32;
        let problem = Problem::complete(n);
        let t0 = Instant::now();
        let node_cap = if n >= 12 { 60_000_000 } else { 2_000_000_000 };
        let proof = parallel.solve(
            &problem,
            &SolveRequest::prove_infeasible(target - 1).with_max_nodes(node_cap),
        );
        let below = match proof.optimality() {
            Optimality::Infeasible => Some(true),
            Optimality::Feasible => Some(false),
            _ => None,
        };
        let lb_stats = *proof.stats();
        // Upper bound: prefer the constructive witness (validated by the
        // library); fall back to search only if the construction has excess.
        let (cover, status) = cyclecover_core::construct_with_status(n);
        let at_feasible = if matches!(status, cyclecover_core::Optimality::Optimal) {
            assert_eq!(cover.len() as u32, target);
            cover.validate().expect("constructive witness valid");
            true
        } else {
            let at = sequential.solve(
                &problem,
                &SolveRequest::within_budget(target).with_max_nodes(2_000_000_000),
            );
            matches!(at.optimality(), Optimality::Feasible)
        };
        let below_str = match below {
            Some(true) => "no (proved)",
            Some(false) => "YES?!",
            None => "node limit",
        };
        let certified = below == Some(true) && at_feasible;
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    capacity_lower_bound(n).to_string(),
                    target.to_string(),
                    below_str.to_string(),
                    if at_feasible { "yes (constr.)" } else { "NO?!" }.to_string(),
                    if certified { "OPTIMAL" } else { "-" }.to_string(),
                    format!("{} ({:.1?})", lb_stats.nodes, t0.elapsed()),
                ],
                &widths,
            )
        );
    }
    println!();
    println!("Note the rows n = 8 and n = 12 would read 'cap.LB = rho' if Theorem 2 had no");
    println!("+1 refinement; n = 8 and n = 12 (even p) certify rho = capacity + 1 — under");
    println!("the default SymmetryMode::Root the parity bound proves it at the root node");
    println!("(one-node refutations); rerun with SymmetryMode::Off for the exhaustive proofs.");
}
