//! E12 — wavelength assignment by conflict-graph coloring.
//!
//! The paper defers wavelength allocation to "the last phase of the
//! network design"; this table executes that phase. On the ring the
//! conflict graph of a winding covering is complete (no reuse — the
//! assignment is trivially `2ρ(n)` wavelengths); on tori the structured
//! coverings have partial footprints and coloring wins back a constant
//! factor. Heuristics are certified against the exact branch-and-bound
//! chromatic number on the smaller instances.

use cyclecover_bench::{header, row};
use cyclecover_color::{
    clique_lower_bound, conflict_graph, dsatur, exact_chromatic, greedy_coloring,
    largest_first_order, smallest_last_order, verify_coloring,
};
use cyclecover_topo::{mesh_cover, GridTopology};

fn main() {
    println!("E12 — wavelength assignment: coloring covering conflict graphs");
    println!();

    // Ring: complete conflict graph, no reuse (structural check).
    println!("ring coverings (winding cycles => complete conflict graph => no reuse):");
    let widths0 = [5, 8, 10, 7];
    header(&["n", "cycles", "conflicts", "colors"], &widths0);
    for n in [8u32, 12, 16] {
        let covering = cyclecover_core::construct_optimal(n);
        // Footprints on the ring: every winding tile uses all n edges.
        let footprints: Vec<Vec<u32>> = covering
            .tiles()
            .iter()
            .map(|_| (0..n).collect())
            .collect();
        let g = conflict_graph(&footprints);
        let k = covering.len();
        assert_eq!(g.edge_count(), k * (k - 1) / 2, "complete conflict graph");
        let c = dsatur(&g);
        assert_eq!(c.count as usize, k, "no reuse possible on the ring");
        println!(
            "{}",
            row(
                &[n.to_string(), k.to_string(), g.edge_count().to_string(), c.count.to_string()],
                &widths0
            )
        );
    }

    println!();
    println!("torus coverings (partial footprints => real coloring problem):");
    let widths = [7, 8, 7, 7, 7, 7, 7, 8];
    header(
        &["torus", "cycles", "cliqLB", "LF", "SL", "DSAT", "exact", "reuse"],
        &widths,
    );
    for (r, c) in [(3u32, 3u32), (3, 4), (4, 4), (3, 5), (4, 5)] {
        let topo = GridTopology::torus(r, c);
        let covering = mesh_cover::cover_torus(&topo);
        let g = conflict_graph(&covering.footprints());
        let lf = greedy_coloring(&g, &largest_first_order(&g));
        let sl = greedy_coloring(&g, &smallest_last_order(&g));
        let ds = dsatur(&g);
        for (name, col) in [("LF", &lf), ("SL", &sl), ("DSATUR", &ds)] {
            assert!(verify_coloring(&g, col), "{name} invalid on {r}x{c}");
        }
        let clique = clique_lower_bound(&g);
        // Exact is exponential; run it where the gap needs certifying.
        let exact = if g.vertex_count() <= 40 || ds.count == clique {
            exact_chromatic(&g).count.to_string()
        } else {
            "-".to_string()
        };
        println!(
            "{}",
            row(
                &[
                    format!("{r}x{c}"),
                    covering.len().to_string(),
                    clique.to_string(),
                    lf.count.to_string(),
                    sl.count.to_string(),
                    ds.count.to_string(),
                    exact,
                    format!("{:.2}x", covering.len() as f64 / ds.count as f64),
                ],
                &widths
            )
        );
    }
    println!();
    println!("reuse = cycles / wavelengths; the ring rows pin the no-reuse baseline.");
}
