//! Residual-solver v2 exploration: candidate-tile enumeration + budgeted
//! exact cover, for the p-odd cross residual.

use cyclecover_core::{construct_optimal, rho};
use cyclecover_graph::Edge;
use cyclecover_ring::{Ring, Tile};
use std::collections::BTreeSet;

fn lift(tiles: &[Tile], big: Ring, parity: u32) -> Vec<Tile> {
    tiles
        .iter()
        .map(|t| Tile::from_vertices(big, t.vertices().iter().map(|&v| 2 * v + parity).collect()))
        .collect()
}

fn q_family_odd_p(big: Ring, p: u32, include_one: bool) -> Vec<Tile> {
    let n = 2 * p;
    let mut tiles = Vec::new();
    let (a_lo, a_hi) = if include_one { (1, p - 2) } else { (3, p) };
    let mut a = a_lo;
    while a <= a_hi {
        let mut b = 1;
        while b <= p - 2 {
            let s = (2 * n - a - b) % n;
            tiles.push(Tile::from_gaps(big, s, &[a, p + 1 - a, b, p - 1 - b]));
            b += 2;
        }
        a += 2;
    }
    tiles
}

fn uncovered(big: Ring, tiles: &[Tile]) -> Vec<Edge> {
    let n = big.n() as usize;
    let mut cov = vec![false; n * (n - 1) / 2];
    for t in tiles {
        for c in t.chords(big) {
            cov[Edge::new(c.u(), c.v()).dense_index(n)] = true;
        }
    }
    (0..n * (n - 1) / 2)
        .filter(|&i| !cov[i])
        .map(|i| Edge::from_dense_index(i, n))
        .collect()
}

/// Enumerate candidate tiles: winding chains over residual chords with up
/// to `max_ov` free (non-residual) gaps, total length `3..=max_len`.
fn enumerate_candidates(
    ring: Ring,
    residual: &[Edge],
    max_len: usize,
    max_ov: usize,
) -> Vec<(Tile, Vec<usize>)> {
    let n = ring.n();
    let nn = n as usize;
    let mut is_res = vec![false; nn * (nn - 1) / 2];
    let mut res_id = vec![usize::MAX; nn * (nn - 1) / 2];
    for (k, e) in residual.iter().enumerate() {
        let i = e.dense_index(nn);
        is_res[i] = true;
        res_id[i] = k;
    }
    // adjacency: residual chords by endpoint
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nn];
    for e in residual {
        adj[e.u() as usize].push(e.v());
        adj[e.v() as usize].push(e.u());
    }

    let mut seen = BTreeSet::new();
    let mut out = Vec::new();

    // DFS over chains.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        ring: Ring,
        adj: &[Vec<u32>],
        is_res: &[Vec<bool>; 1],
        res_id: &[usize],
        start: u32,
        cur: u32,
        used: u32,
        gaps: &mut Vec<u32>,
        covered: &mut Vec<usize>,
        ov: usize,
        max_len: usize,
        max_ov: usize,
        seen: &mut BTreeSet<Vec<u32>>,
        out: &mut Vec<(Tile, Vec<usize>)>,
    ) {
        let n = ring.n();
        let nn = n as usize;
        // close the tile if possible
        if gaps.len() >= 2 && used < n && !covered.is_empty() {
            let close_gap = n - used;
            let i = Edge::new(cur.min(start), cur.max(start)).dense_index(nn);
            let close_res = is_res[0][i];
            let total_ov = ov + usize::from(!close_res);
            if gaps.len() + 1 >= 3 && total_ov <= max_ov {
                gaps.push(close_gap);
                let tile = Tile::from_gaps(ring, start, gaps);
                let key = tile.vertices().to_vec();
                if seen.insert(key) {
                    let mut cov = covered.clone();
                    if close_res {
                        cov.push(res_id[i]);
                    }
                    cov.sort_unstable();
                    cov.dedup();
                    out.push((tile, cov));
                }
                gaps.pop();
            }
        }
        if gaps.len() == max_len {
            return;
        }
        // extend via residual chords
        for &v in &adj[cur as usize] {
            if v == start {
                continue; // closing handled above
            }
            let g = ring.cw_gap(cur, v);
            if used + g >= n {
                continue;
            }
            let i = Edge::new(cur.min(v), cur.max(v)).dense_index(nn);
            let rid = res_id[i];
            if covered.contains(&rid) {
                continue;
            }
            gaps.push(g);
            covered.push(rid);
            dfs(ring, adj, is_res, res_id, start, v, used + g, gaps, covered, ov, max_len, max_ov, seen, out);
            covered.pop();
            gaps.pop();
        }
        // extend via one free gap (any target vertex)
        if ov < max_ov && !covered.is_empty() {
            for v in 0..n {
                if v == cur || v == start {
                    continue;
                }
                let g = ring.cw_gap(cur, v);
                if used + g >= n {
                    continue;
                }
                gaps.push(g);
                dfs(ring, adj, is_res, res_id, start, v, used + g, gaps, covered, ov + 1, max_len, max_ov, seen, out);
                gaps.pop();
            }
        }
    }

    let wrapped = [is_res];
    for e in residual {
        for (s, t) in [(e.u(), e.v()), (e.v(), e.u())] {
            let g = ring.cw_gap(s, t);
            let i = e.dense_index(nn);
            let mut gaps = vec![g];
            let mut covered = vec![res_id[i]];
            dfs(
                ring, &adj, &wrapped, &res_id, s, t, g, &mut gaps, &mut covered, 0, max_len,
                max_ov, &mut seen, &mut out,
            );
        }
    }
    out
}

/// Budgeted exact cover over candidates. Returns chosen tiles.
fn cover_residual(
    ring: Ring,
    residual: &[Edge],
    candidates: &[(Tile, Vec<usize>)],
    budget: usize,
) -> Option<Vec<Tile>> {
    let r = residual.len();
    // candidate lists per residual chord
    let mut by_chord: Vec<Vec<u32>> = vec![Vec::new(); r];
    for (ci, (_, cov)) in candidates.iter().enumerate() {
        for &k in cov {
            by_chord[k].push(ci as u32);
        }
    }
    // diam flags (≤1 diameter per tile is implicit in tiles; but remaining
    // diam count lower-bounds tiles needed)
    let n = ring.n();
    let is_diam: Vec<bool> = residual
        .iter()
        .map(|e| ring.is_diameter_class(ring.distance(e.u(), e.v())))
        .collect();

    struct S<'a> {
        cands: &'a [(Tile, Vec<usize>)],
        by_chord: &'a [Vec<u32>],
        is_diam: &'a [bool],
        covered: Vec<bool>,
        left: usize,
        diams_left: usize,
        chosen: Vec<u32>,
        nodes: u64,
    }
    impl S<'_> {
        fn dfs(&mut self, budget: usize) -> bool {
            if self.left == 0 {
                return true;
            }
            self.nodes += 1;
            if self.nodes > 20_000_000 {
                return false;
            }
            if budget == 0 || self.left > budget * 6 || self.diams_left > budget {
                return false;
            }
            // MRV chord
            let Some((k, _)) = (0..self.covered.len())
                .filter(|&k| !self.covered[k])
                .map(|k| {
                    let live = self.by_chord[k]
                        .iter()
                        .filter(|&&c| self.cands[c as usize].1.iter().any(|&x| !self.covered[x]))
                        .count();
                    (k, live)
                })
                .min_by_key(|&(_, live)| live)
            else {
                return false;
            };
            let mut cands: Vec<u32> = self.by_chord[k].to_vec();
            cands.sort_by_key(|&c| {
                std::cmp::Reverse(
                    self.cands[c as usize].1.iter().filter(|&&x| !self.covered[x]).count(),
                )
            });
            for c in cands {
                let cov = &self.cands[c as usize].1;
                let newly: Vec<usize> = cov.iter().copied().filter(|&x| !self.covered[x]).collect();
                if newly.is_empty() {
                    continue;
                }
                for &x in &newly {
                    self.covered[x] = true;
                    self.left -= 1;
                    if self.is_diam[x] {
                        self.diams_left -= 1;
                    }
                }
                self.chosen.push(c);
                if self.dfs(budget - 1) {
                    return true;
                }
                self.chosen.pop();
                for &x in &newly {
                    self.covered[x] = false;
                    self.left += 1;
                    if self.is_diam[x] {
                        self.diams_left += 1;
                    }
                }
            }
            false
        }
    }
    let _ = n;
    let diams = is_diam.iter().filter(|&&d| d).count();
    let mut s = S {
        cands: candidates,
        by_chord: &by_chord,
        is_diam: &is_diam,
        covered: vec![false; r],
        left: r,
        diams_left: diams,
        chosen: Vec::new(),
        nodes: 0,
    };
    if s.dfs(budget) {
        Some(s.chosen.iter().map(|&c| candidates[c as usize].0.clone()).collect())
    } else {
        None
    }
}

fn main() {
    for include_one in [false, true] {
        println!("== Q-family variant include_one={include_one} ==");
        for p in [5u32, 7, 9, 11, 13, 15, 17, 19, 21, 25] {
            let n = 2 * p;
            let big = Ring::new(n);
            let inner = construct_optimal(p);
            let mut tiles = lift(inner.tiles(), big, 0);
            tiles.extend(lift(inner.tiles(), big, 1));
            tiles.extend(q_family_odd_p(big, p, include_one));
            let res = uncovered(big, &tiles);
            let budget = p.div_ceil(2) as usize;
            let target = rho(n) as usize;
            let t0 = std::time::Instant::now();
            let cands = enumerate_candidates(big, &res, 6, 3);
            let t1 = t0.elapsed();
            match cover_residual(big, &res, &cands, budget) {
                Some(extra) => {
                    tiles.extend(extra);
                    let leftover = uncovered(big, &tiles).len();
                    println!(
                        "n={n:3}: residual={:3} cands={:6} ({t1:.0?}) -> SOLVED total={} target={target} ok={} leftover={leftover} [{:.0?}]",
                        res.len(), cands.len(), tiles.len(),
                        tiles.len() == target && leftover == 0,
                        t0.elapsed()
                    );
                }
                None => println!(
                    "n={n:3}: residual={:3} cands={:6} -> UNSOLVED [{:.0?}]",
                    res.len(),
                    cands.len(),
                    t0.elapsed()
                ),
            }
        }
    }
}
