use cyclecover_ring::Ring;
use cyclecover_solver::{bnb, TileUniverse};

fn main() {
    // n=16 at budget 33, restricted universe (C3/C4, shortest-gap) first.
    for (n, max_len, max_gap) in [(16u32, 4usize, 8u32), (16, 5, 16)] {
        let u = TileUniverse::with_max_gap(Ring::new(n), max_len, max_gap);
        let t0 = std::time::Instant::now();
        let (outcome, stats) = bnb::cover_within_budget(&u, 33, 2_000_000_000);
        println!(
            "n={n} max_len={max_len} max_gap={max_gap} tiles={}: {:?} nodes={} [{:.1?}]",
            u.len(),
            match outcome { bnb::Outcome::Feasible(_) => "FEASIBLE", bnb::Outcome::Infeasible => "infeasible", bnb::Outcome::NodeLimit => "node-limit" },
            stats.nodes,
            t0.elapsed()
        );
        if let bnb::Outcome::Feasible(idx) = outcome {
            let ring = Ring::new(n);
            for &i in &idx {
                println!("  {:?} gaps={:?}", u.tile(i).vertices(), u.tile(i).gaps(ring));
            }
            break;
        }
    }
}
