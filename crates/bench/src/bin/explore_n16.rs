//! Probe the open n = 16 instance at budget 33 on restricted universes,
//! through the engine API (bounded `WithinBudget` requests).

use cyclecover_ring::Ring;
use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest, SymmetryMode};
use cyclecover_solver::bnb::CoverSpec;
use cyclecover_solver::TileUniverse;

fn main() {
    // n=16 at budget 33, restricted universe (C3/C4, shortest-gap) first.
    // Runs the full PR-8 configuration — dihedral symmetry + the
    // residual-state memo — so every node the cap buys is a reduced one.
    let engine = engine_by_name("bitset").expect("registered engine");
    for (n, max_len, max_gap) in [(16u32, 4usize, 8u32), (16, 5, 16)] {
        let u = TileUniverse::with_max_gap(Ring::new(n), max_len, max_gap);
        let tiles = u.len();
        let problem = Problem::new(u, CoverSpec::complete(n));
        let t0 = std::time::Instant::now();
        let sol = engine.solve(
            &problem,
            &SolveRequest::within_budget(33)
                .with_symmetry(SymmetryMode::Full)
                .with_memo(true)
                .with_max_nodes(2_000_000_000),
        );
        println!(
            "n={n} max_len={max_len} max_gap={max_gap} tiles={tiles}: {} nodes={} [{:.1?}]",
            match sol.optimality() {
                Optimality::Feasible => "FEASIBLE",
                Optimality::Infeasible => "infeasible",
                _ => "node-limit",
            },
            sol.stats().nodes,
            t0.elapsed()
        );
        if let Some(found) = sol.covering() {
            let ring = Ring::new(n);
            for t in found {
                println!("  {:?} gaps={:?}", t.vertices(), t.gaps(ring));
            }
            break;
        }
    }
}
