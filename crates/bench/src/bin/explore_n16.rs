//! Probe the open n = 16 instance on restricted universes, through the
//! engine API (bounded `WithinBudget` requests).
//!
//! * default: the budget-33 unit probe (ρ(16) ∈ {33, 34}) on the
//!   C ≤ 4 / shortest-gap universe first, then C ≤ 5;
//! * `--lambda 2`: the double-cover probe at its capacity budget 64
//!   (`2·Σd(e)/16 = 64`, no parity excess — the bound is even), routed
//!   through the slack-budgeted partition kernel by default (zero waste
//!   slack: a budget-64 double cover is an exact partition);
//! * `--engine E`: force a registry engine (`partition`, `bitset`, …);
//! * `--budget K` / `--max-nodes N`: override the probed budget / cap.

use cyclecover_ring::Ring;
use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest, SymmetryMode};
use cyclecover_solver::bnb::CoverSpec;
use cyclecover_solver::TileUniverse;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let lambda: u32 = flag("--lambda").map_or(1, |v| v.parse().expect("bad --lambda"));
    // λ = 1 probes budget 33 (capacity 32 + Theorem 2's parity +1);
    // λ = 2 probes the zero-slack capacity budget 64.
    let budget: u32 =
        flag("--budget").map_or(if lambda == 1 { 33 } else { 32 * lambda }, |v| {
            v.parse().expect("bad --budget")
        });
    let max_nodes: u64 =
        flag("--max-nodes").map_or(2_000_000_000, |v| v.parse().expect("bad --max-nodes"));
    // The unit probe defaults to the branch-and-bound engine (its 33
    // budget carries slack n, outside the auto-reroute zone); λ-fold
    // probes default to the partition kernel the zero-slack budget is
    // built for.
    let engine_name =
        flag("--engine").unwrap_or_else(|| if lambda == 1 { "bitset" } else { "partition" }.into());
    let engine = engine_by_name(&engine_name)
        .unwrap_or_else(|| panic!("unknown engine '{engine_name}'"));
    // Restricted universe (C3/C4, shortest-gap) first. Runs the full
    // PR-8 configuration — dihedral symmetry + the residual-state memo —
    // so every node the cap buys is a reduced one.
    for (n, max_len, max_gap) in [(16u32, 4usize, 8u32), (16, 5, 16)] {
        let u = TileUniverse::with_max_gap(Ring::new(n), max_len, max_gap);
        let tiles = u.len();
        let spec = if lambda == 1 {
            CoverSpec::complete(n)
        } else {
            CoverSpec::lambda_fold(n, lambda)
        };
        let problem = Problem::new(u, spec);
        let t0 = std::time::Instant::now();
        let sol = engine.solve(
            &problem,
            &SolveRequest::within_budget(budget)
                .with_symmetry(SymmetryMode::Full)
                .with_memo(true)
                .with_max_nodes(max_nodes),
        );
        println!(
            "n={n} lambda={lambda} budget={budget} engine={engine_name} max_len={max_len} \
             max_gap={max_gap} tiles={tiles}: {} nodes={} partition_probes={} [{:.1?}]",
            match sol.optimality() {
                Optimality::Feasible => "FEASIBLE",
                Optimality::Infeasible => "infeasible",
                _ => "node-limit",
            },
            sol.stats().nodes,
            sol.stats().partition_probes,
            t0.elapsed()
        );
        if let Some(found) = sol.covering() {
            let ring = Ring::new(n);
            for t in found {
                println!("  {:?} gaps={:?}", t.vertices(), t.gaps(ring));
            }
            break;
        }
    }
}
