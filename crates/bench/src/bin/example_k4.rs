//! E3 — the paper's worked example, regenerated verbatim.
//!
//! "As an illustration, let G be C4 = (1,2,3,4,1) and I be K4. One
//! covering is given by the two C4's (1,2,3,4,1) and (1,3,4,2,1) but
//! there does not exist an edge disjoint routing for the cycle
//! (1,3,4,2,1) […]. On the other hand, the covering given by the C4
//! (1,2,3,4,1) and the two C3's (1,2,4,1) and (1,3,4,1) satisfies the
//! edge disjoint routing property."

use cyclecover_core::DrcCovering;
use cyclecover_graph::CycleSubgraph;
use cyclecover_ring::{routing, Ring};

fn show(ring: Ring, label: &str, verts: &[u32]) {
    // Convert the paper's 1-based labels for display.
    let disp: Vec<u32> = verts.iter().map(|v| v + 1).collect();
    match routing::route_order(ring, verts) {
        Some(r) => {
            println!("  {label} ({disp:?}): DRC-routable, arcs:");
            for (i, a) in r.arcs.iter().enumerate() {
                let u = verts[i] + 1;
                let w = verts[(i + 1) % verts.len()] + 1;
                println!(
                    "     request ({u},{w}) -> arc from {} spanning {} link(s)",
                    a.start() + 1,
                    a.len()
                );
            }
        }
        None => println!("  {label} ({disp:?}): NO edge-disjoint routing exists"),
    }
}

fn main() {
    println!("E3 — the paper's K4 / C4 example (vertex labels 1..4 as in the paper)");
    let ring = Ring::new(4);

    println!("\nCovering A: two C4s");
    show(ring, "C4", &[0, 1, 2, 3]);
    show(ring, "C4", &[0, 2, 3, 1]);
    println!("  => covering A violates the DRC, exactly as the paper states:");
    println!("     requests (1,3) and (2,4) cannot be routed edge-disjointly on C4.");

    println!("\nCovering B: one C4 + two C3s");
    show(ring, "C4", &[0, 1, 2, 3]);
    show(ring, "C3", &[0, 1, 3]);
    show(ring, "C3", &[0, 2, 3]);

    let cycles = vec![
        CycleSubgraph::new(vec![0, 1, 2, 3]),
        CycleSubgraph::new(vec![0, 1, 3]),
        CycleSubgraph::new(vec![0, 2, 3]),
    ];
    let cover = DrcCovering::from_cycles(ring, &cycles).expect("covering B is DRC-routable");
    cover.validate().expect("covering B covers K4");
    println!("\n  => covering B is a valid DRC-covering of K4 with 3 cycles = rho(4).");
}
