//! Validate the closed-form residual family for n ≡ 2 (mod 4) and probe
//! the n ≡ 0 (mod 8) structure via the exact solver.

use cyclecover_core::{construct_optimal, rho};
use cyclecover_graph::Edge;
use cyclecover_ring::{Ring, Tile};

fn lift(tiles: &[Tile], big: Ring, parity: u32) -> Vec<Tile> {
    tiles
        .iter()
        .map(|t| Tile::from_vertices(big, t.vertices().iter().map(|&v| 2 * v + parity).collect()))
        .collect()
}

fn q_family_odd_p(big: Ring, p: u32) -> Vec<Tile> {
    let n = 2 * p;
    let mut tiles = Vec::new();
    let mut a = 3;
    while a <= p {
        let mut b = 1;
        while b <= p - 2 {
            let s = (2 * n - a - b) % n;
            tiles.push(Tile::from_gaps(big, s, &[a, p + 1 - a, b, p - 1 - b]));
            b += 2;
        }
        a += 2;
    }
    tiles
}

/// Closed-form residual tiles for p odd ≥ 5.
fn residual_family(big: Ring, p: u32) -> Vec<Tile> {
    let mut tiles = Vec::new();
    // R(1) = {1, 2, p, p+1}
    tiles.push(Tile::from_vertices(big, vec![1, 2, p, p + 1]));
    // H(u) = {u, u+1, p, p+u−2, p+u−1, p+u} for u odd in [3, p−2]
    let mut u = 3;
    while u <= p - 2 {
        tiles.push(Tile::from_vertices(
            big,
            vec![u, u + 1, p, p + u - 2, p + u - 1, p + u],
        ));
        u += 2;
    }
    // Z = {0, p, 2p−2, 2p−1}
    tiles.push(Tile::from_vertices(big, vec![0, p, 2 * p - 2, 2 * p - 1]));
    tiles
}

fn check_cover(big: Ring, tiles: &[Tile]) -> usize {
    let n = big.n() as usize;
    let mut cov = vec![false; n * (n - 1) / 2];
    for t in tiles {
        for c in t.chords(big) {
            cov[Edge::new(c.u(), c.v()).dense_index(n)] = true;
        }
    }
    cov.iter().filter(|&&b| !b).count()
}

fn main() {
    println!("== n ≡ 2 (mod 4): closed-form construction ==");
    for p in [5u32, 7, 9, 11, 13, 15, 21, 25, 31, 51, 75, 101] {
        let n = 2 * p;
        let big = Ring::new(n);
        let inner = construct_optimal(p);
        let mut tiles = lift(inner.tiles(), big, 0);
        tiles.extend(lift(inner.tiles(), big, 1));
        tiles.extend(q_family_odd_p(big, p));
        tiles.extend(residual_family(big, p));
        let missing = check_cover(big, &tiles);
        let target = rho(n) as usize;
        println!(
            "n={n:4}: tiles={:5} target={target:5} missing={missing} ok={}",
            tiles.len(),
            missing == 0 && tiles.len() == target
        );
    }

    println!("== n ≡ 0 (mod 8): inspect solver solutions ==");
    for n in [8u32] {
        use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
        let t0 = std::time::Instant::now();
        let sol = engine_by_name("bitset").expect("registered engine").solve(
            &Problem::complete(n),
            &SolveRequest::find_optimal().with_max_nodes(500_000_000),
        );
        if let (Optimality::Optimal { .. }, Some(tiles)) = (sol.optimality(), sol.covering()) {
            println!(
                "n={n}: optimal={} nodes={} [{:.1?}]",
                tiles.len(),
                sol.stats().nodes,
                t0.elapsed()
            );
            let ring = Ring::new(n);
            for t in tiles {
                let gaps = t.gaps(ring);
                let parities: Vec<&str> = gaps.iter().map(|g| if g % 2 == 0 { "e" } else { "o" }).collect();
                println!("  {:?} gaps={gaps:?} {}", t.vertices(), parities.join(""));
            }
        } else {
            println!("n={n}: node limit hit [{:.1?}]", t0.elapsed());
        }
    }
}
