//! E10 — trees of rings: hierarchical per-ring coverings.
//!
//! For chains and stars of rings: the number of segment-requests the
//! all-to-all instance induces, the per-ring covering size, the
//! generalized lower bound, validation, and the exhaustive link-failure
//! audit. Demonstrates the paper's "independent sub-networks"
//! philosophy composing across a hierarchy.

use cyclecover_bench::{header, row};
use cyclecover_graph::builders;
use cyclecover_topo::{cover, protect, TreeOfRings};

fn main() {
    println!("E10 — per-ring DRC coverings on trees of rings (all-to-all instance)");
    println!();
    let widths = [16, 6, 6, 9, 8, 7, 7, 7];
    header(
        &["topology", "nodes", "links", "segments", "cycles", "LB", "valid", "surv"],
        &widths,
    );
    let mut all_ok = true;
    let cases: Vec<(String, TreeOfRings)> = vec![
        ("chain 2x5".into(), TreeOfRings::chain(2, 5)),
        ("chain 3x5".into(), TreeOfRings::chain(3, 5)),
        ("chain 4x4".into(), TreeOfRings::chain(4, 4)),
        ("chain 5x6".into(), TreeOfRings::chain(5, 6)),
        ("star 6+3x4".into(), TreeOfRings::star(6, 3, 4)),
        ("star 8+4x5".into(), TreeOfRings::star(8, 4, 5)),
        ("star 10+5x4".into(), TreeOfRings::star(10, 5, 4)),
    ];
    for (name, t) in cases {
        let inst = builders::complete(t.vertex_count());
        let covering = t.cover(&inst, 4);
        let seg = t.segment_instance(&inst);
        let valid = covering.validate(t.graph(), &seg).is_ok();
        let audit = protect::audit_link_failures(t.graph(), &covering);
        all_ok &= valid && audit.fully_survivable;
        println!(
            "{}",
            row(
                &[
                    name,
                    t.vertex_count().to_string(),
                    t.graph().edge_count().to_string(),
                    seg.edge_count().to_string(),
                    covering.len().to_string(),
                    cover::lower_bound(t.graph(), &seg).to_string(),
                    valid.to_string(),
                    audit.fully_survivable.to_string(),
                ],
                &widths
            )
        );
    }
    println!();
    println!("all checks passed: {all_ok}");
    assert!(all_ok);
}
