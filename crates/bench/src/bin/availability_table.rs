//! E14 — availability: what the covering-based protection buys.
//!
//! The paper's survivability motivation, priced in "nines": steady-state
//! per-demand unavailability with and without cycle protection, exact to
//! second order in the per-link unavailability (the truncation residual
//! column bounds the ignored mass).

use cyclecover_bench::{header, row};
use cyclecover_core::construct_optimal;
use cyclecover_net::{availability_comparison, LinkModel, WdmNetwork};

fn main() {
    println!("E14 — demand availability on C_n (typical fiber: MTBF 4 months, MTTR 12 h)");
    println!();
    let widths = [5, 12, 9, 12, 9, 8, 10];
    header(
        &["n", "unprot", "nines", "protected", "nines", "gain", "residual"],
        &widths,
    );
    for n in [6u32, 8, 10, 13, 16, 20, 24, 32] {
        let net = WdmNetwork::from_covering(&construct_optimal(n));
        let cmp = availability_comparison(&net, LinkModel::typical_fiber());
        assert!(cmp.protected.mean_unavailability < cmp.unprotected.mean_unavailability);
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    format!("{:.2e}", cmp.unprotected.mean_unavailability),
                    format!("{:.2}", cmp.unprotected.nines()),
                    format!("{:.2e}", cmp.protected.mean_unavailability),
                    format!("{:.2}", cmp.protected.nines()),
                    format!("{:.0}x", cmp.improvement),
                    format!("{:.1e}", cmp.truncation_residual),
                ],
                &widths
            )
        );
    }
    println!();
    println!("unprot = shortest-arc routing, no spare; protected = covering cycles");
    println!("(immune to all single failures; dies only on working+protection pairs).");
    println!("residual = ignored >=3-simultaneous-failure mass (upper bound).");
}
