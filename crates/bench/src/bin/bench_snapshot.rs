//! Fixed solver workload for tracking the perf trajectory across PRs.
//!
//! Certifies `ρ(n)` — prove `ρ(n) − 1` infeasible, find a `ρ(n)` covering
//! over the full tile universe — through the [`cyclecover_solver::api`]
//! engine registry, across the symmetry dimension (`Off`/`Root`/`Full`)
//! **and the residual-state memo dimension** (off/on): `bitset` sweeps
//! both, `bitset-parallel` covers the corners, `legacy` is the pre-bitset
//! reference. Writes `BENCH_10.json` with node counts and memo hit counts
//! per (n, λ, engine, symmetry, memo) so both reduction levers — and the
//! λ-fold lane kernel — are tracked in-trajectory:
//!
//! * the `Off` + memo-off rows must reproduce BENCH_1.json *exactly*
//!   (±0 nodes) — the iterative core and the memo machinery are
//!   zero-cost when disabled;
//! * the `Root` + memo-on rows are the engine-default configuration; the
//!   ρ(10) witness row carries the shared-store PR's acceptance ceiling
//!   (≤ 235,000 nodes vs the 252,472 per-probe-private total of BENCH_5
//!   and the 770,227 memo-free of BENCH_3);
//! * the `shared` rows re-run a certification pair warm against one
//!   request-wide [`MemoStore`]: `--check` gates a `shared_hits` floor
//!   and that sharing never expands more nodes than the private row;
//! * the `n = 12` row certifies the budget-18 refutation: a one-node
//!   parity-bound proof under `Root`/`Full`, node-capped at 30M under
//!   `Off` + memo-off where it exhausts (the pre-symmetry state);
//! * the **λ-fold rows** certify ρ_λ(n) for the small double/triple
//!   covers on both the packed lane kernel (`bitset`) and the recursive
//!   multiplicity reference (`legacy`): every one sits at the scaled
//!   capacity bound, so the ρ_λ − 1 refutations are one-node root
//!   prunes and the recorded cost is the witness search. `--check`
//!   pins the legacy witness counts exactly (±0 — the reference is
//!   frozen) and the packed counts under ceilings, and gates that the
//!   packed kernel is *strictly* cheaper than legacy on every row;
//! * the **n = 16 probe rows** track the formerly-open n ≡ 0 (mod 8)
//!   construction gap, **closed by PR 10: ρ(16) = 33**. Budget-33
//!   witness searches on the C ≤ 4 shortest-gap universe, once on the
//!   branch-and-bound route and once through the slack-budgeted
//!   partition kernel. The b&b probe still exhausts its deterministic
//!   cap (`certified = false` is its expected verdict — the gap stood
//!   because this route needs > 2×10⁹ nodes), but the partition row
//!   **certifies the 33-cycle covering in exactly
//!   [`N16_PARTITION_WITNESS_NODES`] nodes**, and `--check` pins that
//!   count ±0: the row is the permanent CI witness of the discovery
//!   (see ROADMAP.md for the covering itself);
//! * the **partition-kernel rows** (PR 10) measure the slack-budgeted
//!   exact-cover route: λ-fold witness probes at the capacity budget
//!   have waste slack < n, so the sequential `bitset` dispatch already
//!   serves them from the partition kernel (the λ-fold ceilings above
//!   are partition-kernel counts); the ρ₂(8) = 16 pair on the C ≤ 4
//!   universe records the headline matchup — the partition route vs
//!   the lane core *forced* (`budget_search_packed`, the pre-PR-10
//!   3.7M-node figure) — and `--check` gates the partition witness
//!   strictly under the forced-lanes counterpart; the λ₂ n = 16 row
//!   probes the zero-slack budget-64 double cover (capacity `2·512/16`,
//!   no parity excess) under a deterministic cap, gated inconclusive —
//!   the certification is real but deep (ρ₂(16) = 64 in 256,461,523
//!   partition nodes, ~9 min; ROADMAP.md) so CI keeps the capped
//!   deterministic prefix instead.
//!
//! Usage: `cargo run --release -p cyclecover-bench --bin bench_snapshot`
//!
//! * `--max-n <k>`: stop the n ≤ 10 sweep earlier (legacy dominates at 10)
//! * `--skip-n12`: drop the n = 12 certification rows
//! * `--quick`: regression subset only — n ∈ {8, 10}, engine `bitset`,
//!   `Off`/`Root` × memo off/on, plus the λ-fold rows and the n = 16
//!   probe (no n = 12, no unit legacy, no parallel)
//! * `--check`: after running, fail unless the `Off` + memo-off rows
//!   match BENCH_1 exactly, the `Root` rows (memo off *and* on) stay
//!   within the recorded ceilings, the λ-fold rows match their legacy
//!   baselines / packed ceilings with packed strictly under legacy, and
//!   the n = 16 rows hold their verdicts (b&b and λ₂ probes stay
//!   inconclusive, the partition row keeps certifying ρ(16) = 33 at
//!   its exact node count) — the CI node-count regression gate
//!   (`--quick --check`)

use cyclecover_ring::Ring;
use cyclecover_solver::api::{
    engine_by_name, Optimality, Problem, SolveRequest, SymmetryMode,
};
use cyclecover_solver::bnb::{
    budget_search_packed, CoverSpec, MemoStore, Outcome, DEFAULT_MEMO_BYTES,
};
use cyclecover_solver::lower_bound::rho_formula;
use cyclecover_solver::TileUniverse;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Node cap for the n = 12 budget-18 refutation probe: the pre-symmetry
/// search exceeds this on one core (the old ROADMAP open item); the
/// reduced modes must finish far under it.
const N12_PROOF_CAP: u64 = 30_000_000;

/// `(n, symmetry, memo, exact, proof nodes, witness nodes)` baselines for
/// `--check`, engine `bitset`. `exact` rows are BENCH_1 reproductions
/// (±0); the rest are ceilings — exceeding either fails the gate. The
/// `(10, Root, memo-on)` witness ceiling of 400,000 nodes is the
/// ISSUE 5 acceptance criterion (BENCH_3 recorded 770,227 memo-free).
const CHECK_BASELINES: [(u32, SymmetryMode, bool, bool, u64, u64); 6] = [
    (8, SymmetryMode::Off, false, true, 97_465, 9),
    (8, SymmetryMode::Off, true, false, 97_465, 9),
    (8, SymmetryMode::Root, true, false, 1, 9),
    (10, SymmetryMode::Off, false, true, 1, 13_453_767),
    (10, SymmetryMode::Root, false, false, 1, 770_227),
    (10, SymmetryMode::Root, true, false, 1, 235_000),
];

/// `(n, symmetry, shared_hits floor, node ceiling)` gates for the
/// shared-store rows: the warm certification must actually answer from
/// the cold pass's refutations (floor — small, because a root-level
/// refutation hit ends the proof in one node), stay under a tiny
/// absolute node budget (ceiling — warm repeats are nearly free), and —
/// checked dynamically — expand no more nodes than the private memo-on
/// row of the same shape.
const SHARED_CHECKS: [(u32, SymmetryMode, u64, u64); 2] = [
    (8, SymmetryMode::Off, 1, 100),
    (10, SymmetryMode::Root, 1, 100),
];

/// `(n, λ, ρ_λ(n), legacy witness nodes, packed memo-on witness ceiling,
/// packed memo-off witness ceiling)` gates for the λ-fold rows. Every
/// optimum sits at the scaled capacity bound `⌈λ·Σd(e)/n⌉`, so the
/// ρ_λ − 1 refutations root-prune in exactly one node on both kernels
/// (gated ±0) and the witness search carries the cost: the legacy
/// recursive reference is frozen (±0), the fast rows run under `Full`
/// dihedral symmetry with recorded ceilings, and `--check` additionally
/// requires fast < legacy *strictly* on every row — the λ-fold fast
/// path must never regress behind the reference it retired. Since PR 10
/// the witness probes sit at waste slack < n, so the `bitset` dispatch
/// serves them from the slack-budgeted partition kernel — the ceilings
/// are re-measured partition-route counts (memo-on/off: 32/45, 12/12,
/// 1095/11784), far under the old lane-core figures.
const LAMBDA_CHECKS: [(u32, u32, u32, u64, u64, u64); 3] = [
    (6, 2, 9, 287, 50, 60),
    (7, 2, 12, 51, 20, 20),
    (6, 3, 14, 448_611, 1_500, 15_000),
];

/// Node cap for the n = 16 frontier probes (deterministic: the
/// sequential kernels expand a fixed prefix of the search tree).
const N16_PROBE_CAP: u64 = 2_000_000;

/// Exact witness node count for the `partition` budget-33 row — the
/// 33-cycle covering of K_16 that closed the n ≡ 0 (mod 8) construction
/// gap (ρ(16) = 33; the witness is recorded in ROADMAP.md). The
/// sequential partition kernel is deterministic, so this is a ±0 pin:
/// drifting means the kernel's search order changed, losing the witness
/// means the route regressed.
const N16_PARTITION_WITNESS_NODES: u64 = 43;

/// Ceiling for the ρ₂(8) = 16 witness through the partition route on
/// the C ≤ 4 universe — gated alongside the strict `< lanes-forced`
/// comparison (the forced lane core's measured figure is ~3.7M nodes).
const RHO2_8_PARTITION_CEILING: u64 = 1_000;

struct Row {
    n: u32,
    /// Covering multiplicity: 1 for the unit-cover sweep, ≥ 2 for the
    /// λ-fold lane-kernel rows.
    lambda: u32,
    /// The covering size being certified (ρ(n), ρ_λ(n), or the n = 16
    /// probe budget).
    opt: u32,
    engine: &'static str,
    symmetry: SymmetryMode,
    memo: bool,
    /// Whether the pair ran against a warm request-wide [`MemoStore`]
    /// (the shared-store rows) rather than a per-request-private memo.
    shared: bool,
    /// Hits on refutations recorded by *another* searcher generation —
    /// zero by construction on non-shared rows.
    shared_hits: u64,
    nodes_infeasible: u64,
    nodes_feasible: u64,
    memo_hits: u64,
    canon_pruned: u64,
    sym_factor: u32,
    wall_ms: f64,
    certified: bool,
    /// Whether an uncertified row is expected (the capped n = 12 `Off`
    /// probe) rather than a failure.
    may_exhaust: bool,
}

fn mode_name(sym: SymmetryMode) -> &'static str {
    match sym {
        SymmetryMode::Off => "off",
        SymmetryMode::Root => "root",
        SymmetryMode::Full => "full",
    }
}

/// Proves `rho − 1` infeasible (optionally node-capped) and finds a `rho`
/// covering through one engine at one symmetry level and memo setting.
fn certify(
    engine: &'static str,
    problem: &Problem,
    rho: u32,
    symmetry: SymmetryMode,
    memo: bool,
    proof_cap: u64,
) -> Row {
    let n = problem.ring().n();
    let eng = engine_by_name(engine).expect("registered engine");
    let t0 = Instant::now();
    let below = eng.solve(
        problem,
        &SolveRequest::prove_infeasible(rho - 1)
            .with_symmetry(symmetry)
            .with_memo(memo)
            .with_max_nodes(proof_cap),
    );
    let at = eng.solve(
        problem,
        &SolveRequest::within_budget(rho)
            .with_symmetry(symmetry)
            .with_memo(memo),
    );
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let certified = matches!(below.optimality(), Optimality::Infeasible)
        && matches!(at.optimality(), Optimality::Feasible);
    Row {
        n,
        lambda: 1,
        opt: rho,
        engine,
        symmetry,
        memo,
        shared: false,
        shared_hits: 0,
        nodes_infeasible: below.stats().nodes,
        nodes_feasible: at.stats().nodes,
        memo_hits: below.stats().memo_hits + at.stats().memo_hits,
        canon_pruned: below.stats().canon_pruned + at.stats().canon_pruned,
        sym_factor: below.stats().sym_factor.max(at.stats().sym_factor),
        wall_ms: wall,
        certified,
        may_exhaust: proof_cap < u64::MAX,
    }
}

/// The shared-store variant of [`certify`]: one request-wide
/// [`MemoStore`] is fed by a cold certification pair, then the *same*
/// pair runs warm against it — the recorded row. Its `shared_hits` are
/// the cross-request reuse a per-request-private memo cannot see, and
/// its node counts gate that reuse is a pure accelerator (never more
/// nodes than the private memo-on row of the same shape).
fn certify_shared(
    engine: &'static str,
    problem: &Problem,
    rho: u32,
    symmetry: SymmetryMode,
) -> Row {
    let n = problem.ring().n();
    let eng = engine_by_name(engine).expect("registered engine");
    let store = Arc::new(
        MemoStore::new(problem.universe(), DEFAULT_MEMO_BYTES).expect("store fits"),
    );
    let below_req = SolveRequest::prove_infeasible(rho - 1)
        .with_symmetry(symmetry)
        .with_memo(true)
        .with_memo_store(Arc::clone(&store));
    let at_req = SolveRequest::within_budget(rho)
        .with_symmetry(symmetry)
        .with_memo(true)
        .with_memo_store(Arc::clone(&store));
    // Cold feed pass: populates the store, not recorded.
    let _ = eng.solve(problem, &below_req);
    let _ = eng.solve(problem, &at_req);
    // Warm pass: the row.
    let t0 = Instant::now();
    let below = eng.solve(problem, &below_req);
    let at = eng.solve(problem, &at_req);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let certified = matches!(below.optimality(), Optimality::Infeasible)
        && matches!(at.optimality(), Optimality::Feasible);
    Row {
        n,
        lambda: 1,
        opt: rho,
        engine,
        symmetry,
        memo: true,
        shared: true,
        shared_hits: below.stats().shared_hits + at.stats().shared_hits,
        nodes_infeasible: below.stats().nodes,
        nodes_feasible: at.stats().nodes,
        memo_hits: below.stats().memo_hits + at.stats().memo_hits,
        canon_pruned: below.stats().canon_pruned + at.stats().canon_pruned,
        sym_factor: below.stats().sym_factor.max(at.stats().sym_factor),
        wall_ms: wall,
        certified,
        may_exhaust: false,
    }
}

/// λ-fold certification row over the full tile universe: prove
/// ρ_λ(n) − 1 infeasible, find a ρ_λ(n) covering. Every recorded λ-fold
/// optimum equals the scaled capacity bound, so the refutation is a
/// one-node root prune on both kernels and the witness search is the
/// tracked quantity.
fn certify_lambda(
    engine: &'static str,
    n: u32,
    lambda: u32,
    opt: u32,
    symmetry: SymmetryMode,
    memo: bool,
) -> Row {
    let problem = Problem::lambda_fold(n, lambda);
    let mut row = certify(engine, &problem, opt, symmetry, memo, u64::MAX);
    row.lambda = lambda;
    row
}

/// An n = 16 frontier probe over the C ≤ 4 universe under a
/// deterministic node cap, through a registry engine.
///
/// Historically these attacked the n ≡ 0 (mod 8) construction gap —
/// ρ(16) ∈ {33, 34}, the paper's best construction using 34 cycles.
/// **PR 10 closed the gap**: the slack-budgeted partition route finds a
/// 33-cycle covering of K_16 in a few dozen nodes (the `partition`
/// budget-33 row below, gated *certified* with an exact node pin — the
/// witness is in ROADMAP.md), so ρ(16) = 33 against Theorem 2's parity
/// lower bound. The `bitset` row is kept as a search-hardness tracker:
/// branch-and-bound still exhausts its cap without finding the
/// covering, and its gate pins that inconclusive verdict so any change
/// in the lane core's trajectory is surfaced. The λ₂ budget-64 probe
/// (zero-slack capacity `2·512/16 = 64`, no parity excess) records its
/// capped verdict the same way.
fn probe_n16(engine: &'static str, lambda: u32, opt: u32, cap: u64) -> Row {
    let spec = if lambda == 1 {
        CoverSpec::complete(16)
    } else {
        CoverSpec::lambda_fold(16, lambda)
    };
    // The C ≤ 4 *shortest-gap* universe (arcs ≤ the diameter 8, 1484
    // tiles) — the same restriction `explore_n16` probes first, and the
    // one the ρ(16) = 33 witness lives in.
    let problem = Problem::new(TileUniverse::with_max_gap(Ring::new(16), 4, 8), spec);
    let eng = engine_by_name(engine).expect("registered engine");
    let t0 = Instant::now();
    let below = eng.solve(
        &problem,
        &SolveRequest::prove_infeasible(opt - 1)
            .with_symmetry(SymmetryMode::Full)
            .with_memo(true),
    );
    let at = eng.solve(
        &problem,
        &SolveRequest::within_budget(opt)
            .with_symmetry(SymmetryMode::Full)
            .with_memo(true)
            .with_max_nodes(cap),
    );
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let certified = matches!(below.optimality(), Optimality::Infeasible)
        && matches!(at.optimality(), Optimality::Feasible);
    Row {
        n: 16,
        lambda,
        opt,
        engine,
        symmetry: SymmetryMode::Full,
        memo: true,
        shared: false,
        shared_hits: 0,
        nodes_infeasible: below.stats().nodes,
        nodes_feasible: at.stats().nodes,
        memo_hits: below.stats().memo_hits + at.stats().memo_hits,
        canon_pruned: below.stats().canon_pruned + at.stats().canon_pruned,
        sym_factor: below.stats().sym_factor.max(at.stats().sym_factor),
        wall_ms: wall,
        certified,
        may_exhaust: true,
    }
}

/// The ρ₂(8) = 16 instance on the C ≤ 4 universe — the PR-10 headline
/// matchup. The 15-refutation is a one-node capacity prune on both
/// routes; the witness search is where the routes diverge: the budget
/// sits at zero waste slack, so the partition kernel's MRV selection
/// and full-load collapse walk nearly straight to a double cover, while
/// the forced lane core (the pre-PR-10 dispatch) grinds through
/// millions of nodes. `--check` gates the partition witness under a
/// ceiling AND strictly below the forced-lanes counterpart row.
fn rho2_8_problem() -> Problem {
    Problem::new(
        TileUniverse::new(Ring::new(8), 4),
        CoverSpec::lambda_fold(8, 2),
    )
}

fn certify_rho2_8_partition() -> Row {
    let mut row = certify(
        "partition",
        &rho2_8_problem(),
        16,
        SymmetryMode::Full,
        true,
        u64::MAX,
    );
    row.lambda = 2;
    row
}

/// The branch-and-bound counterpart, with the low-slack dispatch
/// bypassed (`budget_search_packed` forces the lane core): the measured
/// "before" figure the partition row is gated strictly under.
fn certify_rho2_8_lanes_forced() -> Row {
    let u = TileUniverse::new(Ring::new(8), 4);
    let spec = CoverSpec::lambda_fold(8, 2);
    let t0 = Instant::now();
    let below_store = MemoStore::new(&u, DEFAULT_MEMO_BYTES).expect("n = 8 fits");
    let (below, below_stats) = budget_search_packed(
        &u,
        &spec,
        15,
        u64::MAX,
        SymmetryMode::Full,
        Some(&below_store),
    );
    let at_store = MemoStore::new(&u, DEFAULT_MEMO_BYTES).expect("n = 8 fits");
    let (at, at_stats) = budget_search_packed(
        &u,
        &spec,
        16,
        u64::MAX,
        SymmetryMode::Full,
        Some(&at_store),
    );
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    Row {
        n: 8,
        lambda: 2,
        opt: 16,
        engine: "lanes-forced",
        symmetry: SymmetryMode::Full,
        memo: true,
        shared: false,
        shared_hits: below_stats.shared_hits + at_stats.shared_hits,
        nodes_infeasible: below_stats.nodes,
        nodes_feasible: at_stats.nodes,
        memo_hits: below_stats.memo_hits + at_stats.memo_hits,
        canon_pruned: below_stats.canon_pruned + at_stats.canon_pruned,
        sym_factor: below_stats.sym_factor.max(at_stats.sym_factor),
        wall_ms: wall,
        certified: matches!(below, Outcome::Infeasible) && matches!(at, Outcome::Feasible(_)),
        may_exhaust: false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let skip_n12 = quick || args.iter().any(|a| a == "--skip-n12");
    let max_n: u32 = args
        .iter()
        .position(|a| a == "--max-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);

    let mut rows: Vec<Row> = Vec::new();
    let mut run = |row: Row| {
        println!(
            "n={:2} l={} {:15} {:5} memo={:6}  {:>10.1} ms  nodes {} + {}  hits {} ({} shared)  canon {}  x{}  certified={}",
            row.n,
            row.lambda,
            row.engine,
            mode_name(row.symmetry),
            if row.shared {
                "shared"
            } else if row.memo {
                "on"
            } else {
                "off"
            },
            row.wall_ms,
            row.nodes_infeasible,
            row.nodes_feasible,
            row.memo_hits,
            row.shared_hits,
            row.canon_pruned,
            row.sym_factor,
            row.certified
        );
        rows.push(row);
    };

    let ns: Vec<u32> = if quick {
        [8, 10].iter().copied().filter(|&n| n <= max_n).collect()
    } else {
        (6..=max_n).collect()
    };
    for &n in &ns {
        let rho = rho_formula(n) as u32;
        let problem = Problem::complete(n);
        for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
            if quick && sym == SymmetryMode::Full {
                continue;
            }
            for memo in [false, true] {
                run(certify("bitset", &problem, rho, sym, memo, u64::MAX));
            }
        }
        if !quick {
            // Parallel corners: the exactness corner (off, memo-off) and
            // the engine-default corner (root, memo-on).
            run(certify("bitset-parallel", &problem, rho, SymmetryMode::Off, false, u64::MAX));
            run(certify("bitset-parallel", &problem, rho, SymmetryMode::Root, true, u64::MAX));
            run(certify("legacy", &problem, rho, SymmetryMode::Off, false, u64::MAX));
        }
    }

    // Shared-store rows, for the shapes whose searches do real memo work
    // (n = 8 with the dihedral reduction off, the ρ(10) engine default):
    // a warm certification pair over one request-wide store. Gated by
    // `--check` on a shared-hits floor and the private-row node ceiling.
    for (n, sym) in [(8u32, SymmetryMode::Off), (10u32, SymmetryMode::Root)] {
        if n <= max_n {
            let problem = Problem::complete(n);
            run(certify_shared("bitset", &problem, rho_formula(n) as u32, sym));
        }
    }

    if !skip_n12 {
        // The n = 12 certification row: budget-18 refutation (Theorem 2's
        // +1 at p = 6) plus the 19-tile witness. Both `Off` probes are
        // capped at the 30M-node budget the old ROADMAP open item named —
        // without the parity bound the refutation exhausts the cap with
        // or without the memo — while the reduced modes must certify
        // (one-node parity proofs).
        let problem = Problem::complete(12);
        for (sym, memo) in [
            (SymmetryMode::Off, false),
            (SymmetryMode::Off, true),
            (SymmetryMode::Root, true),
            (SymmetryMode::Full, true),
        ] {
            let cap = if sym == SymmetryMode::Off {
                N12_PROOF_CAP
            } else {
                u64::MAX
            };
            run(certify("bitset", &problem, 19, sym, memo, cap));
        }
    }

    // λ-fold rows (in `--quick` too — they are a CI acceptance gate):
    // the packed lane kernel under `Full` symmetry at both memo
    // settings, plus the frozen recursive reference. The legacy path
    // ignores symmetry and the memo — it predates both.
    for (n, lambda, opt, _, _, _) in LAMBDA_CHECKS {
        for memo in [true, false] {
            run(certify_lambda("bitset", n, lambda, opt, SymmetryMode::Full, memo));
        }
        run(certify_lambda("legacy", n, lambda, opt, SymmetryMode::Off, false));
    }

    // The PR-10 partition-kernel rows (all `--quick` rows — they carry
    // CI acceptance gates): the ρ₂(8) = 16 matchup on the C ≤ 4
    // universe (partition route vs the forced lane core), then the
    // n = 16 frontier probes — the branch-and-bound hardness tracker,
    // the partition budget-33 row that *closed* the construction gap
    // (gated certified, exact node pin), and the λ₂ budget-64 probe.
    run(certify_rho2_8_lanes_forced());
    run(certify_rho2_8_partition());
    run(probe_n16("bitset", 1, 33, N16_PROBE_CAP));
    run(probe_n16("partition", 1, 33, N16_PROBE_CAP));
    run(probe_n16("partition", 2, 64, N16_PROBE_CAP));

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"snapshot\": 10,\n");
    json.push_str(
        "  \"workload\": \"certify rho(n) over the full tile universe: prove rho-1 \
         infeasible, find a rho covering; symmetry dimension off/root/full x \
         residual-state memo off/on; lambda-fold rows certify rho_lambda(n) on \
         the packed lane kernel vs the frozen recursive reference (witness \
         probes at the capacity budget route through the slack-budgeted \
         partition kernel); rho_2(8) pair on the C<=4 universe gates the \
         partition route strictly under the forced lane core; n=16 rows are \
         the capped budget-33 probes on the C<=4 universe (the partition row \
         certifies rho(16)=33, closing the mod-8 construction gap) plus the \
         capped zero-slack lambda_2 budget-64 probe\",\n",
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"n12_proof_cap\": {N12_PROOF_CAP},");
    let _ = writeln!(json, "  \"n16_probe_cap\": {N16_PROBE_CAP},");
    json.push_str("  \"instances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"lambda\": {}, \"rho\": {}, \"kernel\": \"{}\", \"symmetry\": \"{}\", \
             \"memo\": {}, \"shared\": {}, \"nodes_infeasible\": {}, \
             \"nodes_feasible\": {}, \
             \"memo_hits\": {}, \"shared_hits\": {}, \"canon_pruned\": {}, \"sym_factor\": {}, \
             \"wall_ms\": {:.1}, \"certified\": {}}}",
            r.n,
            r.lambda,
            r.opt,
            r.engine,
            mode_name(r.symmetry),
            r.memo,
            r.shared,
            r.nodes_infeasible,
            r.nodes_feasible,
            r.memo_hits,
            r.shared_hits,
            r.canon_pruned,
            r.sym_factor,
            r.wall_ms,
            r.certified
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
    println!("\nwrote BENCH_10.json ({} instances)", rows.len());

    // Every row certifies except, possibly, the node-capped n = 12
    // `Off` + memo-off probe (the documented pre-symmetry state).
    for r in &rows {
        assert!(
            r.certified || r.may_exhaust,
            "certification failed: n={} {} {} memo={}",
            r.n,
            r.engine,
            mode_name(r.symmetry),
            r.memo
        );
    }

    if check {
        let mut failures = Vec::new();
        for (n, sym, memo, exact, proof, witness) in CHECK_BASELINES {
            let Some(row) = rows.iter().find(|r| {
                r.n == n && r.lambda == 1 && r.engine == "bitset" && r.symmetry == sym
                    && r.memo == memo && !r.shared
            }) else {
                failures.push(format!(
                    "missing row n={n} bitset {} memo={memo}",
                    mode_name(sym)
                ));
                continue;
            };
            let proof_bad = if exact {
                row.nodes_infeasible != proof
            } else {
                row.nodes_infeasible > proof
            };
            let witness_bad = if exact {
                row.nodes_feasible != witness
            } else {
                row.nodes_feasible > witness
            };
            if proof_bad || witness_bad {
                failures.push(format!(
                    "n={n} bitset {} memo={memo}: nodes {} + {} vs baseline {} + {} ({})",
                    mode_name(sym),
                    row.nodes_infeasible,
                    row.nodes_feasible,
                    proof,
                    witness,
                    if exact { "exact" } else { "ceiling" }
                ));
            }
        }
        // Shared-store gates: the warm pair must visibly reuse the cold
        // pass's refutations, and sharing may only *prune* — no more
        // nodes than the private memo-on row of the same shape.
        for (n, sym, floor, ceiling) in SHARED_CHECKS {
            let Some(shared) = rows.iter().find(|r| {
                r.n == n && r.engine == "bitset" && r.symmetry == sym && r.shared
            }) else {
                failures.push(format!("missing shared row n={n} {}", mode_name(sym)));
                continue;
            };
            if shared.shared_hits < floor {
                failures.push(format!(
                    "n={n} {} shared: {} shared hits under the {floor} floor",
                    mode_name(sym),
                    shared.shared_hits
                ));
            }
            let warm_total = shared.nodes_infeasible + shared.nodes_feasible;
            if warm_total > ceiling {
                failures.push(format!(
                    "n={n} {} shared: {warm_total} warm nodes over the {ceiling} ceiling",
                    mode_name(sym)
                ));
            }
            if let Some(private) = rows.iter().find(|r| {
                r.n == n && r.engine == "bitset" && r.symmetry == sym && r.memo && !r.shared
            }) {
                let (s, p) = (
                    shared.nodes_infeasible + shared.nodes_feasible,
                    private.nodes_infeasible + private.nodes_feasible,
                );
                if s > p {
                    failures.push(format!(
                        "n={n} {} shared: {s} nodes exceed the private memo row's {p}",
                        mode_name(sym)
                    ));
                }
            }
        }
        // λ-fold gates: one-node refutations on both kernels, frozen
        // legacy witness counts, packed ceilings, and the strict
        // packed < legacy win on every row.
        for (n, lambda, _, legacy_wit, packed_on, packed_off) in LAMBDA_CHECKS {
            let legacy = rows.iter().find(|r| {
                r.n == n && r.lambda == lambda && r.engine == "legacy"
            });
            match legacy {
                None => failures.push(format!("missing row n={n} lambda={lambda} legacy")),
                Some(row) => {
                    if row.nodes_infeasible != 1 || row.nodes_feasible != legacy_wit {
                        failures.push(format!(
                            "n={n} lambda={lambda} legacy: nodes {} + {} vs baseline 1 + {legacy_wit} (exact)",
                            row.nodes_infeasible, row.nodes_feasible
                        ));
                    }
                }
            }
            for (memo, ceiling) in [(true, packed_on), (false, packed_off)] {
                let Some(row) = rows.iter().find(|r| {
                    r.n == n && r.lambda == lambda && r.engine == "bitset" && r.memo == memo
                }) else {
                    failures.push(format!(
                        "missing row n={n} lambda={lambda} bitset memo={memo}"
                    ));
                    continue;
                };
                if row.nodes_infeasible != 1 || row.nodes_feasible > ceiling {
                    failures.push(format!(
                        "n={n} lambda={lambda} bitset memo={memo}: nodes {} + {} vs 1 + {ceiling} (ceiling)",
                        row.nodes_infeasible, row.nodes_feasible
                    ));
                }
                if row.nodes_feasible >= legacy_wit {
                    failures.push(format!(
                        "n={n} lambda={lambda} bitset memo={memo}: {} witness nodes not strictly \
                         under the legacy reference's {legacy_wit}",
                        row.nodes_feasible
                    ));
                }
            }
        }
        // The ρ₂(8) = 16 matchup: both routes certify with a one-node
        // refutation; the partition witness must stay under its ceiling
        // AND strictly below the forced lane core's count — the PR-10
        // acceptance criterion (the lane figure was the pre-partition
        // 3.7M-node headline).
        let lanes = rows.iter().find(|r| r.engine == "lanes-forced");
        let part8 = rows
            .iter()
            .find(|r| r.n == 8 && r.lambda == 2 && r.engine == "partition");
        match (lanes, part8) {
            (Some(lanes), Some(part)) => {
                for (label, row) in [("lanes-forced", lanes), ("partition", part)] {
                    if !row.certified || row.nodes_infeasible != 1 {
                        failures.push(format!(
                            "rho_2(8) {label}: certified={} refutation={} nodes \
                             (expected a certified pair with a one-node capacity prune)",
                            row.certified, row.nodes_infeasible
                        ));
                    }
                }
                if part.nodes_feasible > RHO2_8_PARTITION_CEILING {
                    failures.push(format!(
                        "rho_2(8) partition witness took {} nodes, over the {} ceiling",
                        part.nodes_feasible, RHO2_8_PARTITION_CEILING
                    ));
                }
                if part.nodes_feasible >= lanes.nodes_feasible {
                    failures.push(format!(
                        "rho_2(8) partition witness ({} nodes) not strictly under the \
                         forced lane core's {} nodes",
                        part.nodes_feasible, lanes.nodes_feasible
                    ));
                }
            }
            _ => failures.push("missing rho_2(8) partition/lanes-forced row".into()),
        }
        // The n = 16 rows. The `partition` budget-33 row CLOSED the
        // n ≡ 0 (mod 8) construction gap: it must certify ρ(16) = 33 —
        // a one-node parity refutation of 32 plus the witness at its
        // exact pinned node count (the sequential kernel is
        // deterministic). Losing the witness is a regression as loud as
        // a node-count drift. The `bitset` row tracks branch-and-bound
        // hardness: it must stay inconclusive at the cap (if the lane
        // core starts finding the covering, the hardness story changed —
        // surface it). The λ₂ budget-64 row likewise stays inconclusive
        // at the cap; a witness would pin ρ₂(16) = 64 and deserves a
        // ROADMAP entry, not a silent bench row.
        for (engine, lambda, expect_certified, expect_witness) in [
            ("bitset", 1u32, false, None),
            ("partition", 1, true, Some(N16_PARTITION_WITNESS_NODES)),
            ("partition", 2, false, None),
        ] {
            let Some(probe) = rows
                .iter()
                .find(|r| r.n == 16 && r.lambda == lambda && r.engine == engine)
            else {
                failures.push(format!("missing n=16 lambda={lambda} {engine} probe row"));
                continue;
            };
            if probe.certified != expect_certified {
                failures.push(format!(
                    "n=16 lambda={lambda} {engine} probe: certified={} (expected {}) — \
                     the frontier verdict changed; update ROADMAP.md and this gate",
                    probe.certified, expect_certified
                ));
            }
            if probe.nodes_infeasible != 1 {
                failures.push(format!(
                    "n=16 lambda={lambda} {engine} refutation took {} nodes (expected a \
                     one-node bound proof)",
                    probe.nodes_infeasible
                ));
            }
            if let Some(want) = expect_witness {
                if probe.nodes_feasible != want {
                    failures.push(format!(
                        "n=16 lambda={lambda} {engine} witness took {} nodes vs the \
                         pinned {want} (exact)",
                        probe.nodes_feasible
                    ));
                }
            }
        }
        assert!(
            failures.is_empty(),
            "node-count regression:\n  {}",
            failures.join("\n  ")
        );
        println!("check passed: node counts within recorded baselines");
    }
}
