//! Fixed solver workload for tracking the perf trajectory across PRs.
//!
//! Certifies `ρ(n)` for `n = 6..=10` over the full tile universe — prove
//! `ρ(n) − 1` infeasible, find a `ρ(n)` covering — through the
//! [`cyclecover_solver::api`] engine registry (`bitset`,
//! `bitset-parallel`, `legacy`), and writes `BENCH_1.json` (wall time +
//! expanded nodes per instance) to the current directory. Running the
//! identical workload through the request/engine boundary pins the API
//! redesign as zero-cost: node counts must match the pre-redesign
//! snapshot exactly.
//!
//! Usage: `cargo run --release -p cyclecover-bench --bin bench_snapshot`
//! Pass `--max-n <k>` to stop earlier (the legacy kernel dominates the
//! runtime at `n = 10`).

use cyclecover_solver::api::{engine_by_name, Optimality, Problem, SolveRequest};
use cyclecover_solver::lower_bound::rho_formula;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    n: u32,
    kernel: &'static str,
    nodes_infeasible: u64,
    nodes_feasible: u64,
    wall_ms: f64,
    certified: bool,
}

/// Proves `rho − 1` infeasible and finds a `rho` covering through one
/// engine; returns (proof nodes, witness nodes, wall ms, certified).
fn certify(engine: &'static str, problem: &Problem, rho: u32) -> (u64, u64, f64, bool) {
    let engine = engine_by_name(engine).expect("registered engine");
    let t0 = Instant::now();
    let below = engine.solve(problem, &SolveRequest::prove_infeasible(rho - 1));
    let at = engine.solve(problem, &SolveRequest::within_budget(rho));
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let ok = matches!(below.optimality(), Optimality::Infeasible)
        && matches!(at.optimality(), Optimality::Feasible);
    (below.stats().nodes, at.stats().nodes, wall, ok)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: u32 = args
        .iter()
        .position(|a| a == "--max-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);

    let mut rows: Vec<Row> = Vec::new();
    for n in 6..=max_n {
        let rho = rho_formula(n) as u32;
        let problem = Problem::complete(n);

        for (kernel, label) in [
            ("bitset", "bitset    "),
            ("bitset-parallel", "bitset-par"),
            ("legacy", "legacy    "),
        ] {
            let (ni, nf, wall, ok) = certify(kernel, &problem, rho);
            rows.push(Row {
                n,
                kernel,
                nodes_infeasible: ni,
                nodes_feasible: nf,
                wall_ms: wall,
                certified: ok,
            });
            println!("n={n:2}  {label}  {wall:>10.1} ms  nodes {ni} + {nf}  certified={ok}");
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"snapshot\": 1,\n");
    json.push_str(
        "  \"workload\": \"certify rho(n) over the full tile universe: prove rho-1 infeasible, find a rho covering\",\n",
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"instances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"rho\": {}, \"kernel\": \"{}\", \"nodes_infeasible\": {}, \"nodes_feasible\": {}, \"wall_ms\": {:.1}, \"certified\": {}}}",
            r.n,
            rho_formula(r.n),
            r.kernel,
            r.nodes_infeasible,
            r.nodes_feasible,
            r.wall_ms,
            r.certified
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
    println!("\nwrote BENCH_1.json ({} instances)", rows.len());
    assert!(rows.iter().all(|r| r.certified), "certification failed");
}
