//! Fixed solver workload for tracking the perf trajectory across PRs.
//!
//! Certifies `ρ(n)` — prove `ρ(n) − 1` infeasible, find a `ρ(n)` covering
//! over the full tile universe — through the [`cyclecover_solver::api`]
//! engine registry, now across the symmetry dimension: `bitset` and
//! `bitset-parallel` run at `SymmetryMode::Off`/`Root`/`Full`, `legacy` is
//! the pre-bitset reference. Writes `BENCH_3.json` with node counts per
//! (n, engine, symmetry) so the dihedral-reduction factor is tracked
//! in-trajectory:
//!
//! * the `Off` rows must reproduce BENCH_1.json *exactly* (±0 nodes) —
//!   the symmetry machinery is zero-cost when disabled;
//! * the `n = 12` row certifies the budget-18 refutation (ROADMAP's last
//!   open ρ row): a one-node parity-bound proof under `Root`/`Full`,
//!   node-capped at 30M under `Off` where it exhausts (the pre-PR state).
//!
//! Usage: `cargo run --release -p cyclecover-bench --bin bench_snapshot`
//!
//! * `--max-n <k>`: stop the n ≤ 10 sweep earlier (legacy dominates at 10)
//! * `--skip-n12`: drop the n = 12 certification rows
//! * `--quick`: regression subset only — n ∈ {8, 10}, engine `bitset`,
//!   `Off` + `Root` (no n = 12, no legacy, no parallel)
//! * `--check`: after running, fail unless the `Off` rows match BENCH_1
//!   exactly and the `Root` rows are within the recorded baselines — the
//!   CI node-count regression gate (`--quick --check`)

use cyclecover_solver::api::{
    engine_by_name, Optimality, Problem, SolveRequest, SymmetryMode,
};
use cyclecover_solver::lower_bound::rho_formula;
use std::fmt::Write as _;
use std::time::Instant;

/// Node cap for the n = 12 budget-18 refutation probe: the pre-symmetry
/// search exceeds this on one core (the ROADMAP open item); the reduced
/// modes must finish far under it.
const N12_PROOF_CAP: u64 = 30_000_000;

/// `(n, symmetry, proof nodes, witness nodes)` ceilings for `--check`,
/// engine `bitset`. `Off` rows are exact BENCH_1 reproductions (±0);
/// `Root` rows are the recorded BENCH_3 counts — exceeding either fails
/// the regression gate.
const CHECK_BASELINES: [(u32, SymmetryMode, u64, u64); 4] = [
    (8, SymmetryMode::Off, 97_465, 9),
    (8, SymmetryMode::Root, 1, 9),
    (10, SymmetryMode::Off, 1, 13_453_767),
    (10, SymmetryMode::Root, 1, 770_227),
];

struct Row {
    n: u32,
    engine: &'static str,
    symmetry: SymmetryMode,
    nodes_infeasible: u64,
    nodes_feasible: u64,
    sym_factor: u32,
    wall_ms: f64,
    certified: bool,
    /// Whether an uncertified row is expected (the capped n = 12 `Off`
    /// probe) rather than a failure.
    may_exhaust: bool,
}

fn mode_name(sym: SymmetryMode) -> &'static str {
    match sym {
        SymmetryMode::Off => "off",
        SymmetryMode::Root => "root",
        SymmetryMode::Full => "full",
    }
}

/// Proves `rho − 1` infeasible (optionally node-capped) and finds a `rho`
/// covering through one engine at one symmetry level.
fn certify(
    engine: &'static str,
    problem: &Problem,
    rho: u32,
    symmetry: SymmetryMode,
    proof_cap: u64,
) -> Row {
    let n = problem.ring().n();
    let eng = engine_by_name(engine).expect("registered engine");
    let t0 = Instant::now();
    let below = eng.solve(
        problem,
        &SolveRequest::prove_infeasible(rho - 1)
            .with_symmetry(symmetry)
            .with_max_nodes(proof_cap),
    );
    let at = eng.solve(
        problem,
        &SolveRequest::within_budget(rho).with_symmetry(symmetry),
    );
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let certified = matches!(below.optimality(), Optimality::Infeasible)
        && matches!(at.optimality(), Optimality::Feasible);
    Row {
        n,
        engine,
        symmetry,
        nodes_infeasible: below.stats().nodes,
        nodes_feasible: at.stats().nodes,
        sym_factor: below.stats().sym_factor.max(at.stats().sym_factor),
        wall_ms: wall,
        certified,
        may_exhaust: proof_cap < u64::MAX,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let skip_n12 = quick || args.iter().any(|a| a == "--skip-n12");
    let max_n: u32 = args
        .iter()
        .position(|a| a == "--max-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);

    let mut rows: Vec<Row> = Vec::new();
    let mut run = |row: Row| {
        println!(
            "n={:2}  {:15} {:5}  {:>10.1} ms  nodes {} + {}  x{}  certified={}",
            row.n,
            row.engine,
            mode_name(row.symmetry),
            row.wall_ms,
            row.nodes_infeasible,
            row.nodes_feasible,
            row.sym_factor,
            row.certified
        );
        rows.push(row);
    };

    let ns: Vec<u32> = if quick {
        [8, 10].iter().copied().filter(|&n| n <= max_n).collect()
    } else {
        (6..=max_n).collect()
    };
    for &n in &ns {
        let rho = rho_formula(n) as u32;
        let problem = Problem::complete(n);
        for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
            if quick && sym == SymmetryMode::Full {
                continue;
            }
            run(certify("bitset", &problem, rho, sym, u64::MAX));
        }
        if !quick {
            for sym in [SymmetryMode::Off, SymmetryMode::Root] {
                run(certify("bitset-parallel", &problem, rho, sym, u64::MAX));
            }
            run(certify("legacy", &problem, rho, SymmetryMode::Off, u64::MAX));
        }
    }

    if !skip_n12 {
        // The n = 12 certification row: budget-18 refutation (Theorem 2's
        // +1 at p = 6) plus the 19-tile witness. `Off` is capped at the
        // 30M-node budget the ROADMAP open item named; the reduced modes
        // must certify within it.
        let problem = Problem::complete(12);
        for sym in [SymmetryMode::Off, SymmetryMode::Root, SymmetryMode::Full] {
            let cap = if sym == SymmetryMode::Off { N12_PROOF_CAP } else { u64::MAX };
            run(certify("bitset", &problem, 19, sym, cap));
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"snapshot\": 3,\n");
    json.push_str(
        "  \"workload\": \"certify rho(n) over the full tile universe: prove rho-1 \
         infeasible, find a rho covering; symmetry dimension off/root/full\",\n",
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"n12_proof_cap\": {N12_PROOF_CAP},");
    json.push_str("  \"instances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"rho\": {}, \"kernel\": \"{}\", \"symmetry\": \"{}\", \
             \"nodes_infeasible\": {}, \"nodes_feasible\": {}, \"sym_factor\": {}, \
             \"wall_ms\": {:.1}, \"certified\": {}}}",
            r.n,
            rho_formula(r.n),
            r.engine,
            mode_name(r.symmetry),
            r.nodes_infeasible,
            r.nodes_feasible,
            r.sym_factor,
            r.wall_ms,
            r.certified
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
    println!("\nwrote BENCH_3.json ({} instances)", rows.len());

    // Every row certifies except, possibly, the node-capped n = 12 `Off`
    // probe (the documented pre-symmetry state).
    for r in &rows {
        assert!(
            r.certified || r.may_exhaust,
            "certification failed: n={} {} {}",
            r.n,
            r.engine,
            mode_name(r.symmetry)
        );
    }

    if check {
        let mut failures = Vec::new();
        for (n, sym, proof, witness) in CHECK_BASELINES {
            let Some(row) = rows
                .iter()
                .find(|r| r.n == n && r.engine == "bitset" && r.symmetry == sym)
            else {
                failures.push(format!("missing row n={n} bitset {}", mode_name(sym)));
                continue;
            };
            let exact = sym == SymmetryMode::Off;
            let proof_bad = if exact {
                row.nodes_infeasible != proof
            } else {
                row.nodes_infeasible > proof
            };
            let witness_bad = if exact {
                row.nodes_feasible != witness
            } else {
                row.nodes_feasible > witness
            };
            if proof_bad || witness_bad {
                failures.push(format!(
                    "n={n} bitset {}: nodes {} + {} vs baseline {} + {} ({})",
                    mode_name(sym),
                    row.nodes_infeasible,
                    row.nodes_feasible,
                    proof,
                    witness,
                    if exact { "exact" } else { "ceiling" }
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "node-count regression:\n  {}",
            failures.join("\n  ")
        );
        println!("check passed: node counts within recorded baselines");
    }
}
