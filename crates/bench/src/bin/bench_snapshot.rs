//! Fixed solver workload for tracking the perf trajectory across PRs.
//!
//! Certifies `ρ(n)` for `n = 6..=10` over the full tile universe — prove
//! `ρ(n) − 1` infeasible, find a `ρ(n)` covering — on the bitset kernel
//! (sequential and parallel) and the legacy multiplicity kernel, and
//! writes `BENCH_1.json` (wall time + expanded nodes per instance) to the
//! current directory.
//!
//! Usage: `cargo run --release -p cyclecover-bench --bin bench_snapshot`
//! Pass `--max-n <k>` to stop earlier (the legacy kernel dominates the
//! runtime at `n = 10`).

use cyclecover_ring::Ring;
use cyclecover_solver::bnb::{self, Outcome};
use cyclecover_solver::lower_bound::rho_formula;
use cyclecover_solver::TileUniverse;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    n: u32,
    kernel: &'static str,
    nodes_infeasible: u64,
    nodes_feasible: u64,
    wall_ms: f64,
    certified: bool,
}

fn certify(
    rho: u32,
    run: impl Fn(u32) -> (Outcome, bnb::Stats),
) -> (u64, u64, f64, bool) {
    let t0 = Instant::now();
    let (below, s_below) = run(rho - 1);
    let (at, s_at) = run(rho);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let ok = matches!(below, Outcome::Infeasible) && matches!(at, Outcome::Feasible(_));
    (s_below.nodes, s_at.nodes, wall, ok)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: u32 = args
        .iter()
        .position(|a| a == "--max-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);

    let mut rows: Vec<Row> = Vec::new();
    for n in 6..=max_n {
        let rho = rho_formula(n) as u32;
        let u = TileUniverse::new(Ring::new(n), n as usize);
        let spec = bnb::CoverSpec::complete(n);

        let (ni, nf, wall, ok) = certify(rho, |b| {
            bnb::cover_spec_within_budget(&u, &spec, b, u64::MAX)
        });
        rows.push(Row { n, kernel: "bitset", nodes_infeasible: ni, nodes_feasible: nf, wall_ms: wall, certified: ok });
        println!("n={n:2}  bitset      {wall:>10.1} ms  nodes {ni} + {nf}  certified={ok}");

        let (ni, nf, wall, ok) = certify(rho, |b| {
            bnb::cover_spec_within_budget_parallel(&u, &spec, b, u64::MAX, threads)
        });
        rows.push(Row { n, kernel: "bitset-parallel", nodes_infeasible: ni, nodes_feasible: nf, wall_ms: wall, certified: ok });
        println!("n={n:2}  bitset-par  {wall:>10.1} ms  nodes {ni} + {nf}  certified={ok}");

        let (ni, nf, wall, ok) = certify(rho, |b| {
            bnb::cover_spec_within_budget_legacy(&u, &spec, b, u64::MAX)
        });
        rows.push(Row { n, kernel: "legacy", nodes_infeasible: ni, nodes_feasible: nf, wall_ms: wall, certified: ok });
        println!("n={n:2}  legacy      {wall:>10.1} ms  nodes {ni} + {nf}  certified={ok}");
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"snapshot\": 1,\n");
    json.push_str(
        "  \"workload\": \"certify rho(n) over the full tile universe: prove rho-1 infeasible, find a rho covering\",\n",
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"instances\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"rho\": {}, \"kernel\": \"{}\", \"nodes_infeasible\": {}, \"nodes_feasible\": {}, \"wall_ms\": {:.1}, \"certified\": {}}}",
            r.n,
            rho_formula(r.n),
            r.kernel,
            r.nodes_infeasible,
            r.nodes_feasible,
            r.wall_ms,
            r.certified
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
    println!("\nwrote BENCH_1.json ({} instances)", rows.len());
    assert!(rows.iter().all(|r| r.certified), "certification failed");
}
