//! E9 — torus coverings: the paper's "tori" future-work direction.
//!
//! For each `R × C` torus: the structured construction's size (lifted
//! ring coverings + crossed quads), the generalized capacity and degree
//! lower bounds, full validation against `K_{RC}`, the survivability
//! audit, and the wavelength count after conflict-graph coloring
//! (where the torus — unlike the ring — permits reuse).

use cyclecover_bench::{header, row};
use cyclecover_color::{clique_lower_bound, conflict_graph, dsatur};
use cyclecover_graph::builders;
use cyclecover_topo::{cover, mesh_cover, protect, GridTopology};

fn main() {
    println!("E9 — DRC coverings of K_n on R x C tori (structured construction vs lower bounds)");
    println!();
    let widths = [7, 5, 8, 9, 8, 7, 7, 7, 6, 7, 7];
    header(
        &["torus", "n", "cycles", "triAbla", "greedy", "capLB", "degLB", "valid", "surv", "waves", "cliqLB"],
        &widths,
    );
    let mut all_ok = true;
    for (r, c) in [(3u32, 3u32), (3, 4), (4, 4), (3, 5), (4, 5), (5, 5), (4, 6), (5, 6), (6, 6)] {
        let topo = GridTopology::torus(r, c);
        let n = topo.vertex_count();
        let inst = builders::complete(n);
        let covering = mesh_cover::cover_torus(&topo);
        let ablation = mesh_cover::cover_torus_triangles(&topo);
        let valid = covering.validate(topo.graph(), &inst).is_ok()
            && ablation.validate(topo.graph(), &inst).is_ok();
        // Parallel audit on the big shapes, sequential result identical.
        let audit = protect::audit_link_failures_parallel(topo.graph(), &covering, 4);
        let conflicts = conflict_graph(&covering.footprints());
        let coloring = dsatur(&conflicts);
        // Search-based covering: enumerate oracle-routable C3/C4 within
        // distance 3 and set-cover greedily (small shapes only — the
        // candidate space grows with the ball size cubed).
        let greedy = if n <= 16 {
            // Candidate cycles must be able to span any request: use the
            // torus diameter as the locality radius.
            let diameter = (r / 2 + c / 2) as usize;
            let cands = cyclecover_topo::search::enumerate_routable_cycles(
                topo.graph(),
                diameter,
                4,
                500_000,
            );
            match cyclecover_topo::search::greedy_cover_graph(topo.graph(), &inst, &cands) {
                Some(gc) => {
                    assert!(gc.validate(topo.graph(), &inst).is_ok());
                    gc.len().to_string()
                }
                None => "uncov".to_string(),
            }
        } else {
            "-".to_string()
        };
        all_ok &= valid && audit.fully_survivable && ablation.len() > covering.len();
        println!(
            "{}",
            row(
                &[
                    format!("{r}x{c}"),
                    n.to_string(),
                    covering.len().to_string(),
                    ablation.len().to_string(),
                    greedy,
                    cover::capacity_lower_bound(topo.graph(), &inst).to_string(),
                    cover::degree_lower_bound(&inst).to_string(),
                    valid.to_string(),
                    audit.fully_survivable.to_string(),
                    coloring.count.to_string(),
                    clique_lower_bound(&conflicts).to_string(),
                ],
                &widths
            )
        );
    }
    println!();
    println!("grid (no wraparound) comparison — crossed quads infeasible, corner triangles instead:");
    let widths2 = [7, 5, 12, 13, 7];
    header(&["grid", "n", "grid cycles", "torus cycles", "valid"], &widths2);
    for (r, c) in [(3u32, 3u32), (3, 4), (4, 4), (4, 5)] {
        let grid = GridTopology::grid(r, c);
        let torus = GridTopology::torus(r, c);
        let n = grid.vertex_count();
        let inst = builders::complete(n);
        let gc = mesh_cover::cover_grid(&grid);
        let tc = mesh_cover::cover_torus(&torus);
        let valid = gc.validate(grid.graph(), &inst).is_ok();
        all_ok &= valid;
        println!(
            "{}",
            row(
                &[
                    format!("{r}x{c}"),
                    n.to_string(),
                    gc.len().to_string(),
                    tc.len().to_string(),
                    valid.to_string(),
                ],
                &widths2
            )
        );
    }
    println!();
    println!("all checks passed: {all_ok}");
    assert!(all_ok);
}
