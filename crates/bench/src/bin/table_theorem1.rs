//! E1 — Theorem 1 table: `ρ(2p+1) = p(p+1)/2` with `p` C3 + `p(p−1)/2` C4.
//!
//! For each odd `n` the paper's claim is regenerated: formula vs the size
//! of the constructed covering (independently validated), its C3/C4
//! composition, the capacity lower bound, and for small `n` the exact
//! optimum from branch & bound.

use cyclecover_bench::{header, row};
use cyclecover_core::{construct_optimal, odd, rho};
use cyclecover_solver::api::{engine_by_name, ExecPolicy, Optimality, Problem, SolveRequest};
use cyclecover_solver::lower_bound::capacity_lower_bound;

fn main() {
    println!("E1 — Theorem 1 (odd n): rho(n) = p(p+1)/2, composition p C3 + p(p-1)/2 C4");
    println!();
    let widths = [5, 4, 8, 8, 8, 6, 6, 7, 9, 7];
    header(
        &["n", "p", "formula", "built", "cap.LB", "C3", "C4", "exact?", "solver", "valid"],
        &widths,
    );
    let mut all_ok = true;
    for p in 1u32..=100 {
        let n = 2 * p + 1;
        let cover = construct_optimal(n);
        let stats = cover.stats();
        let valid = cover.validate().is_ok();
        let exact = cover.is_exact_decomposition(1);
        let (want_c3, want_c4) = odd::expected_composition(n);
        let solver_opt = if n <= 11 {
            let sol = engine_by_name("bitset-parallel").expect("registered").solve(
                &Problem::complete(n),
                &SolveRequest::find_optimal()
                    .with_max_nodes(100_000_000)
                    .with_policy(ExecPolicy::parallel()),
            );
            match sol.optimality() {
                Optimality::Optimal { .. } => sol.size().expect("covering").to_string(),
                _ => "limit".into(),
            }
        } else {
            "-".into()
        };
        let ok = valid
            && exact
            && cover.len() as u64 == rho(n)
            && stats.c3 as u64 == want_c3
            && stats.c4 as u64 == want_c4;
        all_ok &= ok;
        // Print a window of rows plus every 10th, to keep output readable.
        if n <= 31 || p % 10 == 0 {
            println!(
                "{}",
                row(
                    &[
                        n.to_string(),
                        p.to_string(),
                        rho(n).to_string(),
                        cover.len().to_string(),
                        capacity_lower_bound(n).to_string(),
                        stats.c3.to_string(),
                        stats.c4.to_string(),
                        if exact { "yes" } else { "NO" }.into(),
                        solver_opt,
                        if ok { "ok" } else { "FAIL" }.into(),
                    ],
                    &widths,
                )
            );
        }
    }
    println!();
    println!(
        "Checked all odd n in 3..=201: {}",
        if all_ok { "every row matches Theorem 1 exactly" } else { "MISMATCH FOUND" }
    );
    assert!(all_ok);
}
