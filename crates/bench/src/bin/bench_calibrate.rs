//! Calibration fitter for predictive admission.
//!
//! Measures the exact `bitset` engine's `(nodes, wall_ms)` cost at every
//! `(n, symmetry)` point the daemon's [`CostModel`] serves from, and
//! emits the `cyclecover-calibration` v1 document that is committed as
//! `crates/service/calibration.json`. Node counts are deterministic
//! (the same numbers `bench_snapshot --check` gates on); wall times are
//! the minimum of three runs, the standard robust estimator for "how
//! fast can this host actually do it".
//!
//! Usage: `cargo run --release -p cyclecover-bench --bin bench_calibrate
//! [-- --max-n N] [--out FILE] [--check]`
//!
//! `--out` writes the document (regenerate the committed table with
//! `--out crates/service/calibration.json`); without it the document
//! goes to stdout. `--check` re-measures every `find_optimal` point of
//! the *committed* table and fails if any node count drifted — the
//! predictor honesty guard: a table whose node column no longer matches
//! the engine must be regenerated, not trusted. Wall ratios are printed
//! but not gated (hardware differs between calibration and CI hosts;
//! admission already absorbs that with its safety factor).

use cyclecover_service::{CalibrationRow, CostModel, SAFETY_FACTOR};
use cyclecover_io::json::SolveJob;
use cyclecover_solver::api::{engine_by_name, Problem, SolveRequest, SymmetryMode};

const MODES: [(SymmetryMode, &str); 3] = [
    (SymmetryMode::Root, "root"),
    (SymmetryMode::Off, "off"),
    (SymmetryMode::Full, "full"),
];

/// One calibration point: best-of-3 wall, node count asserted identical
/// across the runs (the search is deterministic — disagreement means
/// the measurement itself is broken).
fn measure(n: u32, symmetry: SymmetryMode, symmetry_name: &str) -> CalibrationRow {
    let engine = engine_by_name("bitset").expect("bitset engine registered");
    let problem = Problem::complete(n);
    let request = SolveRequest::find_optimal()
        .with_symmetry(symmetry)
        .with_memo(true);
    let mut nodes: Option<u64> = None;
    let mut wall_ms = f64::INFINITY;
    for _ in 0..3 {
        let solution = engine.solve(&problem, &request);
        let st = solution.stats();
        match nodes {
            None => nodes = Some(st.nodes),
            Some(prev) => assert_eq!(
                prev, st.nodes,
                "non-deterministic node count at n={n} symmetry={symmetry_name}"
            ),
        }
        wall_ms = wall_ms.min(st.wall.as_secs_f64() * 1e3);
    }
    CalibrationRow {
        n,
        objective: "find_optimal".to_string(),
        symmetry: symmetry_name.to_string(),
        memo: true,
        nodes: nodes.unwrap(),
        // Quantized to the document's microsecond-level precision so the
        // in-memory model equals its serialized form exactly.
        wall_ms: (wall_ms * 1e3).round() / 1e3,
    }
}

fn symmetry_of(name: &str) -> SymmetryMode {
    match name {
        "off" => SymmetryMode::Off,
        "full" => SymmetryMode::Full,
        _ => SymmetryMode::Root,
    }
}

/// `--check`: the committed table's node column must still match the
/// engine exactly.
fn check_committed(max_n: u32) -> bool {
    let committed = CostModel::builtin();
    let mut checked = 0usize;
    let mut drifted = 0usize;
    for row in committed.rows() {
        if row.objective != "find_optimal" || !row.memo || row.n > max_n {
            continue;
        }
        let measured = measure(row.n, symmetry_of(&row.symmetry), &row.symmetry);
        let ok = measured.nodes == row.nodes;
        println!(
            "n={:2} symmetry={:4}  nodes {:>9} (table {:>9}) {}  wall {:>9.3} ms (table {:>9.3}, x{:.2})",
            row.n,
            row.symmetry,
            measured.nodes,
            row.nodes,
            if ok { "ok   " } else { "DRIFT" },
            measured.wall_ms,
            row.wall_ms,
            measured.wall_ms / row.wall_ms.max(1e-9),
        );
        checked += 1;
        drifted += usize::from(!ok);
    }
    assert!(checked > 0, "committed table has no checkable points");
    // The admission path the daemon actually takes: the committed table
    // must carry exact wire-default points, and a table-feasible
    // deadline must never be refused.
    for row in committed.rows() {
        if row.objective != "find_optimal" || row.symmetry != "root" || row.n > max_n {
            continue;
        }
        let job = SolveJob::new("probe", row.n);
        let feasible = row.wall_ms.ceil() as u64 + 1;
        assert!(
            committed.unmeetable(&job, feasible).is_none(),
            "honesty violation: table-feasible n={} refused at {feasible} ms",
            row.n
        );
        assert!(
            committed
                .unmeetable(&job, ((row.wall_ms / SAFETY_FACTOR) * 0.25).floor() as u64)
                .is_some()
                || row.wall_ms < SAFETY_FACTOR,
            "n={}: a deadline far under wall/{SAFETY_FACTOR} must be refused",
            row.n
        );
    }
    println!("checked {checked} committed points, {drifted} drifted");
    drifted == 0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_n = 10u32;
    let mut out: Option<String> = None;
    let mut check = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--max-n" => max_n = it.next().and_then(|v| v.parse().ok()).expect("--max-n N"),
            "--out" => out = Some(it.next().expect("--out FILE").clone()),
            "--check" => check = true,
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(max_n >= 8, "calibration needs at least the n<=8 points");

    if check {
        if !check_committed(max_n) {
            eprintln!("calibration drift: regenerate with bench_calibrate --out crates/service/calibration.json");
            std::process::exit(1);
        }
        return;
    }

    let mut rows = Vec::new();
    for (symmetry, name) in MODES {
        for n in 6..=max_n {
            let row = measure(n, symmetry, name);
            eprintln!(
                "measured n={:2} symmetry={:4}  {:>9} nodes  {:>9.3} ms",
                n, name, row.nodes, row.wall_ms
            );
            rows.push(row);
        }
    }
    let model = CostModel::new(rows);
    let text = model.to_json();
    // The emitted document must round-trip and serve the wire-default
    // admission path before anyone commits it.
    let back = CostModel::from_json(&text).expect("emitted document parses");
    assert_eq!(back.rows(), model.rows(), "round-trip drift");
    for n in [8u32, max_n] {
        assert!(
            back.predict(&SolveJob::new("probe", n))
                .is_some_and(|p| p.exact),
            "emitted table missing the exact n={n} wire-default point"
        );
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &text).expect("writable --out path");
            eprintln!("wrote {} rows to {path}", model.rows().len());
        }
        None => print!("{text}"),
    }
}
