//! Throughput snapshot of the always-on solve daemon over loopback TCP.
//!
//! Spins the daemon up in-process, streams a seeded mixed queue at it in
//! two waves over real sockets (so the second wave hits a warm universe
//! cache from the first), replays the first wave as a third (so repeat
//! traffic hits the certificate cache the first wave populated), then
//! drains it gracefully and reports the serving-level numbers: jobs/s
//! end to end, warm-cache hit rate, memo and cert-cache traffic per 1k
//! jobs, and the predicted-vs-actual node error of the admission cost
//! model. One malformed line and one predictively-unmeetable deadline
//! ride along so the reject paths are exercised on every run.
//!
//! Usage: `cargo run --release -p cyclecover-bench --bin bench_daemon
//! [-- --jobs N] [--workers N] [--quick] [--json]`
//!
//! Clean-path honesty is asserted, not just reported: every well-formed
//! generous-deadline job is answered (the predictor refuses only the
//! deliberately doomed one), and backpressure/overload counters are zero
//! at the default queue depth.

use cyclecover_io::json::{request_to_json, to_single_line, SolveJob};
use cyclecover_service::{CertCache, Daemon, DaemonConfig, DaemonStats};
use cyclecover_solver::api::Objective;
use cyclecover_solver::lower_bound::rho_formula;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read as _, Write as _};
use std::time::{Duration, Instant};

/// The seeded mixed queue: complete certifications, feasibility probes,
/// heuristic jobs, partial instances, and deadline-carrying jobs — the
/// same traffic shapes as `bench_service`, here serialized to wire
/// lines.
fn build_queue(count: usize, max_n: u32, rng: &mut StdRng) -> Vec<String> {
    let mut lines = Vec::with_capacity(count);
    for i in 0..count {
        let n = rng.gen_range(6..=max_n);
        let mut job = SolveJob::new(format!("d{i}"), n);
        match i % 5 {
            0 => {}
            1 => job.objective = Objective::WithinBudget(rho_formula(n) as u32 + 1),
            2 => job.engine = "greedy-improve".to_string(),
            3 => {
                let g = cyclecover_workload::locality(n as usize, 2);
                job.requests = Some(g.edges().iter().map(|e| (e.u(), e.v())).collect());
            }
            _ => job.deadline_ms = Some(60_000),
        }
        lines.push(to_single_line(&request_to_json(&job)));
    }
    lines
}

/// Streams `lines` over one connection, half-closes, and reads every
/// response line back. Returns (response lines, elapsed).
fn wave(addr: std::net::SocketAddr, lines: &[String]) -> (Vec<String>, Duration) {
    let started = Instant::now();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut payload = lines.join("\n");
    payload.push('\n');
    stream.write_all(payload.as_bytes()).expect("stream jobs");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read responses");
    (
        text.lines().map(str::to_string).collect(),
        started.elapsed(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 60usize;
    let mut workers = 1usize;
    let mut as_json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jobs" => jobs = it.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).expect("--workers N"),
            "--quick" => jobs = 20,
            "--json" => as_json = true,
            other => panic!("unknown flag {other}"),
        }
    }
    let max_n = 9;
    let mut rng = StdRng::seed_from_u64(7001);
    let queue = build_queue(jobs, max_n, &mut rng);

    let mut daemon = Daemon::bind(
        "127.0.0.1:0".parse().unwrap(),
        DaemonConfig {
            workers,
            ..DaemonConfig::default()
        },
    )
    .expect("bind loopback");
    // An in-memory certificate cache (no save path): wave 3 replays wave
    // 1's lines, and the terminal complete-spec certificates among them
    // answer from the cache with zero kernel nodes. Cache-served answers
    // carry no prediction, so the admission model's exact
    // predicted-vs-actual accounting below is undisturbed.
    daemon.set_cert_cache(CertCache::new(), None);
    let addr = daemon.local_addr().expect("local addr");
    let server = std::thread::spawn(move || daemon.run());

    // Wave 1: the first half, plus one malformed line mid-stream.
    let mid = queue.len() / 2;
    let mut first: Vec<String> = queue[..mid].to_vec();
    first.insert(mid / 2, "{not even close to json".to_string());
    let (answers1, wall1) = wave(addr, &first);

    // Wave 2: the second half re-uses wave 1's universes (warm
    // generations), plus the deliberately doomed deadline: the committed
    // n = 10 root certification wall is ~100 ms, so 1 ms is refused at
    // admission by the predictor, never queued.
    let mut second: Vec<String> = queue[mid..].to_vec();
    let mut doomed = SolveJob::new("doomed", 10);
    doomed.deadline_ms = Some(1);
    second.push(to_single_line(&request_to_json(&doomed)));
    let (answers2, wall2) = wave(addr, &second);

    // Wave 3: replay wave 1's well-formed lines verbatim — the repeat
    // traffic the certificate cache exists for. Complete-spec terminal
    // certificates from wave 1 answer without touching the kernel.
    let (answers3, wall3) = wave(addr, &queue[..mid]);

    // Graceful drain; the final stats document is the daemon's answer.
    let (drain, _) = wave(addr, &[
        r#"{"format": "cyclecover-control", "version": 1, "op": "shutdown"}"#.to_string(),
    ]);
    let final_doc = drain.last().expect("final stats document");
    let reported = DaemonStats::from_json(final_doc).expect("final stats parse");
    let stats = server.join().expect("daemon thread");

    // Exactly one terminal document per line streamed, on both waves.
    let total_jobs = (jobs + mid) as u64;
    assert_eq!(answers1.len(), first.len(), "wave 1 answers");
    assert_eq!(answers2.len(), second.len(), "wave 2 answers");
    assert_eq!(answers3.len(), mid, "wave 3 answers");
    assert_eq!(stats.rejected_parse, 1, "the malformed line");
    assert_eq!(stats.rejected_predicted, 1, "only the doomed deadline");
    assert_eq!(stats.jobs_received, total_jobs, "all well-formed jobs admitted");
    assert_eq!(stats.jobs_answered, total_jobs, "every admitted job answered");
    assert_eq!(stats.unstarted, 0, "graceful drain left nothing behind");
    assert_eq!(stats.rejected_overload, 0, "clean run hit the global queue bound");
    assert_eq!(stats.stalls, 0, "clean run tripped backpressure");
    assert_eq!(reported.jobs_answered, stats.jobs_answered, "wire stats agree");
    assert!(stats.generations >= 3, "three waves, three generations minimum");
    assert!(stats.warm_universe_hits > 0, "wave 2 never reused a universe");
    assert!(
        stats.cert_cache_hits > 0,
        "wave 3's replayed certifications never hit the certificate cache"
    );
    assert!(stats.cert_cache_entries > 0, "wave 1 recorded no certificates");
    assert_eq!(stats.shared_hits, 0, "sharing is opt-in; the daemon default is off");

    let serving = (wall1 + wall2 + wall3).as_secs_f64();
    let jobs_per_s = stats.jobs_answered as f64 / serving.max(1e-9);
    let warm_rate = stats.warm_universe_hits as f64
        / (stats.warm_universe_lookups.max(1)) as f64;
    // Signed relative node error of the admission model over the jobs it
    // was confident about (exact calibration points).
    let rel_err = if stats.actual_nodes > 0 {
        (stats.predicted_nodes as f64 - stats.actual_nodes as f64) / stats.actual_nodes as f64
    } else {
        0.0
    };

    // Memo and certificate-cache traffic, normalized per 1k answered
    // jobs so runs of different sizes compare.
    let per_1k = |v: u64| v as f64 * 1000.0 / stats.jobs_answered.max(1) as f64;

    if as_json {
        println!(
            "{{\"format\": \"cyclecover-bench-daemon\", \"version\": 1, \
             \"jobs\": {}, \"answered\": {}, \"jobs_per_s\": {:.1}, \
             \"warm_hit_rate\": {:.3}, \"predicted_jobs\": {}, \
             \"predicted_nodes\": {}, \"actual_nodes\": {}, \
             \"predicted_rel_err\": {:.4}, \"rejected_parse\": {}, \
             \"rejected_predicted\": {}, \"generations\": {}, \
             \"memo_hits_per_1k\": {:.1}, \"shared_hits_per_1k\": {:.1}, \
             \"cert_cache_hits_per_1k\": {:.1}, \"cert_cache_entries\": {}}}",
            total_jobs,
            stats.jobs_answered,
            jobs_per_s,
            warm_rate,
            stats.predicted_jobs,
            stats.predicted_nodes,
            stats.actual_nodes,
            rel_err,
            stats.rejected_parse,
            stats.rejected_predicted,
            stats.generations,
            per_1k(stats.memo_hits),
            per_1k(stats.shared_hits),
            per_1k(stats.cert_cache_hits),
            stats.cert_cache_entries,
        );
        return;
    }
    println!("bench_daemon — streamed mixed workload (seeded, n <= {max_n}, 3 waves)");
    println!(
        "jobs: {} streamed, {} answered, {} parse-rejected, {} predicted-unmeetable",
        total_jobs, stats.jobs_answered, stats.rejected_parse, stats.rejected_predicted
    );
    println!(
        "throughput: {:.1} jobs/s end-to-end over TCP ({:.1} ms serving wall, {workers} worker(s))",
        jobs_per_s,
        serving * 1e3
    );
    println!(
        "warm universe cache: {} hits / {} lookups across generations ({:.0}% warm)",
        stats.warm_universe_hits,
        stats.warm_universe_lookups,
        warm_rate * 100.0
    );
    println!(
        "admission model: {} jobs predicted, {} predicted vs {} actual nodes ({:+.1}% error)",
        stats.predicted_jobs,
        stats.predicted_nodes,
        stats.actual_nodes,
        rel_err * 100.0
    );
    println!(
        "memo, per 1k jobs: {:.1} memo hits, {:.1} shared hits, {:.1} cert-cache hits ({} certificates cached)",
        per_1k(stats.memo_hits),
        per_1k(stats.shared_hits),
        per_1k(stats.cert_cache_hits),
        stats.cert_cache_entries,
    );
    println!(
        "generations: {}, connections: {} accepted / {} closed, stalls: {}, overload: {}",
        stats.generations,
        stats.connections_accepted,
        stats.connections_closed,
        stats.stalls,
        stats.rejected_overload
    );
}
