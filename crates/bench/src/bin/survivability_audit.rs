//! E6 — survivability audit: the paper's protection claim, exercised.
//!
//! For each `n`, build the WDM network from the optimal covering, inject
//! all `n` single-link failures, and verify: every affected demand is
//! restored inside its own subnetwork using the spare wavelength, without
//! touching the failed link and without exceeding spare capacity.

use cyclecover_bench::{header, row};
use cyclecover_core::construct_optimal;
use cyclecover_net::{audit_all_failures, WdmNetwork};

fn main() {
    println!("E6 — single-link failure audit (all n failures x all subnetworks)");
    println!();
    let widths = [5, 8, 8, 10, 10, 12, 10];
    header(
        &["n", "cycles", "ADMs", "failures", "reroutes", "restored", "stretch"],
        &widths,
    );
    let mut all = true;
    for n in (4u32..=30).chain([40, 50, 60]) {
        let cover = construct_optimal(n);
        let net = WdmNetwork::from_covering(&cover);
        let audit = audit_all_failures(&net);
        all &= audit.fully_survivable;
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    net.subnetworks().len().to_string(),
                    net.total_adms().to_string(),
                    n.to_string(),
                    audit.total_reroutes.to_string(),
                    if audit.fully_survivable { "100%" } else { "FAIL" }.to_string(),
                    format!("{:.2}", audit.max_stretch),
                ],
                &widths,
            )
        );
    }
    println!();
    println!(
        "all single-link failures recovered inside their cycle: {}",
        if all { "yes — the paper's survivability scheme holds" } else { "NO" }
    );
    assert!(all);
}
