//! E2 — Theorem 2 table: `ρ(2p) = ⌈(p²+1)/2⌉` for `p ≥ 3`.
//!
//! Regenerates the even-n claim: formula vs constructed size (validated),
//! composition, capacity bound, the `+1` parity refinement, and the
//! solver cross-check for small `n`. The paper's claimed composition
//! (`4 C3 + (2q²−3) C4` for `n = 4q`, `2 C3 + (2q²+2q−1) C4` for
//! `n = 4q+2`) is printed next to ours — our constructions achieve the
//! same optimal *count* with a different C3/C4 split (the note omits its
//! construction, so only the count is checkable). For `n ≡ 0 (mod 8)`,
//! `n ≥ 16`, the library returns `ρ(n)+excess` coverings (documented
//! reproduction gap) — the `status` column reports it honestly.

use cyclecover_bench::{header, row};
use cyclecover_core::{construct_with_status, rho, Optimality};
use cyclecover_solver::api::{
    engine_by_name, ExecPolicy, Optimality as SolveOptimality, Problem, SolveRequest,
};
use cyclecover_solver::lower_bound::capacity_lower_bound;

fn paper_composition(n: u32) -> (u64, u64) {
    // Theorem 2's stated composition.
    if n.is_multiple_of(4) {
        let q = (n / 4) as u64;
        (4, 2 * q * q - 3)
    } else {
        let q = ((n - 2) / 4) as u64;
        (2, 2 * q * q + 2 * q - 1)
    }
}

fn main() {
    println!("E2 — Theorem 2 (even n): rho(n) = ceil((p^2+1)/2), p = n/2 >= 3");
    println!();
    let widths = [5, 4, 8, 8, 8, 10, 12, 9, 8];
    header(
        &["n", "p", "formula", "built", "cap.LB", "ours", "paper-comp", "solver", "status"],
        &widths,
    );
    let mut optimal_rows = 0;
    let mut excess_rows = 0;
    for p in 3u32..=100 {
        let n = 2 * p;
        let (cover, status) = construct_with_status(n);
        let stats = cover.stats();
        cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        let (pc3, pc4) = paper_composition(n);
        // The bitset kernel certifies n = 10 in seconds now; include it.
        let solver_opt = if n <= 10 {
            let sol = engine_by_name("bitset-parallel").expect("registered").solve(
                &Problem::complete(n),
                &SolveRequest::find_optimal()
                    .with_max_nodes(300_000_000)
                    .with_policy(ExecPolicy::parallel()),
            );
            match sol.optimality() {
                SolveOptimality::Optimal { .. } => sol.size().expect("covering").to_string(),
                _ => "limit".into(),
            }
        } else {
            "-".into()
        };
        let status_str = match status {
            Optimality::Optimal => {
                assert_eq!(cover.len() as u64, rho(n), "n={n}");
                optimal_rows += 1;
                "= rho".to_string()
            }
            Optimality::Excess(x) => {
                assert_eq!(cover.len() as u64, rho(n) + x as u64, "n={n}");
                excess_rows += 1;
                format!("rho+{x}")
            }
        };
        if n <= 40 || p % 10 == 0 {
            println!(
                "{}",
                row(
                    &[
                        n.to_string(),
                        p.to_string(),
                        rho(n).to_string(),
                        cover.len().to_string(),
                        capacity_lower_bound(n).to_string(),
                        format!("{}+{}+{}", stats.c3, stats.c4, stats.longer),
                        format!("{pc3}C3+{pc4}C4"),
                        solver_opt,
                        status_str,
                    ],
                    &widths,
                )
            );
        }
    }
    println!();
    println!("(ours column = C3+C4+longer counts; the paper's optimum is matched in count");
    println!(" whenever status is '= rho'; composition differs since the note's own");
    println!(" construction was never published.)");
    println!();
    println!(
        "rows at optimum: {optimal_rows}; rows with documented excess (n = 0 mod 8, n >= 16): {excess_rows}"
    );
    println!(
        "parity refinement check: rho(n) - capacity = {}",
        (3..=100u32)
            .map(|p| rho(2 * p) - capacity_lower_bound(2 * p))
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .chunks(25)
            .map(|c| c.join(""))
            .collect::<Vec<_>>()
            .join(" ")
    );
}
