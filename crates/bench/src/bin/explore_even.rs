//! Exploration harness for the even-n construction (DESIGN.md §2.3).
//! Validates the parity-split + algebraic cross-family approach before it
//! is promoted into `cyclecover-core::even`.

use cyclecover_core::{construct_optimal, rho};
use cyclecover_ring::{Ring, Tile};

/// Lift a covering of C_p onto the even/odd positions of C_2p.
fn lift(tiles: &[Tile], small: Ring, big: Ring, parity: u32) -> Vec<Tile> {
    tiles
        .iter()
        .map(|t| {
            let verts: Vec<u32> = t.vertices().iter().map(|&v| 2 * v + parity).collect();
            let _ = small;
            Tile::from_vertices(big, verts)
        })
        .collect()
}

/// Cross-family for odd p: Q(a,b) = gaps (a, p+1−a, b, p−1−b) at s = −(a+b).
fn q_family_odd_p(big: Ring, p: u32) -> Vec<Tile> {
    let n = 2 * p;
    let mut tiles = Vec::new();
    let mut a = 3;
    while a <= p {
        let mut b = 1;
        while b <= p - 2 {
            let s = (2 * n - a - b) % n;
            tiles.push(Tile::from_gaps(big, s, &[a, p + 1 - a, b, p - 1 - b]));
            b += 2;
        }
        a += 2;
    }
    tiles
}

/// Cross-family for even p: Q(a,b) = gaps (a, p−a, b, p−b) at s = −(a+b).
fn q_family_even_p(big: Ring, p: u32) -> Vec<Tile> {
    let n = 2 * p;
    let mut tiles = Vec::new();
    let mut a = 1;
    while a < p {
        let mut b = 1;
        while b < p {
            let s = (2 * n - a - b) % n;
            tiles.push(Tile::from_gaps(big, s, &[a, p - a, b, p - b]));
            b += 2;
        }
        a += 2;
    }
    tiles
}

/// Returns uncovered chords as (u, v) pairs.
fn uncovered(big: Ring, tiles: &[Tile]) -> Vec<(u32, u32)> {
    let n = big.n() as usize;
    let mut cov = vec![false; n * (n - 1) / 2];
    for t in tiles {
        for c in t.chords(big) {
            cov[cyclecover_graph::Edge::new(c.u(), c.v()).dense_index(n)] = true;
        }
    }
    let mut out = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if !cov[cyclecover_graph::Edge::new(u, v).dense_index(n)] {
                out.push((u, v));
            }
        }
    }
    out
}

fn count_duplicates(tiles: &[Tile]) -> usize {
    let mut sorted = tiles.to_vec();
    sorted.sort();
    let before = sorted.len();
    sorted.dedup();
    before - sorted.len()
}

/// Residual DFS: cover `residual` chords with at most `budget` winding
/// tiles (3..=5 gaps), allowing at most `overlap_budget` non-residual
/// chords across all chosen tiles. Chains are built endpoint-to-endpoint.
struct ResidualSolver {
    ring: Ring,
    /// residual chord flags by (u,v) dense index
    residual: Vec<bool>,
    n: usize,
}

impl ResidualSolver {
    fn dense(&self, u: u32, v: u32) -> usize {
        cyclecover_graph::Edge::new(u, v).dense_index(self.n)
    }

    fn solve(
        &mut self,
        remaining: &mut Vec<bool>, // residual chords still uncovered (by dense idx)
        left: usize,
        budget: usize,
        overlap_budget: usize,
        chosen: &mut Vec<Tile>,
    ) -> bool {
        if left == 0 {
            return true;
        }
        if budget == 0 {
            return false;
        }
        // Need enough capacity: each tile covers <= 5 residual chords.
        if left > budget * 5 {
            return false;
        }
        // First uncovered residual chord.
        let first = (0..remaining.len()).find(|&i| remaining[i]).unwrap();
        let e = cyclecover_graph::Edge::from_dense_index(first, self.n);
        // Enumerate winding tiles through this chord: chains of gaps from u.
        // Chord {u,v} as first arc: orientation u->v (gap (v-u) mod n) or v->u.
        let n32 = self.ring.n();
        for (start, gap) in [
            (e.u(), self.ring.cw_gap(e.u(), e.v())),
            (e.v(), self.ring.cw_gap(e.v(), e.u())),
        ] {
            let mut gaps = vec![gap];
            if self.extend_chain(
                start,
                (start + gap) % n32,
                &mut gaps,
                remaining,
                left,
                budget,
                overlap_budget,
                chosen,
            ) {
                return true;
            }
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn extend_chain(
        &mut self,
        start: u32,
        cur: u32,
        gaps: &mut Vec<u32>,
        remaining: &mut Vec<bool>,
        left: usize,
        budget: usize,
        overlap_budget: usize,
        chosen: &mut Vec<Tile>,
    ) -> bool {
        let n = self.ring.n();
        let used: u32 = gaps.iter().sum();
        if used > n {
            return false;
        }
        // Try closing the tile (back to start) if >= 3 gaps once closed.
        if gaps.len() >= 2 && used < n {
            let close = n - used;
            // closing chord cur -> start
            gaps.push(close);
            if gaps.len() >= 3 && gaps.len() <= 5 {
                // Evaluate tile: count residual coverage + overlap.
                let tile = Tile::from_gaps(self.ring, start, gaps);
                let mut newly = Vec::new();
                let mut overlap = 0usize;
                for c in tile.chords(self.ring) {
                    let i = self.dense(c.u(), c.v());
                    if remaining[i] {
                        newly.push(i);
                    } else {
                        overlap += 1;
                    }
                }
                // Deduplicate chords (a tile may repeat a chord? no — simple cycle)
                if !newly.is_empty() && overlap <= overlap_budget {
                    for &i in &newly {
                        remaining[i] = false;
                    }
                    chosen.push(tile);
                    if self.solve(
                        remaining,
                        left - newly.len(),
                        budget - 1,
                        overlap_budget - overlap,
                        chosen,
                    ) {
                        gaps.pop();
                        return true;
                    }
                    chosen.pop();
                    for &i in &newly {
                        remaining[i] = true;
                    }
                }
            }
            gaps.pop();
        }
        if gaps.len() == 5 {
            return false;
        }
        // Extend with another RESIDUAL chord from cur (cheap: scan all v).
        for v in 0..n {
            if v == cur {
                continue;
            }
            let g = self.ring.cw_gap(cur, v);
            if used + g >= n {
                continue;
            }
            // vertex v must not already be on the chain… approximate: the
            // winding property keeps vertices distinct automatically since
            // total gap < n and gaps > 0.
            let i = self.dense(cur, v);
            if !self.residual[i] || !remaining[i] {
                continue;
            }
            gaps.push(g);
            if self.extend_chain(start, v, gaps, remaining, left, budget, overlap_budget, chosen)
            {
                gaps.pop();
                return true;
            }
            gaps.pop();
        }
        false
    }
}

fn try_residual(big: Ring, residual: &[(u32, u32)], budget: usize, overlap_budget: usize) -> Option<Vec<Tile>> {
    let n = big.n() as usize;
    let mut flags = vec![false; n * (n - 1) / 2];
    for &(u, v) in residual {
        flags[cyclecover_graph::Edge::new(u, v).dense_index(n)] = true;
    }
    let mut solver = ResidualSolver {
        ring: big,
        residual: flags.clone(),
        n,
    };
    let mut remaining = flags;
    let mut chosen = Vec::new();
    let left = residual.len();
    if solver.solve(&mut remaining, left, budget, overlap_budget, &mut chosen) {
        Some(chosen)
    } else {
        None
    }
}

fn main() {
    // Case A: n ≡ 2 (mod 4), p odd.
    for p in [5u32, 7, 9, 11, 13, 15] {
        let n = 2 * p;
        let big = Ring::new(n);
        let small = Ring::new(p);
        let inner = construct_optimal(p);
        let mut tiles = lift(inner.tiles(), small, big, 0);
        tiles.extend(lift(inner.tiles(), small, big, 1));
        let within = tiles.len();
        let q = q_family_odd_p(big, p);
        let dups = count_duplicates(&q);
        tiles.extend(q);
        let res = uncovered(big, &tiles);
        let budget = p.div_ceil(2) as usize;
        let used_so_far = tiles.len();
        let target = rho(n) as usize;
        print!(
            "n={n:3} p={p:2}: within={within} qfam={} dups={dups} residual={} budget={budget} target={target} ",
            used_so_far - within,
            res.len()
        );
        match try_residual(big, &res, budget, 4) {
            Some(extra) => {
                tiles.extend(extra);
                let total = tiles.len();
                let still = uncovered(big, &tiles).len();
                println!(
                    "-> SOLVED total={total} (== target: {}) leftover={still}",
                    total == target
                );
            }
            None => println!("-> residual UNSOLVED"),
        }
    }

    // Case B: n ≡ 0 (mod 4), q odd → p ≡ 2 (mod 4).
    for p in [6u32, 10, 14, 18, 22] {
        let n = 2 * p;
        let big = Ring::new(n);
        let small = Ring::new(p);
        let inner = construct_optimal(p);
        let mut tiles = lift(inner.tiles(), small, big, 0);
        tiles.extend(lift(inner.tiles(), small, big, 1));
        let q = q_family_even_p(big, p);
        let dups = count_duplicates(&q);
        tiles.extend(q);
        let res = uncovered(big, &tiles);
        let target = rho(n) as usize;
        println!(
            "n={n:3} p={p:2}: total={} dups={dups} residual={} target={target} exact={}",
            tiles.len(),
            res.len(),
            tiles.len() == target && res.is_empty()
        );
    }
}
