//! Property tests for the extension-topology machinery.
//!
//! The load-bearing invariant is agreement between the *general-graph*
//! DRC oracle (bounded backtracking over edge-disjoint paths) and the
//! *ring-specific* winding characterization — two entirely independent
//! implementations that must give the same verdict on every cycle over
//! `C_n`. Plus: mesh distances vs BFS, crossed quads route on every
//! torus rectangle, and coverings survive arbitrary single failures.

use cyclecover_graph::{bfs_distances, builders, CycleSubgraph};
use cyclecover_ring::{routing as ring_routing, Ring};
use cyclecover_topo::{drc, mesh_cover, protect, GridTopology};
use proptest::prelude::*;

/// A strategy for a random cycle: distinct vertices of `0..n`, length
/// `3..=5`, in arbitrary order.
fn arb_cycle(n: u32) -> impl Strategy<Value = CycleSubgraph> {
    proptest::sample::subsequence((0..n).collect::<Vec<_>>(), 3..=5.min(n as usize))
        .prop_shuffle()
        .prop_map(CycleSubgraph::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two DRC implementations agree on every random cycle over C_n.
    #[test]
    fn graph_oracle_matches_winding_lemma(n in 5u32..12, cyc in (5u32..12).prop_flat_map(arb_cycle)) {
        prop_assume!(cyc.vertices().iter().all(|&v| v < n));
        let ring = Ring::new(n);
        let g = builders::cycle(n as usize);
        let winding = ring_routing::is_drc_routable(ring, &cyc);
        let oracle = drc::is_drc_routable(&g, &cyc, n);
        prop_assert_eq!(winding, oracle, "n={}, cycle={:?}", n, cyc);
    }

    /// When the oracle routes a cycle on the ring, the witness has the
    /// tiling property: total load == n (winding) — the structural claim
    /// of the winding lemma, recovered from the general machinery.
    #[test]
    fn ring_witnesses_tile_the_ring(n in 5u32..12, cyc in (5u32..12).prop_flat_map(arb_cycle)) {
        prop_assume!(cyc.vertices().iter().all(|&v| v < n));
        let g = builders::cycle(n as usize);
        if let Some(routing) = drc::route_cycle(&g, &cyc, n, drc::DEFAULT_BUDGET).routing() {
            prop_assert_eq!(routing.total_load() as u32, n);
            prop_assert!(drc::verify_routing(&g, &cyc, &routing));
        }
    }

    /// Mesh Manhattan distance equals BFS distance on random shapes.
    #[test]
    fn mesh_distance_is_graph_distance(r in 2u32..6, c in 2u32..6, wrap in any::<bool>()) {
        prop_assume!(!wrap || (r >= 3 && c >= 3));
        let topo = GridTopology::new(r, c, wrap);
        let n = topo.vertex_count() as u32;
        let a = 0u32;
        let bfs = bfs_distances(topo.graph(), a);
        for b in 0..n {
            prop_assert_eq!(topo.distance(a, b) as usize, bfs[b as usize]);
        }
    }

    /// Every rectangle of every torus admits the crossed-quad routing.
    #[test]
    fn crossed_quads_route_on_all_rectangles(
        r in 3u32..6, c in 3u32..6,
        r1 in 0u32..6, r2 in 0u32..6, c1 in 0u32..6, c2 in 0u32..6,
    ) {
        let (r1, r2) = (r1 % r, r2 % r);
        let (c1, c2) = (c1 % c, c2 % c);
        prop_assume!(r1 != r2 && c1 != c2);
        let topo = GridTopology::torus(r, c);
        let cyc = CycleSubgraph::new(vec![
            topo.vertex(r1, c1),
            topo.vertex(r2, c2),
            topo.vertex(r1, c2),
            topo.vertex(r2, c1),
        ]);
        // The structured routing exists; the oracle must also find one.
        prop_assert!(drc::is_drc_routable(topo.graph(), &cyc, r + c));
    }

    /// Torus coverings survive every failure for random shapes.
    #[test]
    fn torus_coverings_always_survivable(r in 3u32..5, c in 3u32..6) {
        let topo = GridTopology::torus(r, c);
        let cover = mesh_cover::cover_torus(&topo);
        let inst = builders::complete(topo.vertex_count());
        prop_assert!(cover.validate(topo.graph(), &inst).is_ok());
        let audit = protect::audit_link_failures(topo.graph(), &cover);
        prop_assert!(audit.fully_survivable);
    }
}
