//! # cyclecover-topo
//!
//! Extension topologies for DRC cycle covering — the closing section of
//! *A Note on Cycle Covering* (Bermond, Coudert, Chacon & Tillerot, SPAA
//! 2001) announces: "We also consider other network topologies, for
//! example, trees of rings, grids or tori." This crate builds that
//! investigation:
//!
//! * [`drc`] — the Disjoint Routing Constraint on *arbitrary* physical
//!   graphs: an exact bounded backtracking oracle for edge-disjoint
//!   routing of a cycle's requests, with verified-witness routings;
//! * [`cover`] — [`GraphCovering`]: coverings that carry their routings,
//!   a full validator, and the capacity/degree lower bounds generalized
//!   off the ring;
//! * [`grid`] — [`GridTopology`]: `R × C` grids and tori;
//! * [`mesh_cover`] — structured coverings of `K_{R·C}`: lifted ring
//!   coverings along rows/columns plus crossed quads (torus) or
//!   perimeter quads and corner triangles (grid);
//! * [`tree_of_rings`] — [`TreeOfRings`]: hierarchical ring networks,
//!   request decomposition into per-ring segments, and per-ring covering
//!   via the general-instance machinery;
//! * [`protect`] — exhaustive single-link (and node) failure audits on
//!   any covering over any topology.
//!
//! ```
//! use cyclecover_graph::builders;
//! use cyclecover_topo::{mesh_cover, protect, GridTopology};
//!
//! let torus = GridTopology::torus(3, 4);
//! let cover = mesh_cover::cover_torus(&torus);
//! let inst = builders::complete(torus.vertex_count());
//! assert!(cover.validate(torus.graph(), &inst).is_ok());
//! assert!(protect::audit_link_failures(torus.graph(), &cover).fully_survivable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod drc;
pub mod grid;
pub mod mesh_cover;
pub mod protect;
pub mod search;
pub mod tree_of_rings;

pub use cover::{GraphCoverError, GraphCoverStats, GraphCovering, RoutedCycle};
pub use drc::{CycleRouting, RouteOutcome, RoutedPath};
pub use grid::GridTopology;
pub use tree_of_rings::{TreeOfRings, TreeOfRingsBuilder};
