//! Grid and torus physical topologies.
//!
//! The paper closes by naming "grids or tori" as the next topologies to
//! investigate. This module models both with one type, [`GridTopology`]:
//! an `R × C` mesh whose rows and columns are paths (grid) or rings
//! (torus, `wrap = true`). Vertices are indexed row-major
//! (`v = r·C + c`), edges are generated rows-first then columns — the
//! fixed generation order gives every edge a predictable index, which the
//! structured constructions of [`crate::mesh_cover`] exploit.

use cyclecover_graph::{Graph, Vertex};

/// An `R × C` grid (or torus) topology.
#[derive(Clone, Debug)]
pub struct GridTopology {
    rows: u32,
    cols: u32,
    wrap: bool,
    graph: Graph,
}

impl GridTopology {
    /// Builds an `rows × cols` mesh. With `wrap`, rows and columns close
    /// into rings (a torus).
    ///
    /// # Panics
    /// Panics if a dimension is 0, or if `wrap` is set with a dimension
    /// `< 3` (wrapping a 2-path would create parallel edges, and a
    /// 1-ring a self-loop; neither is a meaningful optical topology).
    pub fn new(rows: u32, cols: u32, wrap: bool) -> Self {
        assert!(rows >= 1 && cols >= 1, "degenerate mesh {rows}x{cols}");
        if wrap {
            assert!(
                rows >= 3 && cols >= 3,
                "torus dimensions must be >= 3, got {rows}x{cols}"
            );
        }
        let n = (rows * cols) as usize;
        let mut graph = Graph::with_capacity(n, 2 * n);
        // Row edges first: (r, c) — (r, c+1), wrapping last to first.
        for r in 0..rows {
            for c in 0..cols.saturating_sub(1) {
                graph.add_edge(r * cols + c, r * cols + c + 1);
            }
            if wrap {
                graph.add_edge(r * cols + cols - 1, r * cols);
            }
        }
        // Then column edges: (r, c) — (r+1, c).
        for c in 0..cols {
            for r in 0..rows.saturating_sub(1) {
                graph.add_edge(r * cols + c, (r + 1) * cols + c);
            }
            if wrap {
                graph.add_edge((rows - 1) * cols + c, c);
            }
        }
        GridTopology {
            rows,
            cols,
            wrap,
            graph,
        }
    }

    /// A torus (`wrap = true`) — the paper's "tori".
    pub fn torus(rows: u32, cols: u32) -> Self {
        GridTopology::new(rows, cols, true)
    }

    /// A flat grid (`wrap = false`) — the paper's "grids".
    pub fn grid(rows: u32, cols: u32) -> Self {
        GridTopology::new(rows, cols, false)
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Whether rows/columns wrap (torus).
    pub fn wraps(&self) -> bool {
        self.wrap
    }

    /// Total vertex count `R · C`.
    pub fn vertex_count(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    /// The underlying physical graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Vertex id of `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn vertex(&self, r: u32, c: u32) -> Vertex {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        r * self.cols + c
    }

    /// Coordinates `(r, c)` of a vertex id.
    pub fn coords(&self, v: Vertex) -> (u32, u32) {
        assert!((v as usize) < self.vertex_count(), "vertex {v} out of range");
        (v / self.cols, v % self.cols)
    }

    /// Distance along the row dimension between columns `c1` and `c2`.
    pub fn col_distance(&self, c1: u32, c2: u32) -> u32 {
        let d = c1.abs_diff(c2);
        if self.wrap {
            d.min(self.cols - d)
        } else {
            d
        }
    }

    /// Distance along the column dimension between rows `r1` and `r2`.
    pub fn row_distance(&self, r1: u32, r2: u32) -> u32 {
        let d = r1.abs_diff(r2);
        if self.wrap {
            d.min(self.rows - d)
        } else {
            d
        }
    }

    /// Graph distance between two vertices (Manhattan, wrapped per
    /// dimension on the torus).
    pub fn distance(&self, a: Vertex, b: Vertex) -> u32 {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        self.row_distance(ra, rb) + self.col_distance(ca, cb)
    }

    /// The vertex path along row `r` from column `c1` to column `c2`.
    /// On the torus, `long_way` selects the complementary direction
    /// (needed by the crossed-quad routings of [`crate::mesh_cover`]);
    /// on a grid `long_way` must be `false`.
    ///
    /// The path includes both endpoints; `c1 == c2` yields a single
    /// vertex (an empty path).
    pub fn row_path(&self, r: u32, c1: u32, c2: u32, long_way: bool) -> Vec<Vertex> {
        assert!(!long_way || self.wrap, "long-way routing needs a torus");
        self.dim_path(c1, c2, self.cols, long_way, |c| self.vertex(r, c))
    }

    /// The vertex path along column `c` from row `r1` to row `r2`; see
    /// [`GridTopology::row_path`].
    pub fn col_path(&self, c: u32, r1: u32, r2: u32, long_way: bool) -> Vec<Vertex> {
        assert!(!long_way || self.wrap, "long-way routing needs a torus");
        self.dim_path(r1, r2, self.rows, long_way, |r| self.vertex(r, c))
    }

    /// Shared 1-D path walker: from `x1` to `x2` over `len` positions,
    /// taking the shorter direction unless `long_way` (ties: increasing
    /// direction is "short").
    fn dim_path(
        &self,
        x1: u32,
        x2: u32,
        len: u32,
        long_way: bool,
        to_vertex: impl Fn(u32) -> Vertex,
    ) -> Vec<Vertex> {
        if x1 == x2 {
            return vec![to_vertex(x1)];
        }
        if !self.wrap {
            let step: i64 = if x2 > x1 { 1 } else { -1 };
            let mut out = Vec::with_capacity(x1.abs_diff(x2) as usize + 1);
            let mut x = x1 as i64;
            loop {
                out.push(to_vertex(x as u32));
                if x as u32 == x2 {
                    return out;
                }
                x += step;
            }
        }
        // Torus: pick direction by distance (increasing wins ties), then
        // invert for the long way.
        let fwd = (x2 + len - x1) % len; // steps going +1
        let go_forward = (fwd <= len - fwd) ^ long_way;
        let steps = if go_forward { fwd } else { len - fwd };
        let mut out = Vec::with_capacity(steps as usize + 1);
        let mut x = x1;
        out.push(to_vertex(x));
        for _ in 0..steps {
            x = if go_forward {
                (x + 1) % len
            } else {
                (x + len - 1) % len
            };
            out.push(to_vertex(x));
        }
        out
    }

    /// The vertex path along row `r` from `c1` to `c2` walking strictly in
    /// the increasing-column direction (wrapping on the torus). The
    /// crossed-quad routings of [`crate::mesh_cover`] wind each
    /// dimension-ring exactly once, which needs direction-exact walks —
    /// shortest-way walks would collide on distance ties.
    ///
    /// # Panics
    /// Panics on a grid if the forward walk would cross the seam
    /// (`c2 < c1`).
    pub fn row_walk_fwd(&self, r: u32, c1: u32, c2: u32) -> Vec<Vertex> {
        assert!(
            self.wrap || c2 >= c1,
            "forward row walk {c1}→{c2} crosses the seam of a grid"
        );
        let steps = (c2 + self.cols - c1) % self.cols;
        let mut out = Vec::with_capacity(steps as usize + 1);
        let mut c = c1;
        out.push(self.vertex(r, c));
        for _ in 0..steps {
            c = (c + 1) % self.cols;
            out.push(self.vertex(r, c));
        }
        out
    }

    /// The vertex path along column `c` from `r1` to `r2` walking strictly
    /// in the increasing-row direction; see [`GridTopology::row_walk_fwd`].
    ///
    /// # Panics
    /// Panics on a grid if the forward walk would cross the seam.
    pub fn col_walk_fwd(&self, c: u32, r1: u32, r2: u32) -> Vec<Vertex> {
        assert!(
            self.wrap || r2 >= r1,
            "forward column walk {r1}→{r2} crosses the seam of a grid"
        );
        let steps = (r2 + self.rows - r1) % self.rows;
        let mut out = Vec::with_capacity(steps as usize + 1);
        let mut r = r1;
        out.push(self.vertex(r, c));
        for _ in 0..steps {
            r = (r + 1) % self.rows;
            out.push(self.vertex(r, c));
        }
        out
    }

    /// Sum of pairwise distances over all vertex pairs (the numerator of
    /// the capacity lower bound).
    pub fn total_pair_distance(&self) -> u64 {
        let n = self.vertex_count() as u32;
        let mut total = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                total += self.distance(a, b) as u64;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_graph::connectivity::edge_connectivity;
    use cyclecover_graph::{bfs_distances, is_connected};

    #[test]
    fn grid_edge_count() {
        let g = GridTopology::grid(3, 4);
        // rows: 3 * 3 = 9; cols: 4 * 2 = 8.
        assert_eq!(g.graph().edge_count(), 17);
        assert_eq!(g.vertex_count(), 12);
        assert!(is_connected(g.graph()));
    }

    #[test]
    fn torus_edge_count_and_regularity() {
        let t = GridTopology::torus(3, 5);
        assert_eq!(t.graph().edge_count(), 30); // 2 * R * C
        for v in 0..15u32 {
            assert_eq!(t.graph().degree(v), 4, "torus is 4-regular");
        }
        assert_eq!(edge_connectivity(t.graph()), 4);
    }

    #[test]
    fn grid_connectivity_is_two() {
        let g = GridTopology::grid(3, 3);
        assert_eq!(edge_connectivity(g.graph()), 2);
    }

    #[test]
    fn coords_roundtrip() {
        let t = GridTopology::torus(4, 7);
        for v in 0..28u32 {
            let (r, c) = t.coords(v);
            assert_eq!(t.vertex(r, c), v);
        }
    }

    #[test]
    fn manhattan_distance_matches_bfs() {
        for topo in [
            GridTopology::grid(3, 5),
            GridTopology::torus(4, 5),
            GridTopology::torus(3, 3),
        ] {
            let n = topo.vertex_count() as u32;
            for a in 0..n {
                let bfs = bfs_distances(topo.graph(), a);
                for b in 0..n {
                    assert_eq!(
                        topo.distance(a, b) as usize,
                        bfs[b as usize],
                        "a={a} b={b} wrap={}",
                        topo.wraps()
                    );
                }
            }
        }
    }

    #[test]
    fn row_path_short_and_long_are_complementary() {
        let t = GridTopology::torus(3, 7);
        let short = t.row_path(1, 2, 5, false);
        let long = t.row_path(1, 2, 5, true);
        assert_eq!(*short.first().unwrap(), t.vertex(1, 2));
        assert_eq!(*short.last().unwrap(), t.vertex(1, 5));
        assert_eq!(*long.first().unwrap(), t.vertex(1, 2));
        assert_eq!(*long.last().unwrap(), t.vertex(1, 5));
        // Interiors are disjoint and lengths sum to the full ring.
        assert_eq!(short.len() - 1 + long.len() - 1, 7);
        let interior =
            |p: &[Vertex]| p[1..p.len() - 1].to_vec();
        for v in interior(&short) {
            assert!(!interior(&long).contains(&v));
        }
    }

    #[test]
    fn grid_path_is_monotone() {
        let g = GridTopology::grid(2, 6);
        let p = g.row_path(0, 4, 1, false);
        assert_eq!(p, vec![4, 3, 2, 1]);
        let q = g.col_path(3, 0, 1, false);
        assert_eq!(q, vec![g.vertex(0, 3), g.vertex(1, 3)]);
    }

    #[test]
    fn degenerate_single_vertex_path() {
        let t = GridTopology::torus(3, 3);
        assert_eq!(t.row_path(2, 1, 1, false), vec![t.vertex(2, 1)]);
    }

    #[test]
    #[should_panic(expected = "long-way routing needs a torus")]
    fn long_way_on_grid_panics() {
        GridTopology::grid(3, 3).row_path(0, 0, 2, true);
    }

    #[test]
    #[should_panic(expected = "torus dimensions must be >= 3")]
    fn small_torus_rejected() {
        GridTopology::torus(2, 5);
    }

    #[test]
    fn paths_walk_real_edges() {
        for topo in [GridTopology::grid(4, 5), GridTopology::torus(4, 5)] {
            for (a, b, long) in [(0u32, 3u32, false), (1, 4, false)] {
                let p = topo.row_path(2, a, b, long && topo.wraps());
                for w in p.windows(2) {
                    assert!(topo.graph().has_edge(w[0], w[1]), "hop {w:?}");
                }
                let q = topo.col_path(2, 0, 3, false);
                for w in q.windows(2) {
                    assert!(topo.graph().has_edge(w[0], w[1]), "hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn total_pair_distance_small_case() {
        // 1x? is a degenerate mesh but still valid as a path graph.
        let g = GridTopology::grid(1, 3);
        // pairs: (0,1)=1, (0,2)=2, (1,2)=1 → 4.
        assert_eq!(g.total_pair_distance(), 4);
    }
}
