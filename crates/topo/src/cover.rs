//! Cycle coverings of logical instances over arbitrary physical graphs.
//!
//! The general problem statement of the paper ("find a covering of the
//! edges of a logical graph `I` by subgraphs `I_k`, such that for each
//! `I_k` there exists in the physical graph `G` a disjoint routing"),
//! instantiated beyond the ring. A [`GraphCovering`] holds the covering
//! cycles *together with* their verified routings — on general graphs the
//! routing is a witness that cannot be recomputed canonically (it is not
//! unique, unlike the ring's winding routing), so it is part of the
//! design artifact, exactly as a deployment would provision it.

use crate::drc::{verify_routing, CycleRouting, RoutedPath};
use cyclecover_graph::{bfs_distances, CycleSubgraph, EdgeMultiset, Graph};
use std::fmt;

/// A covering cycle with its provisioned routing.
#[derive(Clone, Debug)]
pub struct RoutedCycle {
    /// The logical cycle (the subnetwork's requests).
    pub cycle: CycleSubgraph,
    /// Its pairwise edge-disjoint routing on the physical graph.
    pub routing: CycleRouting,
}

/// Validation failure for a [`GraphCovering`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphCoverError {
    /// A cycle's routing is not a valid edge-disjoint routing.
    BadRouting {
        /// Index of the offending cycle.
        index: usize,
    },
    /// Some instance edge is not covered by any cycle.
    Uncovered {
        /// Number of uncovered instance edges.
        missing: usize,
        /// An example uncovered request.
        example: (u32, u32),
    },
}

impl fmt::Display for GraphCoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphCoverError::BadRouting { index } => {
                write!(f, "cycle #{index} has an invalid routing")
            }
            GraphCoverError::Uncovered { missing, example } => write!(
                f,
                "{missing} uncovered request(s), e.g. ({}, {})",
                example.0, example.1
            ),
        }
    }
}

/// Aggregate statistics of a graph covering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphCoverStats {
    /// Number of cycles (the paper's ring-cost objective).
    pub cycles: usize,
    /// Triangles.
    pub c3: usize,
    /// Quadrilaterals.
    pub c4: usize,
    /// Cycles longer than 4.
    pub longer: usize,
    /// Sum of cycle sizes (the refs \[3,4\] objective: total ADM count).
    pub total_vertices: usize,
    /// Total physical edge slots consumed by all routings.
    pub total_load: u64,
    /// Maximum number of cycles crossing any one physical edge.
    pub max_edge_load: u32,
}

/// A set of routed cycles covering (part of) a logical instance on a
/// fixed physical graph.
#[derive(Clone, Debug, Default)]
pub struct GraphCovering {
    cycles: Vec<RoutedCycle>,
}

impl GraphCovering {
    /// An empty covering.
    pub fn new() -> Self {
        GraphCovering { cycles: Vec::new() }
    }

    /// Appends a cycle after verifying its routing against `g`.
    ///
    /// Paths may arrive in any order and orientation — they are aligned
    /// to the cycle's canonical vertex order by endpoint matching (see
    /// [`crate::drc::align_routing`]) before verification, so
    /// constructions don't have to anticipate [`CycleSubgraph`]'s
    /// canonicalization.
    ///
    /// Returns the cycle's index, or an error if no alignment exists or
    /// the aligned routing fails verification.
    pub fn push(
        &mut self,
        g: &Graph,
        cycle: CycleSubgraph,
        routing: CycleRouting,
    ) -> Result<usize, GraphCoverError> {
        let index = self.cycles.len();
        let routing = crate::drc::align_routing(&cycle, routing)
            .ok_or(GraphCoverError::BadRouting { index })?;
        if !verify_routing(g, &cycle, &routing) {
            return Err(GraphCoverError::BadRouting { index });
        }
        self.cycles.push(RoutedCycle { cycle, routing });
        Ok(index)
    }

    /// Appends a cycle *without* verification (for construction-internal
    /// use where the routing is correct by construction; the full
    /// validator re-checks everything).
    pub fn push_unchecked(&mut self, cycle: CycleSubgraph, routing: CycleRouting) {
        self.cycles.push(RoutedCycle { cycle, routing });
    }

    /// The member cycles.
    pub fn cycles(&self) -> &[RoutedCycle] {
        &self.cycles
    }

    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// True iff there are no cycles.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Merges another covering into this one.
    pub fn extend_from(&mut self, other: GraphCovering) {
        self.cycles.extend(other.cycles);
    }

    /// Logical coverage multiset over `n` vertices: how often each
    /// request appears as an edge of some covering cycle.
    pub fn coverage(&self, n: usize) -> EdgeMultiset {
        let mut m = EdgeMultiset::new(n);
        for rc in &self.cycles {
            for e in rc.cycle.edges() {
                m.insert(e);
            }
        }
        m
    }

    /// Physical footprints: for each cycle, the sorted set of physical
    /// edge indices its routing occupies. Two cycles whose footprints
    /// are disjoint can share a wavelength — the input to conflict-graph
    /// coloring (`cyclecover-color`).
    pub fn footprints(&self) -> Vec<Vec<u32>> {
        self.cycles
            .iter()
            .map(|rc| {
                let mut f: Vec<u32> = rc
                    .routing
                    .paths
                    .iter()
                    .flat_map(|p| p.edges.iter().copied())
                    .collect();
                f.sort_unstable();
                f.dedup();
                f
            })
            .collect()
    }

    /// Physical load per edge of `g`: how many cycles route through it.
    pub fn edge_load(&self, g: &Graph) -> Vec<u32> {
        let mut load = vec![0u32; g.edge_count()];
        for rc in &self.cycles {
            for p in &rc.routing.paths {
                for &ei in &p.edges {
                    load[ei as usize] += 1;
                }
            }
        }
        load
    }

    /// Full validation: every routing verified, every edge of `inst`
    /// covered by some cycle.
    pub fn validate(&self, g: &Graph, inst: &Graph) -> Result<(), GraphCoverError> {
        for (index, rc) in self.cycles.iter().enumerate() {
            if !verify_routing(g, &rc.cycle, &rc.routing) {
                return Err(GraphCoverError::BadRouting { index });
            }
        }
        let cov = self.coverage(g.vertex_count());
        let mut missing = 0usize;
        let mut example = None;
        for e in inst.edges() {
            if cov.count(*e) == 0 {
                missing += 1;
                example.get_or_insert((e.u(), e.v()));
            }
        }
        if let Some(example) = example {
            return Err(GraphCoverError::Uncovered { missing, example });
        }
        Ok(())
    }

    /// Aggregate statistics (see [`GraphCoverStats`]).
    pub fn stats(&self, g: &Graph) -> GraphCoverStats {
        let mut c3 = 0;
        let mut c4 = 0;
        let mut longer = 0;
        let mut total_vertices = 0;
        let mut total_load = 0u64;
        for rc in &self.cycles {
            match rc.cycle.len() {
                3 => c3 += 1,
                4 => c4 += 1,
                _ => longer += 1,
            }
            total_vertices += rc.cycle.len();
            total_load += rc.routing.total_load() as u64;
        }
        GraphCoverStats {
            cycles: self.cycles.len(),
            c3,
            c4,
            longer,
            total_vertices,
            total_load,
            max_edge_load: self.edge_load(g).into_iter().max().unwrap_or(0),
        }
    }
}

/// Builds the [`CycleRouting`] whose paths are exactly the given vertex
/// paths, resolving edge indices in `g` greedily (first unused parallel
/// copy). Panics if a hop has no remaining parallel copy — constructions
/// call this only with paths they know are edge-disjoint.
pub fn routing_from_vertex_paths(g: &Graph, paths: &[Vec<u32>]) -> CycleRouting {
    let mut used = vec![false; g.edge_count()];
    let routed = paths
        .iter()
        .map(|vs| {
            let edges = vs
                .windows(2)
                .map(|w| {
                    g.incident_edges(w[0])
                        .find(|&(ei, nb)| nb == w[1] && !used[ei as usize])
                        .map(|(ei, _)| {
                            used[ei as usize] = true;
                            ei
                        })
                        .unwrap_or_else(|| panic!("no free edge for hop {w:?}"))
                })
                .collect();
            RoutedPath {
                vertices: vs.clone(),
                edges,
            }
        })
        .collect();
    CycleRouting { paths: routed }
}

/// The capacity lower bound on any DRC covering of `inst` over `g`:
/// each request needs at least `dist(u, v)` physical edge slots, and one
/// cycle provides at most `|E(G)|` slots (its paths are edge-disjoint),
/// so `#cycles ≥ ⌈Σ dist / |E|⌉`. Generalizes the ring bound
/// `ρ(n) ≥ ⌈Σ dist / n⌉` of `cyclecover-solver`.
pub fn capacity_lower_bound(g: &Graph, inst: &Graph) -> u64 {
    let m = g.edge_count() as u64;
    if m == 0 || inst.edge_count() == 0 {
        return 0;
    }
    let mut total = 0u64;
    // One BFS per source vertex that has requests.
    for v in 0..inst.vertex_count() as u32 {
        if inst.degree(v) == 0 {
            continue;
        }
        let dist = bfs_distances(g, v);
        for w in inst.neighbors(v) {
            assert!(
                dist[w as usize] != usize::MAX,
                "request ({v},{w}) disconnected in the physical graph"
            );
            total += dist[w as usize] as u64;
        }
    }
    total /= 2; // each request counted from both endpoints
    total.div_ceil(m)
}

/// The degree lower bound: a covering cycle through vertex `v` covers at
/// most 2 of `v`'s requests (its two cycle-neighbors), so at least
/// `⌈deg_I(v) / 2⌉` cycles pass through `v`; the covering has at least
/// `max_v ⌈deg_I(v)/2⌉` cycles.
pub fn degree_lower_bound(inst: &Graph) -> u64 {
    (0..inst.vertex_count() as u32)
        .map(|v| (inst.degree(v) as u64).div_ceil(2))
        .max()
        .unwrap_or(0)
}

/// The better of the two lower bounds.
pub fn lower_bound(g: &Graph, inst: &Graph) -> u64 {
    capacity_lower_bound(g, inst).max(degree_lower_bound(inst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc::{route_cycle, DEFAULT_BUDGET};
    use cyclecover_graph::builders;

    fn routed(g: &Graph, verts: Vec<u32>) -> (CycleSubgraph, CycleRouting) {
        let c = CycleSubgraph::new(verts);
        let r = route_cycle(g, &c, g.vertex_count() as u32, DEFAULT_BUDGET)
            .routing()
            .expect("routable");
        (c, r)
    }

    #[test]
    fn push_verifies_routing() {
        let g = builders::cycle(5);
        let (c, r) = routed(&g, vec![0, 1, 3]);
        let mut cover = GraphCovering::new();
        assert_eq!(cover.push(&g, c, r), Ok(0));
        assert_eq!(cover.len(), 1);
    }

    #[test]
    fn push_rejects_mismatched_routing() {
        let g = builders::cycle(6);
        let (_, r) = routed(&g, vec![0, 1, 3]);
        let other = CycleSubgraph::new(vec![0, 2, 4]);
        let mut cover = GraphCovering::new();
        assert_eq!(
            cover.push(&g, other, r),
            Err(GraphCoverError::BadRouting { index: 0 })
        );
    }

    #[test]
    fn validate_detects_uncovered_requests() {
        let g = builders::cycle(5);
        let inst = builders::complete(5);
        let mut cover = GraphCovering::new();
        let (c, r) = routed(&g, vec![0, 1, 2]);
        cover.push(&g, c, r).unwrap();
        match cover.validate(&g, &inst) {
            Err(GraphCoverError::Uncovered { missing, .. }) => assert_eq!(missing, 7),
            other => panic!("expected Uncovered, got {other:?}"),
        }
    }

    #[test]
    fn ring_covering_via_oracle_validates() {
        // Rebuild the paper's K4/C4 covering through the general machinery.
        let g = builders::cycle(4);
        let inst = builders::complete(4);
        let mut cover = GraphCovering::new();
        for verts in [vec![0u32, 1, 2, 3], vec![0, 1, 3], vec![0, 2, 3]] {
            let (c, r) = routed(&g, verts);
            cover.push(&g, c, r).unwrap();
        }
        assert!(cover.validate(&g, &inst).is_ok());
        let stats = cover.stats(&g);
        assert_eq!(stats.cycles, 3);
        assert_eq!(stats.c3, 2);
        assert_eq!(stats.c4, 1);
        assert_eq!(stats.total_vertices, 10);
        // Winding cycles each consume all 4 ring edges.
        assert_eq!(stats.total_load, 12);
        assert_eq!(stats.max_edge_load, 3);
    }

    #[test]
    fn capacity_bound_matches_ring_bound() {
        use cyclecover_solver::lower_bound::capacity_lower_bound as ring_lb;
        for n in [5u32, 8, 11, 14] {
            let g = builders::cycle(n as usize);
            let inst = builders::complete(n as usize);
            assert_eq!(capacity_lower_bound(&g, &inst), ring_lb(n), "n={n}");
        }
    }

    #[test]
    fn degree_bound_on_complete_instance() {
        let inst = builders::complete(9);
        assert_eq!(degree_lower_bound(&inst), 4); // ⌈8/2⌉
        let empty = Graph::new(4);
        assert_eq!(degree_lower_bound(&empty), 0);
    }

    #[test]
    fn lower_bound_takes_the_max() {
        // Star instance: capacity bound is small, degree bound dominates.
        let g = builders::complete(9);
        let mut star = Graph::new(9);
        for v in 1..9 {
            star.add_edge(0, v);
        }
        assert_eq!(capacity_lower_bound(&g, &star), 1);
        assert_eq!(degree_lower_bound(&star), 4);
        assert_eq!(lower_bound(&g, &star), 4);
    }

    #[test]
    fn routing_from_vertex_paths_handles_parallels() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let r = routing_from_vertex_paths(&g, &[vec![0, 1], vec![1, 0]]);
        assert_ne!(r.paths[0].edges[0], r.paths[1].edges[0]);
    }

    #[test]
    #[should_panic(expected = "no free edge")]
    fn routing_from_vertex_paths_rejects_overuse() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        routing_from_vertex_paths(&g, &[vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn empty_bounds() {
        let g = Graph::new(3);
        let inst = Graph::new(3);
        assert_eq!(capacity_lower_bound(&g, &inst), 0);
        assert_eq!(lower_bound(&g, &inst), 0);
    }
}
