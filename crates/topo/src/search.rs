//! Search-based coverings on arbitrary graphs: enumerate small
//! DRC-routable cycles with the exact oracle, then set-cover greedily.
//!
//! The structured constructions of [`crate::mesh_cover`] are closed-form
//! but not optimal; this module provides the *search* counterweight —
//! the analogue of `cyclecover-solver`'s tile universe off the ring:
//!
//! * [`enumerate_routable_cycles`] — all triangles and quadrilaterals
//!   (both cyclic orders per quad) over vertex subsets of bounded
//!   diameter, each *proved* routable by the oracle, with its witness
//!   routing retained;
//! * [`greedy_cover_graph`] — classical set-cover greedy over those
//!   candidates (gain = newly covered instance edges; ties broken
//!   toward lighter routings).
//!
//! On small tori the greedy beats the structured construction by
//! 20–40% (experiment E9), at enumeration cost — exactly the
//! construction-vs-search trade the paper's ring theorems resolve so
//! elegantly *on* the ring, left open off it.

use crate::cover::GraphCovering;
use crate::drc::{route_cycle, CycleRouting, RouteOutcome};
use cyclecover_graph::{bfs_distances, CycleSubgraph, Graph, Vertex};

/// A candidate: a cycle plus its oracle-witnessed routing.
pub struct Candidate {
    /// The logical cycle.
    pub cycle: CycleSubgraph,
    /// A verified edge-disjoint routing.
    pub routing: CycleRouting,
}

/// Enumerates DRC-routable triangles and quadrilaterals whose vertices
/// lie pairwise within graph distance `max_dist` of each other, routed
/// with `slack` extra hops per request. Quads are tried in all three
/// cyclic orders (different orders have different request sets).
///
/// Candidate count is `O(n · Δ_d³)` where `Δ_d` is the `max_dist`-ball
/// size — locality keeps enumeration tractable on meshes.
pub fn enumerate_routable_cycles(
    g: &Graph,
    max_dist: usize,
    slack: u32,
    budget_per_cycle: u64,
) -> Vec<Candidate> {
    let n = g.vertex_count();
    // Distance-bounded neighbor lists (one BFS per vertex).
    let near: Vec<Vec<Vertex>> = (0..n as Vertex)
        .map(|v| {
            let d = bfs_distances(g, v);
            (0..n as Vertex)
                .filter(|&w| w > v && d[w as usize] <= max_dist)
                .collect()
        })
        .collect();
    let within = |a: Vertex, b: Vertex| -> bool {
        let (lo, hi) = (a.min(b), a.max(b));
        near[lo as usize].binary_search(&hi).is_ok()
    };

    let mut out = Vec::new();
    let try_push = |verts: Vec<Vertex>, out: &mut Vec<Candidate>| {
        let cycle = CycleSubgraph::new(verts);
        // Dedup: quads in different orders canonicalize differently, but
        // the same order reached twice canonicalizes identically — the
        // enumeration below never revisits an ordered choice, and
        // distinct cyclic orders are distinct cycles, so no set needed.
        if let RouteOutcome::Routed(routing) = route_cycle(g, &cycle, slack, budget_per_cycle) {
            out.push(Candidate { cycle, routing });
        }
    };

    for a in 0..n as Vertex {
        let nbrs = &near[a as usize];
        for (i, &b) in nbrs.iter().enumerate() {
            for (j, &c) in nbrs.iter().enumerate().skip(i + 1) {
                if !within(b, c) {
                    continue;
                }
                try_push(vec![a, b, c], &mut out);
                for &d in nbrs.iter().skip(j + 1) {
                    if !(within(b, d) && within(c, d)) {
                        continue;
                    }
                    // Three cyclic orders of {a,b,c,d}.
                    try_push(vec![a, b, c, d], &mut out);
                    try_push(vec![a, c, b, d], &mut out);
                    try_push(vec![a, b, d, c], &mut out);
                }
            }
        }
    }
    out
}

/// Set-cover greedy over `candidates`: repeatedly take the candidate
/// covering the most uncovered edges of `inst` (ties: smaller routing
/// load), until everything is covered. Returns `None` if the candidates
/// cannot cover `inst` (some instance edge on no candidate).
pub fn greedy_cover_graph(
    g: &Graph,
    inst: &Graph,
    candidates: &[Candidate],
) -> Option<GraphCovering> {
    let n = g.vertex_count();
    let dense = |u: Vertex, v: Vertex| cyclecover_graph::Edge::new(u, v).dense_index(n);
    let mut want = vec![false; n * (n - 1) / 2];
    let mut remaining = 0usize;
    for e in inst.edges() {
        let i = dense(e.u(), e.v());
        if !want[i] {
            want[i] = true;
            remaining += 1;
        }
    }
    let per_candidate: Vec<Vec<usize>> = candidates
        .iter()
        .map(|c| c.cycle.edges().map(|e| dense(e.u(), e.v())).collect())
        .collect();

    let mut covered = vec![false; n * (n - 1) / 2];
    let mut cover = GraphCovering::new();
    while remaining > 0 {
        let mut best: Option<(usize, usize, usize)> = None; // (idx, gain, load)
        for (i, chords) in per_candidate.iter().enumerate() {
            let gain = chords.iter().filter(|&&c| want[c] && !covered[c]).count();
            if gain == 0 {
                continue;
            }
            let load = candidates[i].routing.total_load();
            let better = match best {
                None => true,
                Some((_, bg, bl)) => gain > bg || (gain == bg && load < bl),
            };
            if better {
                best = Some((i, gain, load));
            }
        }
        let (i, gain, _) = best?;
        for &c in &per_candidate[i] {
            if want[c] && !covered[c] {
                covered[c] = true;
            }
        }
        remaining -= gain;
        cover
            .push(g, candidates[i].cycle.clone(), candidates[i].routing.clone())
            .expect("candidate routings are oracle-verified");
    }
    Some(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridTopology;
    use crate::mesh_cover;
    use crate::protect;
    use cyclecover_graph::builders;

    #[test]
    fn enumeration_on_ring_matches_tile_count() {
        // On C_n every DRC triangle/quad is a winding tile; the solver
        // crate counts them independently.
        let n = 7u32;
        let g = builders::cycle(n as usize);
        let cands = enumerate_routable_cycles(&g, n as usize, n, 100_000);
        let universe = cyclecover_solver::TileUniverse::new(cyclecover_ring::Ring::new(n), 4);
        assert_eq!(cands.len(), universe.len(), "C3+C4 tiles on C_{n}");
    }

    #[test]
    fn greedy_covers_small_torus_and_beats_structured() {
        let topo = GridTopology::torus(3, 3);
        let inst = builders::complete(9);
        let cands = enumerate_routable_cycles(topo.graph(), 4, 4, 200_000);
        assert!(!cands.is_empty());
        let greedy = greedy_cover_graph(topo.graph(), &inst, &cands).expect("coverable");
        greedy.validate(topo.graph(), &inst).expect("valid");
        let structured = mesh_cover::cover_torus(&topo).len();
        assert!(
            greedy.len() <= structured,
            "greedy {} vs structured {structured}",
            greedy.len()
        );
        // And it still survives everything.
        assert!(protect::audit_link_failures(topo.graph(), &greedy).fully_survivable);
    }

    #[test]
    fn greedy_none_when_candidates_insufficient() {
        // Distance-0 candidates cannot exist; coverage must fail.
        let topo = GridTopology::torus(3, 3);
        let inst = builders::complete(9);
        let cands = enumerate_routable_cycles(topo.graph(), 1, 0, 10_000);
        // With slack 0 and distance ≤ 1, quads on a 3x3 torus may exist
        // (unit squares) but cannot cover the distance-2 requests.
        if let Some(c) = greedy_cover_graph(topo.graph(), &inst, &cands) {
            panic!("covered K_9 with unit squares?! {} cycles", c.len());
        }
    }

    #[test]
    fn candidates_have_verified_routings() {
        let topo = GridTopology::grid(3, 3);
        let cands = enumerate_routable_cycles(topo.graph(), 3, 3, 100_000);
        for c in &cands {
            assert!(crate::drc::verify_routing(topo.graph(), &c.cycle, &c.routing));
        }
        // A grid has no routable cycles within rows (path theorem), but
        // plenty of rectangles.
        assert!(!cands.is_empty());
    }
}
