//! Trees of rings — the first extension topology the paper names.
//!
//! Optical metro networks are commonly built as rings interconnected at
//! shared offices; when each pair of rings shares at most one node and
//! the "ring adjacency" graph is a tree, the topology is a **tree of
//! rings**. Every edge lies in exactly one ring, every shared node is a
//! cut vertex, and every request routes through a *unique sequence of
//! rings* (the tree path between its endpoint rings).
//!
//! That structure makes the paper's machinery compose: a request
//! decomposes into one **segment per traversed ring** (entry hub →
//! exit hub), each ring independently covers the logical instance formed
//! by its segments (the general-instance machinery of
//! `cyclecover-core::general`), and a single link failure — which lives
//! in exactly one ring — is healed inside that ring by its covering
//! cycle, leaving every other segment of the request untouched. This is
//! precisely the paper's "dividing the network into independent
//! sub-networks" philosophy, applied hierarchically.
//!
//! [`TreeOfRings`] is built with [`TreeOfRingsBuilder`]; [`TreeOfRings::cover`]
//! produces a validated [`GraphCovering`], and
//! [`TreeOfRings::segment_instance`] exposes the per-segment logical
//! graph the covering is measured against.

use crate::cover::{routing_from_vertex_paths, GraphCovering};
use cyclecover_core::general;
use cyclecover_graph::{CycleSubgraph, Graph, Vertex};
use cyclecover_ring::Ring;

/// Identifier of a ring within a [`TreeOfRings`].
pub type RingId = u32;

/// One ring of the tree.
#[derive(Clone, Debug)]
pub struct RingNode {
    /// Global vertex ids in ring order. For non-root rings, `verts[0]`
    /// is the hub shared with the parent.
    pub verts: Vec<Vertex>,
    /// Parent ring, if any.
    pub parent: Option<RingId>,
    /// Depth in the ring tree (root = 0).
    pub depth: u32,
}

impl RingNode {
    /// Ring length.
    pub fn len(&self) -> u32 {
        self.verts.len() as u32
    }

    /// True iff the ring has no vertices (never constructed).
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// The hub: the vertex shared with the parent ring (`verts[0]`).
    /// Meaningless for the root.
    pub fn hub(&self) -> Vertex {
        self.verts[0]
    }

    /// Local position of a global vertex on this ring, if present.
    pub fn position_of(&self, v: Vertex) -> Option<u32> {
        self.verts.iter().position(|&x| x == v).map(|p| p as u32)
    }
}

/// Incremental builder: start from a root ring, attach rings at hubs.
#[derive(Clone, Debug)]
pub struct TreeOfRingsBuilder {
    rings: Vec<RingNode>,
    /// `home[v]` = the ring that created global vertex `v`.
    home: Vec<RingId>,
}

impl TreeOfRingsBuilder {
    /// Starts the tree with a root ring of `len` fresh vertices
    /// (`0..len`, in ring order).
    ///
    /// # Panics
    /// Panics if `len < 3`.
    pub fn root(len: u32) -> Self {
        assert!(len >= 3, "a ring needs at least 3 nodes, got {len}");
        TreeOfRingsBuilder {
            rings: vec![RingNode {
                verts: (0..len).collect(),
                parent: None,
                depth: 0,
            }],
            home: vec![0; len as usize],
        }
    }

    /// Attaches a new ring of `len` vertices sharing exactly the vertex
    /// `hub` with ring `parent`. The new ring's other `len − 1` vertices
    /// are fresh. Returns the new ring's id.
    ///
    /// # Panics
    /// Panics if `len < 3`, `parent` does not exist, or `hub` is not on
    /// `parent`.
    pub fn attach(&mut self, parent: RingId, hub: Vertex, len: u32) -> RingId {
        assert!(len >= 3, "a ring needs at least 3 nodes, got {len}");
        let pnode = self
            .rings
            .get(parent as usize)
            .unwrap_or_else(|| panic!("no ring #{parent}"));
        assert!(
            pnode.verts.contains(&hub),
            "hub {hub} is not on ring #{parent}"
        );
        let depth = pnode.depth + 1;
        let first_fresh = self.home.len() as Vertex;
        let mut verts = Vec::with_capacity(len as usize);
        verts.push(hub);
        verts.extend(first_fresh..first_fresh + (len - 1));
        let id = self.rings.len() as RingId;
        self.home
            .extend(std::iter::repeat_n(id, (len - 1) as usize));
        self.rings.push(RingNode {
            verts,
            parent: Some(parent),
            depth,
        });
        id
    }

    /// Materializes the topology (builds the physical multigraph).
    pub fn build(self) -> TreeOfRings {
        let n = self.home.len();
        let mut graph = Graph::with_capacity(n, self.rings.iter().map(|r| r.verts.len()).sum());
        // Ring edges are added ring-by-ring, contiguously: ring k's edges
        // occupy a known index range, which maps failures back to rings.
        let mut edge_base = Vec::with_capacity(self.rings.len());
        for r in &self.rings {
            edge_base.push(graph.edge_count() as u32);
            let k = r.verts.len();
            for i in 0..k {
                graph.add_edge(r.verts[i], r.verts[(i + 1) % k]);
            }
        }
        TreeOfRings {
            graph,
            rings: self.rings,
            home: self.home,
            edge_base,
        }
    }
}

/// A materialized tree-of-rings topology.
#[derive(Clone, Debug)]
pub struct TreeOfRings {
    graph: Graph,
    rings: Vec<RingNode>,
    home: Vec<RingId>,
    edge_base: Vec<u32>,
}

impl TreeOfRings {
    /// Convenience: a chain of `k` rings, each of `len` vertices,
    /// consecutive rings sharing one hub (ring `i` attaches to ring
    /// `i−1` at its "opposite" vertex).
    pub fn chain(k: u32, len: u32) -> Self {
        assert!(k >= 1, "need at least one ring");
        let mut b = TreeOfRingsBuilder::root(len);
        let mut prev = 0;
        for _ in 1..k {
            let hub = b.rings[prev as usize].verts[(len / 2) as usize];
            prev = b.attach(prev, hub, len);
        }
        b.build()
    }

    /// Convenience: a star of rings — one central ring, `arms` rings
    /// attached at distinct hubs of the center (requires `arms ≤ len`).
    pub fn star(len: u32, arms: u32, arm_len: u32) -> Self {
        assert!(arms <= len, "cannot attach {arms} arms to a {len}-ring");
        let mut b = TreeOfRingsBuilder::root(len);
        for a in 0..arms {
            b.attach(0, a, arm_len);
        }
        b.build()
    }

    /// The physical graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The rings.
    pub fn rings(&self) -> &[RingNode] {
        &self.rings
    }

    /// Total vertex count.
    pub fn vertex_count(&self) -> usize {
        self.home.len()
    }

    /// The ring that created vertex `v` (hubs belong to their parent's
    /// side: the ring where they first appeared).
    pub fn home_ring(&self, v: Vertex) -> RingId {
        self.home[v as usize]
    }

    /// The ring owning physical edge index `ei` (edges are added
    /// ring-contiguously — see [`TreeOfRingsBuilder::build`]).
    pub fn ring_of_edge(&self, ei: u32) -> RingId {
        match self.edge_base.binary_search(&ei) {
            Ok(k) => k as RingId,
            Err(k) => (k - 1) as RingId,
        }
    }

    /// The sequence of `(ring, entry, exit)` segments a request `(u, v)`
    /// traverses, entry ≠ exit, in order from `u` to `v`. Empty iff
    /// `u == v`.
    pub fn segments(&self, u: Vertex, v: Vertex) -> Vec<(RingId, Vertex, Vertex)> {
        if u == v {
            return Vec::new();
        }
        // Ring chains to the root.
        let chain = |v: Vertex| -> Vec<RingId> {
            let mut c = vec![self.home_ring(v)];
            while let Some(p) = self.rings[*c.last().unwrap() as usize].parent {
                c.push(p);
            }
            c
        };
        let cu = chain(u);
        let cv = chain(v);
        // Trim the common tail to find the meeting ring (LCA).
        let mut iu = cu.len();
        let mut iv = cv.len();
        while iu > 0 && iv > 0 && cu[iu - 1] == cv[iv - 1] {
            iu -= 1;
            iv -= 1;
        }
        // Rings traversed: cu[0..=iu] then cv[..iv] reversed (cu[iu] ==
        // the LCA ring == cv[iv]).
        let mut rings = cu[..=iu].to_vec();
        rings.extend(cv[..iv].iter().rev());

        let mut segs = Vec::new();
        let mut at = u;
        for (step, &rid) in rings.iter().enumerate() {
            let target = if step + 1 < rings.len() {
                // Exit through the hub of the next ring on the way up, or
                // of the *next* ring on the way down.
                let next = rings[step + 1];
                if step < iu {
                    // Ascending: exit through our own hub into the parent.
                    debug_assert_eq!(self.rings[rid as usize].parent, Some(next));
                    self.rings[rid as usize].hub()
                } else {
                    // Descending: exit into the child ring through ITS hub.
                    debug_assert_eq!(self.rings[next as usize].parent, Some(rid));
                    self.rings[next as usize].hub()
                }
            } else {
                v
            };
            if at != target {
                segs.push((rid, at, target));
            }
            at = target;
        }
        debug_assert_eq!(at, v);
        segs
    }

    /// The *segment instance*: the logical multigraph (deduplicated to a
    /// simple graph) whose edges are the segments induced by every edge
    /// of `inst`. Covering this graph with per-ring DRC cycles protects
    /// every request end-to-end against single-link failures.
    pub fn segment_instance(&self, inst: &Graph) -> Graph {
        let n = self.vertex_count();
        let mut seen = std::collections::HashSet::new();
        let mut out = Graph::new(n);
        for e in inst.edges() {
            for (_, a, b) in self.segments(e.u(), e.v()) {
                let key = (a.min(b), a.max(b));
                if seen.insert(key) {
                    out.add_edge(a, b);
                }
            }
        }
        out
    }

    /// Covers `inst` (default: all-to-all if you pass a complete graph)
    /// with per-ring DRC cycles: decompose every request into segments,
    /// group segments by ring, and cover each ring's local instance via
    /// the greedy general-instance machinery of `cyclecover-core`
    /// (cycles up to `max_len` vertices; phantom chords appear where a
    /// ring's local instance has bridges).
    ///
    /// The result is a [`GraphCovering`] on the global graph, validating
    /// against [`TreeOfRings::segment_instance`].
    pub fn cover(&self, inst: &Graph, max_len: usize) -> GraphCovering {
        // Local instances per ring.
        let mut local: Vec<Graph> = self
            .rings
            .iter()
            .map(|r| Graph::new(r.verts.len()))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for e in inst.edges() {
            for (rid, a, b) in self.segments(e.u(), e.v()) {
                let key = (rid, a.min(b), a.max(b));
                if !seen.insert(key) {
                    continue;
                }
                let r = &self.rings[rid as usize];
                let pa = r.position_of(a).expect("segment endpoint on its ring");
                let pb = r.position_of(b).expect("segment endpoint on its ring");
                local[rid as usize].add_edge(pa, pb);
            }
        }

        let mut cover = GraphCovering::new();
        for (rid, inst_k) in local.iter().enumerate() {
            if inst_k.edge_count() == 0 {
                continue;
            }
            let node = &self.rings[rid];
            let ring = Ring::new(node.len());
            let got = general::greedy_cover(ring, inst_k, max_len.min(node.len() as usize))
                .expect("non-empty local instance");
            for tile in got.covering.tiles() {
                let verts: Vec<Vertex> = tile
                    .vertices()
                    .iter()
                    .map(|&i| node.verts[i as usize])
                    .collect();
                let paths: Vec<Vec<Vertex>> = tile
                    .arcs(ring)
                    .iter()
                    .map(|arc| {
                        arc.walk(ring)
                            .into_iter()
                            .map(|i| node.verts[i as usize])
                            .collect()
                    })
                    .collect();
                let routing = routing_from_vertex_paths(&self.graph, &paths);
                cover
                    .push(&self.graph, CycleSubgraph::new(verts), routing)
                    .expect("lifted per-ring tile must route");
            }
        }
        cover
    }

    /// End-to-end working path of a request: concatenation of each
    /// segment's clockwise arc on its ring (deterministic; protection
    /// reroutes per segment around the covering cycle).
    pub fn working_path(&self, u: Vertex, v: Vertex) -> Vec<Vertex> {
        self.path_avoiding(u, v, None)
    }

    /// End-to-end path of the request after the failure of physical edge
    /// `failed_edge`: the segment inside the failed edge's ring switches
    /// to its complement arc (the per-ring protection switch); all other
    /// segments keep their working arcs. The result provably avoids the
    /// failed edge — a single link lies in exactly one ring, and a
    /// ring's two arcs partition its edges.
    ///
    /// This is the end-to-end composition of the per-ring protections,
    /// the property experiment E10 claims.
    pub fn protected_path(&self, u: Vertex, v: Vertex, failed_edge: u32) -> Vec<Vertex> {
        assert!(
            (failed_edge as usize) < self.graph.edge_count(),
            "edge {failed_edge} out of range"
        );
        self.path_avoiding(u, v, Some(failed_edge))
    }

    fn path_avoiding(&self, u: Vertex, v: Vertex, failed_edge: Option<u32>) -> Vec<Vertex> {
        let mut out = vec![u];
        for (rid, a, b) in self.segments(u, v) {
            let node = &self.rings[rid as usize];
            let ring = Ring::new(node.len());
            let pa = node.position_of(a).expect("on ring");
            let pb = node.position_of(b).expect("on ring");
            let mut arc = cyclecover_ring::RingArc::new(ring, pa, ring.cw_gap(pa, pb));
            if let Some(failed) = failed_edge {
                if self.ring_of_edge(failed) == rid {
                    let local = failed - self.edge_base[rid as usize];
                    if arc.covers_edge(ring, local) {
                        arc = arc.complement(ring);
                        debug_assert!(!arc.covers_edge(ring, local));
                    }
                }
            }
            // The complement arc runs b → a; walk it reversed to keep the
            // overall direction u → v.
            let walk = arc.walk(ring);
            let hops: Vec<u32> = if walk.first() == Some(&pa) {
                walk.into_iter().skip(1).collect()
            } else {
                let mut w = walk;
                w.reverse();
                debug_assert_eq!(w.first(), Some(&pa));
                w.into_iter().skip(1).collect()
            };
            for p in hops {
                out.push(node.verts[p as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_graph::connectivity::{bridges, edge_connectivity};
    use cyclecover_graph::{builders, is_connected};

    #[test]
    fn builder_shapes() {
        let t = TreeOfRings::chain(3, 5);
        assert_eq!(t.vertex_count(), 13); // 5 + 4 + 4
        assert_eq!(t.graph().edge_count(), 15);
        assert!(is_connected(t.graph()));
        assert_eq!(edge_connectivity(t.graph()), 2, "every edge on a ring");
        assert!(bridges(t.graph()).is_empty());

        let s = TreeOfRings::star(6, 3, 4);
        assert_eq!(s.vertex_count(), 6 + 3 * 3);
        assert_eq!(s.rings().len(), 4);
    }

    #[test]
    fn home_and_edge_ownership() {
        let t = TreeOfRings::chain(2, 4);
        // Root ring vertices 0..4, child ring = [2 (hub), 4, 5, 6].
        assert_eq!(t.home_ring(0), 0);
        assert_eq!(t.home_ring(5), 1);
        assert_eq!(t.ring_of_edge(0), 0);
        assert_eq!(t.ring_of_edge(3), 0);
        assert_eq!(t.ring_of_edge(4), 1);
        assert_eq!(t.ring_of_edge(7), 1);
    }

    #[test]
    fn segments_within_one_ring() {
        let t = TreeOfRings::chain(2, 5);
        let segs = t.segments(0, 3);
        assert_eq!(segs, vec![(0, 0, 3)]);
        assert!(t.segments(4, 4).is_empty());
    }

    #[test]
    fn segments_across_rings_pass_hubs() {
        let t = TreeOfRings::chain(3, 5);
        // Ring 0: 0..5 (hub to ring1 at vertex 2); ring 1: [2,5,6,7,8]
        // (hub to ring2 at its position 2 = vertex 6); ring 2: [6,9,10,11,12].
        let segs = t.segments(0, 10);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], (0, 0, 2));
        assert_eq!(segs[1], (1, 2, 6));
        assert_eq!(segs[2], (2, 6, 10));
        // Reverse request mirrors.
        let back = t.segments(10, 0);
        assert_eq!(back[0], (2, 10, 6));
        assert_eq!(back[2], (0, 2, 0));
    }

    #[test]
    fn segment_starting_at_hub_skips_empty_segments() {
        let t = TreeOfRings::chain(2, 5);
        // Vertex 2 is the shared hub: requests from the hub into the
        // child ring have no segment in ring 0.
        let segs = t.segments(2, 6);
        assert_eq!(segs, vec![(1, 2, 6)]);
    }

    #[test]
    fn working_path_is_connected_and_valid() {
        let t = TreeOfRings::star(6, 2, 5);
        let n = t.vertex_count() as u32;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let p = t.working_path(u, v);
                assert_eq!(*p.first().unwrap(), u);
                assert_eq!(*p.last().unwrap(), v);
                for w in p.windows(2) {
                    assert!(t.graph().has_edge(w[0], w[1]), "({u},{v}) hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn covering_validates_against_segment_instance() {
        for t in [
            TreeOfRings::chain(2, 5),
            TreeOfRings::chain(3, 4),
            TreeOfRings::star(6, 3, 4),
        ] {
            let inst = builders::complete(t.vertex_count());
            let cover = t.cover(&inst, 4);
            let seg_inst = t.segment_instance(&inst);
            cover
                .validate(t.graph(), &seg_inst)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn covering_cost_scales_with_ring_count() {
        // Independent sub-networks: each ring is covered separately, so
        // cycles ≈ Σ per-ring. A chain of k rings costs ≈ k × (1-ring
        // chain cost of same len)… sanity: more rings, more cycles.
        let c2 = TreeOfRings::chain(2, 5)
            .cover(&builders::complete(9), 4)
            .len();
        let c4 = TreeOfRings::chain(4, 5)
            .cover(&builders::complete(17), 4)
            .len();
        assert!(c4 > c2);
    }

    #[test]
    fn sparse_instance_covers_cheaply() {
        // Only one request, spanning the whole chain: each traversed ring
        // needs at least one cycle, none more.
        let t = TreeOfRings::chain(3, 5);
        let mut inst = Graph::new(t.vertex_count());
        inst.add_edge(0, 10);
        let cover = t.cover(&inst, 4);
        assert_eq!(cover.len(), 3, "one protection cycle per traversed ring");
        let seg_inst = t.segment_instance(&inst);
        assert!(cover.validate(t.graph(), &seg_inst).is_ok());
    }

    #[test]
    fn protected_paths_avoid_every_failed_link() {
        for t in [TreeOfRings::chain(3, 4), TreeOfRings::star(5, 2, 4)] {
            let n = t.vertex_count() as u32;
            for failed in 0..t.graph().edge_count() as u32 {
                let fe = t.graph().edge(failed);
                for u in 0..n {
                    for v in (u + 1)..n {
                        let p = t.protected_path(u, v, failed);
                        assert_eq!(*p.first().unwrap(), u);
                        assert_eq!(*p.last().unwrap(), v);
                        for w in p.windows(2) {
                            assert!(t.graph().has_edge(w[0], w[1]), "hop {w:?}");
                            assert!(
                                !(fe.is_incident(w[0]) && fe.is_incident(w[1])),
                                "({u},{v}) crosses failed edge {failed} at {w:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn protected_path_equals_working_when_unaffected() {
        let t = TreeOfRings::chain(2, 5);
        // Fail an edge in ring 1; requests wholly inside ring 0 keep
        // their working path.
        let failed = t.graph().edge_count() as u32 - 1;
        assert_eq!(t.ring_of_edge(failed), 1);
        assert_eq!(t.protected_path(0, 3, failed), t.working_path(0, 3));
    }

    #[test]
    #[should_panic(expected = "hub 9 is not on ring #0")]
    fn attach_rejects_foreign_hub() {
        let mut b = TreeOfRingsBuilder::root(4);
        b.attach(0, 9, 4);
    }

    #[test]
    fn deep_tree_segments() {
        // Three levels: root(5) → child at 1 → grandchild.
        let mut b = TreeOfRingsBuilder::root(5);
        let c1 = b.attach(0, 1, 4);
        let hub2 = b.rings[c1 as usize].verts[2];
        let c2 = b.attach(c1, hub2, 4);
        let t = b.build();
        let leaf = t.rings()[c2 as usize].verts[1];
        let segs = t.segments(3, leaf);
        assert_eq!(segs.len(), 3);
        // Chain of rings: 0 → c1 → c2.
        assert_eq!(segs[0].0, 0);
        assert_eq!(segs[1].0, c1);
        assert_eq!(segs[2].0, c2);
    }
}
