//! Structured DRC cycle coverings of `K_{R·C}` on grids and tori.
//!
//! The ring theorems of the paper do not transfer directly to meshes —
//! no exact `ρ` is known there (the note merely announces the
//! investigation). This module contributes *constructive upper bounds*
//! with machine-verified routings, in the same spirit as the paper's
//! constructions, plus the matching capacity lower bounds for calibration
//! (experiment E9 of `DESIGN.md`).
//!
//! ## Torus construction ([`cover_torus`])
//!
//! Split the requests of `K_{R·C}` into three classes:
//!
//! * **intra-row** — both endpoints in row `r`: the row is a ring `C_C`,
//!   so *lift* the paper-optimal ring covering of `K_C` onto it
//!   (`ρ(C)` cycles per row; routings are the tile arcs, which partition
//!   the row's edges — DRC holds within each lifted cycle verbatim);
//! * **intra-column** — dually, `ρ(R)` lifted cycles per column;
//! * **mixed** — endpoints differing in both coordinates. The two
//!   diagonals of each combinatorial rectangle `{r1,r2} × {c1,c2}` are
//!   covered together by one **crossed quad**
//!   `(r1,c1) → (r2,c2) → (r1,c2) → (r2,c1) →` routed so that row `r1`,
//!   column `c1` and column `c2` are each wound exactly once in the
//!   increasing direction — four pairwise edge-disjoint paths on any
//!   torus, with no case analysis (this is where wraparound is
//!   essential; the crossed quad is *infeasible* on a grid).
//!
//! Total: `R·ρ(C) + C·ρ(R) + R(R−1)/2 · C(C−1)/2` cycles.
//!
//! ## Grid construction ([`cover_grid`])
//!
//! Grids have no wraparound, and rows/columns are *paths*, on which no
//! cycle routes at all (the tree impossibility theorem in
//! `cyclecover-core::path`). Every covering cycle must therefore span at
//! least two rows or two columns:
//!
//! * **intra-row** requests are covered by **perimeter quads**: rows are
//!   paired `(0,1), (2,3), …` and the quad
//!   `(r,c1) → (r,c2) → (r',c2) → (r',c1) →` (routed around the
//!   rectangle perimeter) covers the same column-pair request in both
//!   rows at once;
//! * **intra-column** requests dually, with column pairing;
//! * **mixed** requests by **corner triangles**: the diagonal of a
//!   rectangle plus one corner, the diagonal request routed around the
//!   opposite two sides (one triangle per diagonal, two per rectangle).
//!
//! Both constructions return [`GraphCovering`]s whose every routing has
//! been built explicitly; callers (and tests) re-verify with
//! [`GraphCovering::validate`].

use crate::cover::{routing_from_vertex_paths, GraphCovering};
use crate::grid::GridTopology;
use cyclecover_graph::CycleSubgraph;
use cyclecover_ring::Ring;

/// Lifts the paper-optimal covering of `K_len` over `C_len` onto a
/// concrete ring of `len` vertices embedded in a larger graph.
///
/// `embed(i)` maps ring position `i` to the host vertex. The lifted
/// cycles' routings follow the tile arcs, so they are edge-disjoint
/// within the embedded ring provided the embedding walks real host edges
/// (the caller guarantees that; [`GraphCovering::validate`] re-checks).
fn lift_ring_covering(
    host: &mut GraphCovering,
    g: &cyclecover_graph::Graph,
    len: u32,
    embed: impl Fn(u32) -> u32,
) {
    let ring = Ring::new(len);
    let covering = cyclecover_core::construct_optimal(len);
    for tile in covering.tiles() {
        let verts: Vec<u32> = tile.vertices().iter().map(|&i| embed(i)).collect();
        let paths: Vec<Vec<u32>> = tile
            .arcs(ring)
            .iter()
            .map(|arc| arc.walk(ring).into_iter().map(&embed).collect())
            .collect();
        let routing = routing_from_vertex_paths(g, &paths);
        host.push(g, CycleSubgraph::new(verts), routing)
            .expect("lifted ring tile must route");
    }
}

/// Covers `K_{R·C}` on the torus `topo` (see module docs). The returned
/// covering validates against the complete instance.
///
/// # Panics
/// Panics if `topo` is not a torus.
pub fn cover_torus(topo: &GridTopology) -> GraphCovering {
    assert!(topo.wraps(), "cover_torus needs a torus; use cover_grid");
    let (rows, cols) = (topo.rows(), topo.cols());
    let g = topo.graph();
    let mut cover = GraphCovering::new();

    // Intra-row: lift the optimal K_cols covering onto each row ring.
    for r in 0..rows {
        lift_ring_covering(&mut cover, g, cols, |i| topo.vertex(r, i));
    }
    // Intra-column: lift the optimal K_rows covering onto each column ring.
    for c in 0..cols {
        lift_ring_covering(&mut cover, g, rows, |i| topo.vertex(i, c));
    }
    // Mixed: one crossed quad per combinatorial rectangle.
    for r1 in 0..rows {
        for r2 in (r1 + 1)..rows {
            for c1 in 0..cols {
                for c2 in (c1 + 1)..cols {
                    cover
                        .push(
                            g,
                            crossed_quad_cycle(topo, r1, r2, c1, c2),
                            crossed_quad_routing(topo, r1, r2, c1, c2),
                        )
                        .expect("crossed quad routes on any torus");
                }
            }
        }
    }
    cover
}

/// The crossed quad's logical cycle: `(r1,c1), (r2,c2), (r1,c2), (r2,c1)`
/// — its four cycle edges are the rectangle's two diagonals (the mixed
/// requests) and two column requests.
fn crossed_quad_cycle(topo: &GridTopology, r1: u32, r2: u32, c1: u32, c2: u32) -> CycleSubgraph {
    CycleSubgraph::new(vec![
        topo.vertex(r1, c1),
        topo.vertex(r2, c2),
        topo.vertex(r1, c2),
        topo.vertex(r2, c1),
    ])
}

/// The crossed quad's routing: row `r1` and both columns wound exactly
/// once in the increasing direction.
///
/// * `(r1,c1) → (r2,c2)`: forward along row `r1` to `c2`, then forward
///   down column `c2` to `r2`;
/// * `(r2,c2) → (r1,c2)`: forward along column `c2` (the rest of it);
/// * `(r1,c2) → (r2,c1)`: forward along row `r1` back to `c1` (the rest
///   of the row), then forward down column `c1` to `r2`;
/// * `(r2,c1) → (r1,c1)`: forward along column `c1` (the rest of it).
fn crossed_quad_routing(
    topo: &GridTopology,
    r1: u32,
    r2: u32,
    c1: u32,
    c2: u32,
) -> crate::drc::CycleRouting {
    let mut p1 = topo.row_walk_fwd(r1, c1, c2);
    p1.extend_from_slice(&topo.col_walk_fwd(c2, r1, r2)[1..]);
    let p2 = topo.col_walk_fwd(c2, r2, r1);
    let mut p3 = topo.row_walk_fwd(r1, c2, c1);
    p3.extend_from_slice(&topo.col_walk_fwd(c1, r1, r2)[1..]);
    let p4 = topo.col_walk_fwd(c1, r2, r1);
    routing_from_vertex_paths(topo.graph(), &[p1, p2, p3, p4])
}

/// Covers `K_{R·C}` on the (non-wrapping) grid `topo` (see module docs).
/// The returned covering validates against the complete instance.
///
/// # Panics
/// Panics if `topo` wraps, or if either dimension is < 2 (a `1 × C` grid
/// is a path, on which no cycle covering exists — the impossibility
/// theorem of `cyclecover-core::path`).
pub fn cover_grid(topo: &GridTopology) -> GraphCovering {
    assert!(!topo.wraps(), "cover_grid needs a grid; use cover_torus");
    let (rows, cols) = (topo.rows(), topo.cols());
    assert!(
        rows >= 2 && cols >= 2,
        "a {rows}x{cols} grid is a path; no cycle covering exists"
    );
    let mut cover = GraphCovering::new();

    // Intra-row requests: perimeter quads over paired rows.
    for pair in 0..rows / 2 {
        let (r1, r2) = (2 * pair, 2 * pair + 1);
        push_all_perimeter_quads_for_rows(&mut cover, topo, r1, r2);
    }
    if rows % 2 == 1 && rows > 1 {
        // Odd row count: the last row pairs with its neighbor (its
        // neighbor's requests get covered twice — harmless overlap).
        push_all_perimeter_quads_for_rows(&mut cover, topo, rows - 2, rows - 1);
    }
    // Intra-column requests: perimeter quads over paired columns.
    for pair in 0..cols / 2 {
        let (c1, c2) = (2 * pair, 2 * pair + 1);
        push_all_perimeter_quads_for_cols(&mut cover, topo, c1, c2);
    }
    if cols % 2 == 1 && cols > 1 {
        push_all_perimeter_quads_for_cols(&mut cover, topo, cols - 2, cols - 1);
    }
    // Mixed requests: two corner triangles per rectangle.
    for r1 in 0..rows {
        for r2 in (r1 + 1)..rows {
            for c1 in 0..cols {
                for c2 in (c1 + 1)..cols {
                    push_corner_triangles(&mut cover, topo, r1, r2, c1, c2);
                }
            }
        }
    }
    cover
}

/// For the fixed row pair `(r1, r2)`, pushes one perimeter quad per
/// column pair — covering every intra-row request of both rows.
fn push_all_perimeter_quads_for_rows(
    cover: &mut GraphCovering,
    topo: &GridTopology,
    r1: u32,
    r2: u32,
) {
    let g = topo.graph();
    for c1 in 0..topo.cols() {
        for c2 in (c1 + 1)..topo.cols() {
            let cycle = CycleSubgraph::new(vec![
                topo.vertex(r1, c1),
                topo.vertex(r1, c2),
                topo.vertex(r2, c2),
                topo.vertex(r2, c1),
            ]);
            let paths = vec![
                topo.row_path(r1, c1, c2, false),
                topo.col_path(c2, r1, r2, false),
                topo.row_path(r2, c2, c1, false),
                topo.col_path(c1, r2, r1, false),
            ];
            let routing = routing_from_vertex_paths(g, &paths);
            cover
                .push(g, cycle, routing)
                .expect("perimeter quad routes on any grid");
        }
    }
}

/// For the fixed column pair `(c1, c2)`, pushes one perimeter quad per
/// row pair — covering every intra-column request of both columns.
fn push_all_perimeter_quads_for_cols(
    cover: &mut GraphCovering,
    topo: &GridTopology,
    c1: u32,
    c2: u32,
) {
    let g = topo.graph();
    for r1 in 0..topo.rows() {
        for r2 in (r1 + 1)..topo.rows() {
            let cycle = CycleSubgraph::new(vec![
                topo.vertex(r1, c1),
                topo.vertex(r2, c1),
                topo.vertex(r2, c2),
                topo.vertex(r1, c2),
            ]);
            let paths = vec![
                topo.col_path(c1, r1, r2, false),
                topo.row_path(r2, c1, c2, false),
                topo.col_path(c2, r2, r1, false),
                topo.row_path(r1, c2, c1, false),
            ];
            let routing = routing_from_vertex_paths(g, &paths);
            cover
                .push(g, cycle, routing)
                .expect("perimeter quad routes on any grid");
        }
    }
}

/// The two corner triangles of rectangle `{r1,r2} × {c1,c2}`, each
/// covering one diagonal (mixed) request; the diagonal is routed around
/// the two rectangle sides its triangle does not use.
fn push_corner_triangles(
    cover: &mut GraphCovering,
    topo: &GridTopology,
    r1: u32,
    r2: u32,
    c1: u32,
    c2: u32,
) {
    let g = topo.graph();
    // Diagonal (r1,c1)–(r2,c2), corner (r1,c2).
    {
        let a = topo.vertex(r1, c1);
        let x = topo.vertex(r1, c2);
        let b = topo.vertex(r2, c2);
        let cycle = CycleSubgraph::new(vec![a, x, b]);
        let mut back = topo.row_path(r2, c2, c1, false);
        back.extend_from_slice(&topo.col_path(c1, r2, r1, false)[1..]);
        let paths = vec![
            topo.row_path(r1, c1, c2, false),
            topo.col_path(c2, r1, r2, false),
            back,
        ];
        let routing = routing_from_vertex_paths(g, &paths);
        cover
            .push(g, cycle, routing)
            .expect("corner triangle routes on any grid");
    }
    // Diagonal (r1,c2)–(r2,c1), corner (r1,c1).
    {
        let a = topo.vertex(r1, c2);
        let y = topo.vertex(r1, c1);
        let b = topo.vertex(r2, c1);
        let cycle = CycleSubgraph::new(vec![a, y, b]);
        let mut back = topo.row_path(r2, c1, c2, false);
        back.extend_from_slice(&topo.col_path(c2, r2, r1, false)[1..]);
        let paths = vec![
            topo.row_path(r1, c2, c1, false),
            topo.col_path(c1, r1, r2, false),
            back,
        ];
        let routing = routing_from_vertex_paths(g, &paths);
        cover
            .push(g, cycle, routing)
            .expect("corner triangle routes on any grid");
    }
}

/// Ablation baseline: the torus covering with **corner triangles**
/// instead of crossed quads — two cycles per combinatorial rectangle
/// (one per diagonal) rather than one. Same row/column lifts. Exists to
/// measure what the crossed-quad gadget is worth (experiment E9); the
/// structured [`cover_torus`] strictly beats it:
/// `R(R−1)/2 · C(C−1)/2` extra cycles.
pub fn cover_torus_triangles(topo: &GridTopology) -> GraphCovering {
    assert!(topo.wraps(), "torus ablation needs a torus");
    let (rows, cols) = (topo.rows(), topo.cols());
    let g = topo.graph();
    let mut cover = GraphCovering::new();
    for r in 0..rows {
        lift_ring_covering(&mut cover, g, cols, |i| topo.vertex(r, i));
    }
    for c in 0..cols {
        lift_ring_covering(&mut cover, g, rows, |i| topo.vertex(i, c));
    }
    for r1 in 0..rows {
        for r2 in (r1 + 1)..rows {
            for c1 in 0..cols {
                for c2 in (c1 + 1)..cols {
                    push_corner_triangles(&mut cover, topo, r1, r2, c1, c2);
                }
            }
        }
    }
    cover
}

/// Number of cycles the torus construction produces:
/// `R·ρ(C) + C·ρ(R) + R(R−1)/2 · C(C−1)/2` — the workspace's constructive
/// upper bound on the torus covering number. (For `n ≡ 0 mod 8` ring
/// factors the lifted covering carries the documented `+1` excess per
/// ring; this formula counts the *actual* construction.)
pub fn torus_construction_size(rows: u64, cols: u64) -> u64 {
    let rho_r = cyclecover_core::construct_optimal(rows as u32).len() as u64;
    let rho_c = cyclecover_core::construct_optimal(cols as u32).len() as u64;
    rows * rho_c + cols * rho_r + rows * (rows - 1) / 2 * (cols * (cols - 1) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::{capacity_lower_bound, lower_bound};
    use cyclecover_graph::builders;

    #[test]
    fn torus_covering_validates() {
        for (r, c) in [(3u32, 3u32), (3, 4), (4, 4), (3, 5), (5, 4)] {
            let topo = GridTopology::torus(r, c);
            let cover = cover_torus(&topo);
            let inst = builders::complete(topo.vertex_count());
            cover
                .validate(topo.graph(), &inst)
                .unwrap_or_else(|e| panic!("{r}x{c} torus: {e}"));
            assert_eq!(
                cover.len() as u64,
                torus_construction_size(r as u64, c as u64),
                "{r}x{c}"
            );
        }
    }

    #[test]
    fn grid_covering_validates() {
        for (r, c) in [(2u32, 2u32), (2, 3), (3, 3), (3, 4), (4, 5), (2, 6)] {
            let topo = GridTopology::grid(r, c);
            let cover = cover_grid(&topo);
            let inst = builders::complete(topo.vertex_count());
            cover
                .validate(topo.graph(), &inst)
                .unwrap_or_else(|e| panic!("{r}x{c} grid: {e}"));
        }
    }

    #[test]
    fn torus_beats_grid_on_same_shape() {
        // Wraparound enables crossed quads (1 cycle per rectangle instead
        // of 2 triangles) and ring rows; the torus covering is smaller.
        for (r, c) in [(3u32, 4u32), (4, 4), (4, 5)] {
            let t = cover_torus(&GridTopology::torus(r, c)).len();
            let g = cover_grid(&GridTopology::grid(r, c)).len();
            assert!(t < g, "{r}x{c}: torus {t} vs grid {g}");
        }
    }

    #[test]
    fn coverings_respect_lower_bounds() {
        let topo = GridTopology::torus(4, 4);
        let inst = builders::complete(16);
        let cover = cover_torus(&topo);
        let lb = lower_bound(topo.graph(), &inst);
        assert!(lb >= 1);
        assert!(
            (cover.len() as u64) >= lb,
            "construction {} below lower bound {lb}?!",
            cover.len()
        );
    }

    #[test]
    fn torus_upper_bound_within_factor_of_lower_bound() {
        // Calibration: the construction should be within a modest constant
        // factor of the capacity bound (it is ~4–6x at small sizes; record
        // the shape, not the exact constant).
        for (r, c) in [(4u32, 4u32), (5, 5)] {
            let topo = GridTopology::torus(r, c);
            let inst = builders::complete(topo.vertex_count());
            let ub = cover_torus(&topo).len() as u64;
            let lb = capacity_lower_bound(topo.graph(), &inst).max(1);
            assert!(ub <= 12 * lb, "{r}x{c}: ub {ub} vs lb {lb}");
        }
    }

    #[test]
    fn triangle_ablation_validates_and_loses() {
        for (r, c) in [(3u32, 3u32), (3, 4), (4, 4)] {
            let topo = GridTopology::torus(r, c);
            let naive = cover_torus_triangles(&topo);
            let structured = cover_torus(&topo);
            let inst = builders::complete(topo.vertex_count());
            naive
                .validate(topo.graph(), &inst)
                .unwrap_or_else(|e| panic!("{r}x{c}: {e}"));
            let rects = (r as usize * (r as usize - 1) / 2) * (c as usize * (c as usize - 1) / 2);
            assert_eq!(
                naive.len(),
                structured.len() + rects,
                "{r}x{c}: quad gadget saves exactly one cycle per rectangle"
            );
        }
    }

    #[test]
    fn crossed_quad_is_infeasible_on_grid() {
        // The torus-only gadget: on a grid the crossed quad cannot route
        // (its two diagonals + two column requests exceed the rectangle's
        // edge budget without wraparound). Verified via the exact oracle.
        use crate::drc::{route_cycle, RouteOutcome, DEFAULT_BUDGET};
        let topo = GridTopology::grid(2, 2);
        let cyc = crossed_quad_cycle(&topo, 0, 1, 0, 1);
        match route_cycle(topo.graph(), &cyc, 4, DEFAULT_BUDGET) {
            RouteOutcome::Infeasible => {}
            other => panic!("crossed quad on 2x2 grid: {other:?}"),
        }
    }

    #[test]
    fn crossed_quad_loads_are_tight() {
        // Winds row r1 + col c1 + col c2 exactly once: load = C + 2R.
        let topo = GridTopology::torus(5, 7);
        let routing = crossed_quad_routing(&topo, 1, 3, 2, 6);
        assert_eq!(routing.total_load() as u32, 7 + 2 * 5);
    }

    #[test]
    fn grid_covering_covers_each_class() {
        let topo = GridTopology::grid(3, 3);
        let cover = cover_grid(&topo);
        let cov = cover.coverage(9);
        // A row request, a column request, a mixed request.
        use cyclecover_graph::Edge;
        assert!(cov.count(Edge::new(topo.vertex(0, 0), topo.vertex(0, 2))) >= 1);
        assert!(cov.count(Edge::new(topo.vertex(0, 1), topo.vertex(2, 1))) >= 1);
        assert!(cov.count(Edge::new(topo.vertex(0, 0), topo.vertex(2, 2))) >= 1);
    }
}
