//! Failure injection and protection audit on general topologies.
//!
//! The paper's protection mechanism, generalized: each covering cycle is
//! an independent subnetwork; when a link carrying one of its paths
//! fails, the affected demand is rerouted "via the remaining part of the
//! cycle" — here, the concatenation of the cycle's other paths, which is
//! edge-disjoint from the failed path by the DRC and therefore
//! automatically avoids the failed link.
//!
//! [`audit_link_failures`] *proves* that property exhaustively for a
//! given covering: every physical link is failed in turn, every affected
//! cycle's detour is materialized and re-verified hop by hop. Node
//! failures ([`audit_node_failure`]) are strictly harsher — a cycle
//! whose detour transits the failed node cannot protect against it; the
//! audit reports those demands honestly rather than claiming coverage
//! the scheme does not provide (the paper's model is link failure).

use crate::cover::GraphCovering;
use cyclecover_graph::{Graph, Vertex};

/// Outcome of failing one physical link.
#[derive(Clone, Debug)]
pub struct LinkFailureReport {
    /// The failed edge (index into the physical graph).
    pub edge: u32,
    /// Cycles with a path routed through the failed link.
    pub affected_cycles: usize,
    /// Demands successfully rerouted around their cycle.
    pub restored: usize,
    /// Longest detour, in hops.
    pub max_detour: usize,
}

/// Aggregate single-link-failure audit.
#[derive(Clone, Debug)]
pub struct LinkAudit {
    /// One report per physical edge.
    pub reports: Vec<LinkFailureReport>,
    /// True iff every affected demand was restored for every failure.
    pub fully_survivable: bool,
    /// Largest detour observed across all failures.
    pub worst_detour: usize,
    /// Largest number of simultaneously affected cycles at one failure
    /// (how "shared" the hottest link is).
    pub max_affected: usize,
}

/// Fails every physical link in turn and verifies per-cycle protection.
///
/// For each cycle the failed link hits (in path `i`), the detour is the
/// concatenation of the remaining paths (see
/// [`crate::drc::CycleRouting::protection_walk`]); the audit re-verifies
/// that the detour (a) connects the failed demand's endpoints, (b) walks
/// real edges, and (c) avoids the failed link *by edge index* — parallel
/// links are distinct failure domains.
pub fn audit_link_failures(g: &Graph, cover: &GraphCovering) -> LinkAudit {
    // Index: edge → (cycle, path) pairs that use it. One pass.
    let mut users: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.edge_count()];
    for (ci, rc) in cover.cycles().iter().enumerate() {
        for (pi, p) in rc.routing.paths.iter().enumerate() {
            for &ei in &p.edges {
                users[ei as usize].push((ci as u32, pi as u32));
            }
        }
    }

    let reports: Vec<LinkFailureReport> = (0..g.edge_count() as u32)
        .map(|ei| failure_report_for_edge(g, cover, &users, ei))
        .collect();
    LinkAudit {
        fully_survivable: reports.iter().all(|r| r.restored == r.affected_cycles),
        worst_detour: reports.iter().map(|r| r.max_detour).max().unwrap_or(0),
        max_affected: reports.iter().map(|r| r.affected_cycles).max().unwrap_or(0),
        reports,
    }
}

/// The detour for path `pi` of cycle `rc` is made of the other paths'
/// edges; check none of them is the failed index.
fn detour_avoids(rc: &crate::cover::RoutedCycle, pi: usize, failed: u32) -> bool {
    rc.routing
        .paths
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != pi)
        .all(|(_, p)| p.edges.iter().all(|&e| e != failed))
}

/// Parallel variant of [`audit_link_failures`]: the per-edge failure
/// simulations are independent, so the edge range is split across
/// `threads` scoped threads over disjoint chunks (no locks,
/// no shared mutation); partial results are merged in edge order, so
/// the report is bit-identical to the sequential audit (asserted by
/// tests). Use for the big sweeps of experiment E9 — at small sizes the
/// sequential audit wins on overhead.
pub fn audit_link_failures_parallel(g: &Graph, cover: &GraphCovering, threads: usize) -> LinkAudit {
    let threads = threads.max(1).min(g.edge_count().max(1));
    if threads <= 1 || g.edge_count() < 64 {
        return audit_link_failures(g, cover);
    }
    // Same user index as the sequential path, built once and shared
    // read-only across threads.
    let mut users: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.edge_count()];
    for (ci, rc) in cover.cycles().iter().enumerate() {
        for (pi, p) in rc.routing.paths.iter().enumerate() {
            for &ei in &p.edges {
                users[ei as usize].push((ci as u32, pi as u32));
            }
        }
    }
    let users = &users;
    let chunk = g.edge_count().div_ceil(threads);
    let mut partials: Vec<Vec<LinkFailureReport>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(g.edge_count());
                scope.spawn(move || {
                    (lo..hi)
                        .map(|ei| failure_report_for_edge(g, cover, users, ei as u32))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("audit worker panicked"));
        }
    });
    let reports: Vec<LinkFailureReport> = partials.into_iter().flatten().collect();
    let fully = reports.iter().all(|r| r.restored == r.affected_cycles);
    LinkAudit {
        fully_survivable: fully,
        worst_detour: reports.iter().map(|r| r.max_detour).max().unwrap_or(0),
        max_affected: reports.iter().map(|r| r.affected_cycles).max().unwrap_or(0),
        reports,
    }
}

/// The per-edge failure simulation shared by both audit drivers.
fn failure_report_for_edge(
    g: &Graph,
    cover: &GraphCovering,
    users: &[Vec<(u32, u32)>],
    ei: u32,
) -> LinkFailureReport {
    let mut restored = 0usize;
    let mut max_detour = 0usize;
    for &(ci, pi) in &users[ei as usize] {
        let rc = &cover.cycles()[ci as usize];
        let failed = &rc.routing.paths[pi as usize];
        let detour = rc.routing.protection_walk(pi as usize);
        let (from, to) = (
            *failed.vertices.first().expect("nonempty path"),
            *failed.vertices.last().expect("nonempty path"),
        );
        let ok = detour.first() == Some(&to)
            && detour.last() == Some(&from)
            && detour_avoids(rc, pi as usize, ei)
            && detour.windows(2).all(|w| g.has_edge(w[0], w[1]));
        if ok {
            restored += 1;
            max_detour = max_detour.max(detour.len().saturating_sub(1));
        }
    }
    LinkFailureReport {
        edge: ei,
        affected_cycles: users[ei as usize].len(),
        restored,
        max_detour,
    }
}

/// Outcome of failing one node.
#[derive(Clone, Debug)]
pub struct NodeFailureReport {
    /// The failed node.
    pub node: Vertex,
    /// Demands terminating at the node (unrecoverable by definition —
    /// the endpoint itself is gone; excluded from protection accounting).
    pub terminating: usize,
    /// Transit demands (node interior to their working path) whose
    /// detour avoids the node: restored.
    pub restored: usize,
    /// Transit demands whose detour *also* transits the node: the
    /// documented blind spot of single-cycle link protection.
    pub unprotected: usize,
}

/// Fails node `v`: every cycle path transiting `v` is broken; the demand
/// is restorable iff the cycle detour avoids `v` too.
pub fn audit_node_failure(g: &Graph, cover: &GraphCovering, v: Vertex) -> NodeFailureReport {
    assert!((v as usize) < g.vertex_count(), "node {v} out of range");
    let mut terminating = 0usize;
    let mut restored = 0usize;
    let mut unprotected = 0usize;
    for rc in cover.cycles() {
        for (pi, p) in rc.routing.paths.iter().enumerate() {
            let (from, to) = p.endpoints();
            if from == v || to == v {
                terminating += 1;
                continue;
            }
            if !p.vertices.contains(&v) {
                continue; // unaffected
            }
            let detour = rc.routing.protection_walk(pi);
            // Endpoints of the detour are the demand's endpoints (≠ v);
            // interior transit through v kills the protection path too.
            if detour[1..detour.len() - 1].contains(&v) {
                unprotected += 1;
            } else {
                restored += 1;
            }
        }
    }
    NodeFailureReport {
        node: v,
        terminating,
        restored,
        unprotected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc::{route_cycle, DEFAULT_BUDGET};
    use crate::grid::GridTopology;
    use crate::mesh_cover::{cover_grid, cover_torus};
    use crate::tree_of_rings::TreeOfRings;
    use cyclecover_graph::{builders, CycleSubgraph};

    #[test]
    fn ring_covering_fully_survivable() {
        let g = builders::cycle(4);
        let mut cover = GraphCovering::new();
        for verts in [vec![0u32, 1, 2, 3], vec![0, 1, 3], vec![0, 2, 3]] {
            let c = CycleSubgraph::new(verts);
            let r = route_cycle(&g, &c, 4, DEFAULT_BUDGET).routing().unwrap();
            cover.push(&g, c, r).unwrap();
        }
        let audit = audit_link_failures(&g, &cover);
        assert!(audit.fully_survivable);
        // Every winding cycle uses every ring edge: all 3 cycles affected
        // by any failure.
        assert_eq!(audit.max_affected, 3);
        assert!(audit.reports.iter().all(|r| r.restored == r.affected_cycles));
    }

    #[test]
    fn torus_covering_fully_survivable() {
        let topo = GridTopology::torus(3, 4);
        let cover = cover_torus(&topo);
        let audit = audit_link_failures(topo.graph(), &cover);
        assert!(audit.fully_survivable);
        assert!(audit.worst_detour >= 1);
        // Every edge is used by someone (row/col lifts wind their rings).
        assert!(audit.reports.iter().all(|r| r.affected_cycles > 0));
    }

    #[test]
    fn grid_covering_fully_survivable() {
        let topo = GridTopology::grid(3, 3);
        let cover = cover_grid(&topo);
        let audit = audit_link_failures(topo.graph(), &cover);
        assert!(audit.fully_survivable);
    }

    #[test]
    fn tree_of_rings_fully_survivable() {
        let t = TreeOfRings::chain(3, 5);
        let inst = builders::complete(t.vertex_count());
        let cover = t.cover(&inst, 4);
        let audit = audit_link_failures(t.graph(), &cover);
        assert!(audit.fully_survivable);
    }

    #[test]
    fn detour_lengths_bounded_by_cycle_load() {
        let topo = GridTopology::torus(3, 3);
        let cover = cover_torus(&topo);
        let audit = audit_link_failures(topo.graph(), &cover);
        // A detour is the rest of the cycle: ≤ total routing load.
        let max_load = cover
            .cycles()
            .iter()
            .map(|rc| rc.routing.total_load())
            .max()
            .unwrap();
        assert!(audit.worst_detour < max_load);
    }

    #[test]
    fn node_failure_on_ring_hub_exposes_blind_spot() {
        // On a plain ring covering, winding cycles transit every vertex;
        // a triangle's detour for a path through v may transit v again.
        // The audit must report such demands as unprotected, not restored.
        let g = builders::cycle(6);
        let mut cover = GraphCovering::new();
        let c = CycleSubgraph::new(vec![0, 2, 4]);
        let r = route_cycle(&g, &c, 6, DEFAULT_BUDGET).routing().unwrap();
        cover.push(&g, c, r).unwrap();
        // Fail vertex 1: it lies inside exactly one path (0→2). The
        // detour 2→4→0 avoids vertex 1 → restored.
        let rep = audit_node_failure(&g, &cover, 1);
        assert_eq!(rep.terminating, 0);
        assert_eq!(rep.restored, 1);
        assert_eq!(rep.unprotected, 0);
        // Fail vertex 0 (an endpoint of two paths): those terminate; the
        // third path (2→4) does not transit 0 → unaffected.
        let rep0 = audit_node_failure(&g, &cover, 0);
        assert_eq!(rep0.terminating, 2);
        assert_eq!(rep0.restored + rep0.unprotected, 0);
    }

    #[test]
    fn parallel_audit_matches_sequential() {
        let topo = GridTopology::torus(4, 6);
        let cover = cover_torus(&topo);
        let seq = audit_link_failures(topo.graph(), &cover);
        for threads in [1usize, 2, 3, 7] {
            let par = audit_link_failures_parallel(topo.graph(), &cover, threads);
            assert_eq!(par.fully_survivable, seq.fully_survivable);
            assert_eq!(par.worst_detour, seq.worst_detour);
            assert_eq!(par.max_affected, seq.max_affected);
            assert_eq!(par.reports.len(), seq.reports.len());
            for (a, b) in par.reports.iter().zip(&seq.reports) {
                assert_eq!(a.edge, b.edge);
                assert_eq!(a.affected_cycles, b.affected_cycles);
                assert_eq!(a.restored, b.restored);
                assert_eq!(a.max_detour, b.max_detour);
            }
        }
    }

    #[test]
    fn node_failure_counts_are_consistent() {
        let topo = GridTopology::torus(3, 4);
        let cover = cover_torus(&topo);
        for v in 0..topo.vertex_count() as u32 {
            let rep = audit_node_failure(topo.graph(), &cover, v);
            // Nothing negative, nothing impossible.
            let total_paths: usize = cover
                .cycles()
                .iter()
                .map(|rc| rc.routing.paths.len())
                .sum();
            assert!(rep.terminating + rep.restored + rep.unprotected <= total_paths);
        }
    }
}
