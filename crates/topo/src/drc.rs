//! The Disjoint Routing Constraint on *arbitrary* physical graphs.
//!
//! On the ring, DRC feasibility has a clean structural answer (the winding
//! lemma of `cyclecover-ring`). On the paper's extension topologies —
//! grids, tori, trees of rings — no such characterization is known, and
//! deciding whether a set of requests admits pairwise edge-disjoint paths
//! is the (NP-hard in general) edge-disjoint paths problem. Covering
//! cycles are *small* (3–6 requests), so an exact bounded backtracking
//! search is entirely practical; this module implements it.
//!
//! ## Semantics
//!
//! [`route_cycle`] searches for one simple path per cycle edge, pairwise
//! edge-disjoint, where each path's length is at most the graph distance
//! of its endpoints plus `slack`. The length bound keeps the search space
//! finite and mirrors operational reality (protection capacity is not
//! reserved on wildly indirect routes); `slack = n` recovers the
//! unbounded problem on an `n`-vertex graph since simple paths cannot be
//! longer than `n − 1`.
//!
//! The search is exhaustive within those bounds, so [`RouteOutcome::Infeasible`]
//! is a *proof* for the bounded problem, while [`RouteOutcome::BudgetExhausted`]
//! honestly reports an inconclusive search (never observed at workspace
//! scales; the budget is a defense against adversarial inputs).

use cyclecover_graph::{bfs_distances, CycleSubgraph, Graph, Vertex};

/// One routed request: an explicit simple path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutedPath {
    /// Vertex sequence, `from … to`.
    pub vertices: Vec<Vertex>,
    /// Edge indices into the host graph, parallel to the hops of
    /// `vertices` (`edges.len() == vertices.len() − 1`). Tracking indices
    /// (not endpoints) keeps multigraphs exact: two paths may use
    /// *different* parallel copies of the same vertex pair.
    pub edges: Vec<u32>,
}

impl RoutedPath {
    /// Path length in hops.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True iff the path has no hops (never produced by the router).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Endpoints `(from, to)`.
    pub fn endpoints(&self) -> (Vertex, Vertex) {
        (
            *self.vertices.first().expect("routed path is nonempty"),
            *self.vertices.last().expect("routed path is nonempty"),
        )
    }
}

/// A complete DRC routing of a cycle: `paths[i]` connects cycle vertex
/// `i` to cycle vertex `i + 1 (mod k)`, and all paths are pairwise
/// edge-disjoint.
#[derive(Clone, Debug)]
pub struct CycleRouting {
    /// One path per cycle edge, in cycle order.
    pub paths: Vec<RoutedPath>,
}

impl CycleRouting {
    /// Total physical edges consumed by the routing.
    pub fn total_load(&self) -> usize {
        self.paths.iter().map(RoutedPath::len).sum()
    }

    /// The protection detour for the request `paths[i]`: the concatenation
    /// of every *other* path, walked the other way around the cycle
    /// (`to … from` of request `i`). This is the paper's protection
    /// mechanism — "reroute the traffic through the failed link via the
    /// remaining part of the cycle".
    pub fn protection_walk(&self, i: usize) -> Vec<Vertex> {
        let k = self.paths.len();
        assert!(i < k, "path index {i} out of range for cycle of {k} requests");
        // Walk i+1, i+2, …, i+k−1; request i runs from cycle vertex i to
        // i+1, so the detour starts at vertex i+1's path and ends back at
        // vertex i. Reverse the whole walk to run `to → from` of request i
        // … callers only need the vertex set and endpoints, so return the
        // forward walk from `to` to `from`.
        let mut walk = Vec::new();
        for j in 1..k {
            let p = &self.paths[(i + j) % k];
            if walk.is_empty() {
                walk.extend_from_slice(&p.vertices);
            } else {
                debug_assert_eq!(walk.last(), p.vertices.first());
                walk.extend_from_slice(&p.vertices[1..]);
            }
        }
        walk
    }
}

/// Outcome of the bounded exhaustive search.
#[derive(Clone, Debug)]
pub enum RouteOutcome {
    /// A routing was found.
    Routed(CycleRouting),
    /// No routing exists within the length bound (`dist + slack` per
    /// request) — a definitive negative for the bounded problem.
    Infeasible,
    /// The step budget ran out before the search completed.
    BudgetExhausted,
}

impl RouteOutcome {
    /// The routing, if found.
    pub fn routing(self) -> Option<CycleRouting> {
        match self {
            RouteOutcome::Routed(r) => Some(r),
            _ => None,
        }
    }

    /// True iff a routing was found.
    pub fn is_routed(&self) -> bool {
        matches!(self, RouteOutcome::Routed(_))
    }
}

/// Default step budget: ample for every cycle arising in the workspace
/// (k ≤ 6 requests on graphs with a few thousand edges).
pub const DEFAULT_BUDGET: u64 = 5_000_000;

/// Searches for an edge-disjoint routing of `cycle` on `g`, each path at
/// most `dist(endpoints) + slack` hops long.
///
/// Requests are routed hardest-first (longest shortest-path distance),
/// which empirically shrinks backtracking by an order of magnitude on
/// grid/torus instances.
///
/// # Panics
/// Panics if the cycle has fewer than 3 vertices or a vertex outside `g`.
pub fn route_cycle(g: &Graph, cycle: &CycleSubgraph, slack: u32, budget: u64) -> RouteOutcome {
    let verts = cycle.vertices();
    let k = verts.len();
    assert!(k >= 3, "a covering cycle needs at least 3 vertices");
    assert!(
        verts.iter().all(|&v| (v as usize) < g.vertex_count()),
        "cycle vertex out of range"
    );

    // Requests in cycle order, then a hardest-first routing order.
    let requests: Vec<(Vertex, Vertex)> = (0..k).map(|i| (verts[i], verts[(i + 1) % k])).collect();

    // BFS distance fields from each request *target* (for goal-directed
    // pruning: a partial path of length L at vertex w can only finish
    // within bound B if L + dist[w] ≤ B; distances on the full graph are
    // admissible because deleting used edges never shortens paths).
    let dist_to: Vec<Vec<usize>> = requests
        .iter()
        .map(|&(_, t)| bfs_distances(g, t))
        .collect();

    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(dist_to[i][requests[i].0 as usize]));

    // Infeasible fast path: some request disconnected.
    if order
        .iter()
        .any(|&i| dist_to[i][requests[i].0 as usize] == usize::MAX)
    {
        return RouteOutcome::Infeasible;
    }

    let bounds: Vec<usize> = (0..k)
        .map(|i| dist_to[i][requests[i].0 as usize] + slack as usize)
        .collect();

    let mut st = Search {
        g,
        requests: &requests,
        dist_to: &dist_to,
        bounds: &bounds,
        order: &order,
        used_edge: vec![false; g.edge_count()],
        on_path: vec![false; g.vertex_count()],
        paths: vec![None; k],
        steps: budget,
        exhausted: false,
    };
    if st.place(0) {
        let paths = st
            .paths
            .into_iter()
            .map(|p| p.expect("all requests routed"))
            .collect();
        RouteOutcome::Routed(CycleRouting { paths })
    } else if st.exhausted {
        RouteOutcome::BudgetExhausted
    } else {
        RouteOutcome::Infeasible
    }
}

/// Convenience wrapper: is the cycle DRC-routable within `slack`?
pub fn is_drc_routable(g: &Graph, cycle: &CycleSubgraph, slack: u32) -> bool {
    route_cycle(g, cycle, slack, DEFAULT_BUDGET).is_routed()
}

struct Search<'a> {
    g: &'a Graph,
    requests: &'a [(Vertex, Vertex)],
    dist_to: &'a [Vec<usize>],
    bounds: &'a [usize],
    order: &'a [usize],
    used_edge: Vec<bool>,
    on_path: Vec<bool>,
    paths: Vec<Option<RoutedPath>>,
    steps: u64,
    exhausted: bool,
}

impl Search<'_> {
    /// Routes the `pos`-th request in `order`; true on full success.
    fn place(&mut self, pos: usize) -> bool {
        if pos == self.order.len() {
            return true;
        }
        let req = self.order[pos];
        let (s, _) = self.requests[req];
        let mut vseq = vec![s];
        let mut eseq = Vec::new();
        self.on_path[s as usize] = true;
        let ok = self.extend(pos, req, s, &mut vseq, &mut eseq);
        self.on_path[s as usize] = false;
        ok
    }

    /// Grows the current path for request `req` from vertex `cur`.
    fn extend(
        &mut self,
        pos: usize,
        req: usize,
        cur: Vertex,
        vseq: &mut Vec<Vertex>,
        eseq: &mut Vec<u32>,
    ) -> bool {
        if self.steps == 0 {
            self.exhausted = true;
            return false;
        }
        self.steps -= 1;

        let (_, t) = self.requests[req];
        if cur == t {
            self.paths[req] = Some(RoutedPath {
                vertices: vseq.clone(),
                edges: eseq.clone(),
            });
            // Commit: only this path's *edges* stay reserved — later
            // requests may pass through its vertices (the DRC is
            // edge-disjointness). Release the vertex marks, restore them
            // on backtrack so the unwinding pops stay consistent.
            for &v in vseq.iter() {
                self.on_path[v as usize] = false;
            }
            if self.place(pos + 1) {
                return true;
            }
            for &v in vseq.iter() {
                self.on_path[v as usize] = true;
            }
            self.paths[req] = None;
            return false;
        }
        if eseq.len() >= self.bounds[req] {
            return false;
        }
        let remaining = self.bounds[req] - eseq.len();
        // Snapshot incident edges to keep the borrow checker out of the
        // recursion; degree is tiny (≤ 4 on grids/tori, ≤ n−1 elsewhere).
        let cand: Vec<(u32, Vertex)> = self.g.incident_edges(cur).collect();
        for (ei, w) in cand {
            if self.used_edge[ei as usize] || self.on_path[w as usize] {
                continue;
            }
            let d = self.dist_to[req][w as usize];
            if d == usize::MAX || d + 1 > remaining {
                continue;
            }
            self.used_edge[ei as usize] = true;
            self.on_path[w as usize] = true;
            vseq.push(w);
            eseq.push(ei);
            if self.extend(pos, req, w, vseq, eseq) {
                return true;
            }
            vseq.pop();
            eseq.pop();
            self.on_path[w as usize] = false;
            self.used_edge[ei as usize] = false;
            if self.exhausted {
                return false;
            }
        }
        false
    }
}

/// Reorders (and if needed reverses) a routing's paths to match the
/// cycle's *canonical* vertex order, pairing paths to cycle edges by
/// endpoints.
///
/// [`CycleSubgraph::new`] canonicalizes the cyclic order (rotation +
/// possible reflection), so paths built in construction order need not
/// line up index-by-index with `cycle.vertices()`. The pairing is
/// unambiguous — a simple cycle has pairwise distinct edges. Returns
/// `None` if some cycle edge has no matching path.
pub fn align_routing(cycle: &CycleSubgraph, routing: CycleRouting) -> Option<CycleRouting> {
    let verts = cycle.vertices();
    let k = verts.len();
    if routing.paths.len() != k {
        return None;
    }
    let mut pool: Vec<Option<RoutedPath>> = routing.paths.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let (from, to) = (verts[i], verts[(i + 1) % k]);
        let pos = pool.iter().position(|slot| {
            slot.as_ref().is_some_and(|p| {
                let (a, b) = p.endpoints();
                (a, b) == (from, to) || (a, b) == (to, from)
            })
        })?;
        let mut p = pool[pos].take().expect("position() found it");
        if p.endpoints() != (from, to) {
            p.vertices.reverse();
            p.edges.reverse();
        }
        out.push(p);
    }
    Some(CycleRouting { paths: out })
}

/// Verifies a claimed routing: correct endpoints in cycle order, real
/// edges, simple paths, pairwise edge-disjoint. Used by the covering
/// validator and by tests as an independent check on the router.
pub fn verify_routing(g: &Graph, cycle: &CycleSubgraph, routing: &CycleRouting) -> bool {
    let verts = cycle.vertices();
    let k = verts.len();
    if routing.paths.len() != k {
        return false;
    }
    let mut used = vec![false; g.edge_count()];
    for (i, p) in routing.paths.iter().enumerate() {
        let (from, to) = (verts[i], verts[(i + 1) % k]);
        if p.vertices.first() != Some(&from) || p.vertices.last() != Some(&to) {
            return false;
        }
        if p.edges.len() + 1 != p.vertices.len() || p.edges.is_empty() {
            return false;
        }
        // Simple path: no repeated vertex.
        let mut seen = p.vertices.clone();
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return false;
        }
        for (hop, &ei) in p.edges.iter().enumerate() {
            if ei as usize >= g.edge_count() {
                return false;
            }
            let e = g.edge(ei);
            let (a, b) = (p.vertices[hop], p.vertices[hop + 1]);
            if !(e.is_incident(a) && e.is_incident(b) && a != b) {
                return false;
            }
            if used[ei as usize] {
                return false;
            }
            used[ei as usize] = true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_graph::builders;

    /// The ring oracle and the graph oracle must agree on C_n.
    #[test]
    fn agrees_with_ring_oracle_on_cycles() {
        use cyclecover_ring::{routing as ring_routing, Ring};
        for n in [5u32, 6, 8] {
            let g = builders::cycle(n as usize);
            let ring = Ring::new(n);
            // All 3-subsets in both cyclic orders, and some quads.
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        let cyc = CycleSubgraph::new(vec![a, b, c]);
                        let ring_ok = ring_routing::is_drc_routable(ring, &cyc);
                        let graph_ok = is_drc_routable(&g, &cyc, n);
                        assert_eq!(ring_ok, graph_ok, "n={n} triangle {a},{b},{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn paper_k4_example_on_c4() {
        let g = builders::cycle(4);
        // Winding quad routes; crossed quad does not (paper's example).
        assert!(is_drc_routable(&g, &CycleSubgraph::new(vec![0, 1, 2, 3]), 4));
        assert!(!is_drc_routable(&g, &CycleSubgraph::new(vec![0, 2, 3, 1]), 4));
    }

    #[test]
    fn routing_is_verified_and_loads_add_up() {
        let g = builders::cycle(7);
        let cyc = CycleSubgraph::new(vec![0, 2, 5]);
        let routing = route_cycle(&g, &cyc, 7, DEFAULT_BUDGET)
            .routing()
            .expect("winding triangle routes");
        assert!(verify_routing(&g, &cyc, &routing));
        // On a ring, a winding tile's paths tile all n edges.
        assert_eq!(routing.total_load(), 7);
    }

    #[test]
    fn protection_walk_closes_the_cycle() {
        let g = builders::cycle(6);
        let cyc = CycleSubgraph::new(vec![0, 2, 4]);
        let routing = route_cycle(&g, &cyc, 6, DEFAULT_BUDGET).routing().unwrap();
        for i in 0..3 {
            let walk = routing.protection_walk(i);
            let (from, to) = routing.paths[i].endpoints();
            assert_eq!(*walk.first().unwrap(), to, "detour starts at the request's far end");
            assert_eq!(*walk.last().unwrap(), from);
            // The detour uses none of the failed path's edges (paths are
            // edge-disjoint, so the detour avoids the whole failed path).
            for w in walk.windows(2) {
                for hop in routing.paths[i].vertices.windows(2) {
                    assert!(
                        (w[0] != hop[0] || w[1] != hop[1]) && (w[0] != hop[1] || w[1] != hop[0]),
                        "detour reuses failed hop {hop:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_topology_is_infeasible() {
        // The path-topology theorem, now on the general oracle.
        let g = builders::path(6);
        for cyc in [
            CycleSubgraph::new(vec![0, 2, 4]),
            CycleSubgraph::new(vec![1, 3, 5]),
            CycleSubgraph::new(vec![0, 1, 2, 3]),
        ] {
            match route_cycle(&g, &cyc, 6, DEFAULT_BUDGET) {
                RouteOutcome::Infeasible => {}
                other => panic!("cycle {cyc:?} on a path: expected Infeasible, got {other:?}"),
            }
        }
    }

    #[test]
    fn complete_graph_routes_directly() {
        let g = builders::complete(8);
        let cyc = CycleSubgraph::new(vec![0, 3, 5, 7]);
        let routing = route_cycle(&g, &cyc, 0, DEFAULT_BUDGET).routing().unwrap();
        // slack 0 on K_n forces the direct edges.
        assert_eq!(routing.total_load(), 4);
        assert!(verify_routing(&g, &cyc, &routing));
    }

    #[test]
    fn slack_zero_can_be_infeasible_where_slack_helps() {
        // On C_6, triangle {0,1,2}: requests (0,1),(1,2),(2,0); shortest
        // paths for (2,0) has length 2 both ways? dist(2,0)=2. With slack 0
        // the bound is tight; the winding routing uses the long arc for
        // (2,0): length 4 > 2+0 → infeasible at slack 0, feasible at 2.
        let g = builders::cycle(6);
        let cyc = CycleSubgraph::new(vec![0, 1, 2]);
        assert!(!is_drc_routable(&g, &cyc, 0));
        assert!(is_drc_routable(&g, &cyc, 2));
    }

    #[test]
    fn disconnected_request_is_infeasible() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        let cyc = CycleSubgraph::new(vec![0, 1, 3]);
        assert!(matches!(
            route_cycle(&g, &cyc, 6, DEFAULT_BUDGET),
            RouteOutcome::Infeasible
        ));
    }

    #[test]
    fn tiny_budget_reports_exhaustion() {
        let g = builders::complete(10);
        let cyc = CycleSubgraph::new(vec![0, 4, 8, 2, 6]);
        match route_cycle(&g, &cyc, 9, 3) {
            RouteOutcome::BudgetExhausted | RouteOutcome::Routed(_) => {}
            RouteOutcome::Infeasible => panic!("must not claim infeasibility with 3 steps"),
        }
    }

    #[test]
    fn multigraph_parallel_edges_route_separately() {
        // Two vertices joined by 3 parallel edges + a third vertex:
        // triangle (0,1,2) where (0,1) uses one copy... build a multigraph
        // square: 0-1 (x2), 1-2, 2-0: cycle (0,1,2) routes (0→1 copy A,
        // 1→2, 2→0) fine; cycle (0,1,0) is not simple — instead check a
        // "digon-ish" case: requests (0,1) and (1,0) inside a triangle
        // cycle need two parallel copies.
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let cyc = CycleSubgraph::new(vec![0, 1, 2]);
        let r = route_cycle(&g, &cyc, 3, DEFAULT_BUDGET).routing().unwrap();
        assert!(verify_routing(&g, &cyc, &r));
    }
}
