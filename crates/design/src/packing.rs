//! Triangle *packings* of `K_n` — the dual of covering.
//!
//! The paper's reference \[7\] is titled "Packings and coverings by
//! triples"; design theory treats the two together. A packing is a set
//! of edge-*disjoint* triangles; the maximum packing number `D(n)`
//! complements the covering number `C(n,3,2)` (they coincide at STS
//! orders, where a decomposition is both). The DRC experiments use
//! packings to quantify how much of a covering is "pure" (overlap-free
//! capacity) versus overlap.
//!
//! `D(n) = ⌊n/3 · ⌊(n−1)/2⌋⌋ − ε`, with `ε = 1` iff `n ≡ 5 (mod 6)`
//! (Schönheim–Hanani). [`max_triangle_packing`] constructs a packing of
//! exactly `D(n)` for *every* `n ≥ 3`:
//!
//! * `n ≡ 1, 3 (mod 6)` — the STS itself (leave ∅);
//! * `n ≡ 0, 2 (mod 6)` — delete one vertex from `STS(n+1)` (leave: a
//!   perfect matching);
//! * `n ≡ 4 (mod 6)` — a maximum packing leaves a *tripole* (a
//!   3-star plus a perfect matching on the rest — the unique minimum
//!   all-odd-degree leave with `|E| ≡ 0 (mod 3)` removed); we fix that
//!   leave and find an exact triangle decomposition of `K_n − leave`
//!   with the Dancing-Links engine of `cyclecover-solver`;
//! * `n ≡ 5 (mod 6)` — dually, the leave is a 4-cycle.
//!
//! The DLX step *constructs and certifies* in one stroke: a returned
//! decomposition is machine-checked exact, so the packing provably
//! meets `D(n)`.

use crate::{bose_steiner_triple_system, cyclic_steiner_triple_system};
use cyclecover_graph::{Edge, EdgeMultiset, Vertex};
use cyclecover_solver::dlx::ExactCover;

/// The maximum number of pairwise edge-disjoint triangles in `K_n`
/// (Schönheim–Hanani): `⌊n/3 ⌊(n−1)/2⌋⌋`, minus 1 when `n ≡ 5 (mod 6)`.
pub fn triangle_packing_number(n: u64) -> u64 {
    assert!(n >= 3);
    let b = (n * ((n - 1) / 2)) / 3;
    if n % 6 == 5 {
        b - 1
    } else {
        b
    }
}

/// Builds a maximum triangle packing of `K_n` (size exactly
/// [`triangle_packing_number`]`(n)`); see the module docs for the
/// per-residue construction.
///
/// # Panics
/// Panics if `n < 3`.
pub fn max_triangle_packing(n: usize) -> Vec<[Vertex; 3]> {
    assert!(n >= 3);
    let mut packing = max_triangle_packing_raw(n);
    for t in &mut packing {
        t.sort_unstable();
    }
    packing
}

fn max_triangle_packing_raw(n: usize) -> Vec<[Vertex; 3]> {
    match n % 6 {
        3 => bose_steiner_triple_system(n),
        1 if n >= 7 => cyclic_steiner_triple_system(n),
        0 | 2 => {
            // STS(n+1) minus the vertex n: keep the triples avoiding it.
            let sts = match (n + 1) % 6 {
                3 => bose_steiner_triple_system(n + 1),
                _ => cyclic_steiner_triple_system(n + 1),
            };
            sts.into_iter()
                .filter(|t| t.iter().all(|&v| (v as usize) < n))
                .collect()
        }
        4 => {
            // Leave: 3-star at 0 plus a perfect matching on 4..n.
            let mut leave = vec![(0, 1), (0, 2), (0, 3)];
            leave.extend((2..n as Vertex / 2).map(|i| (2 * i, 2 * i + 1)));
            decompose_minus_leave(n, &leave)
        }
        5 => {
            if n == 5 {
                return vec![[0, 2, 4], [1, 3, 4]];
            }
            // Leave: the 4-cycle (0, 1, 2, 3).
            decompose_minus_leave(n, &[(0, 1), (1, 2), (2, 3), (0, 3)])
        }
        _ => unreachable!("all residues handled"),
    }
}

/// Exact triangle decomposition of `K_n` minus the given leave, via
/// Dancing Links. The leave is chosen so that a decomposition exists
/// (all degrees even, edge count divisible by 3 — the classical maximum
/// packing leaves); the solver's success *is* the certificate.
fn decompose_minus_leave(n: usize, leave: &[(Vertex, Vertex)]) -> Vec<[Vertex; 3]> {
    let pairs = n * (n - 1) / 2;
    let mut is_leave = vec![false; pairs];
    for &(a, b) in leave {
        is_leave[Edge::new(a, b).dense_index(n)] = true;
    }
    // Dense column ids for the edges to decompose.
    let mut col_of = vec![usize::MAX; pairs];
    let mut ncols = 0usize;
    for i in 0..pairs {
        if !is_leave[i] {
            col_of[i] = ncols;
            ncols += 1;
        }
    }
    let mut ec = ExactCover::new(ncols);
    let mut rows: Vec<[Vertex; 3]> = Vec::new();
    for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            if is_leave[Edge::new(u, v).dense_index(n)] {
                continue;
            }
            for w in (v + 1)..n as Vertex {
                if is_leave[Edge::new(u, w).dense_index(n)]
                    || is_leave[Edge::new(v, w).dense_index(n)]
                {
                    continue;
                }
                ec.add_row(&[
                    col_of[Edge::new(u, v).dense_index(n)],
                    col_of[Edge::new(u, w).dense_index(n)],
                    col_of[Edge::new(v, w).dense_index(n)],
                ]);
                rows.push([u, v, w]);
            }
        }
    }
    let sel = ec
        .solve_first()
        .expect("classical maximum-packing leaves always admit a decomposition");
    sel.into_iter().map(|r| rows[r as usize]).collect()
}

/// Checks pairwise edge-disjointness of a triangle set.
pub fn is_edge_disjoint(n: usize, triangles: &[[Vertex; 3]]) -> bool {
    let mut cov = EdgeMultiset::new(n);
    for t in triangles {
        for (a, b) in [(t[0], t[1]), (t[0], t[2]), (t[1], t[2])] {
            if cov.count(Edge::new(a, b)) > 0 {
                return false;
            }
            cov.insert(Edge::new(a, b));
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_small_values() {
        // Known values: D(3)=1, D(4)=1, D(5)=2, D(6)=4, D(7)=7, D(9)=12,
        // D(11)=17 (n ≡ 5 mod 6), D(13)=26.
        let expect = [(3, 1), (4, 1), (5, 2), (6, 4), (7, 7), (9, 12), (11, 17), (13, 26)];
        for (n, d) in expect {
            assert_eq!(triangle_packing_number(n), d, "D({n})");
        }
    }

    #[test]
    fn every_order_meets_the_formula() {
        for n in 3usize..=23 {
            let packing = max_triangle_packing(n);
            assert!(is_edge_disjoint(n, &packing), "n={n}: overlap");
            assert!(
                packing
                    .iter()
                    .all(|t| t[0] < t[1] && t[1] < t[2] && (t[2] as usize) < n),
                "n={n}: malformed triangle"
            );
            assert_eq!(
                packing.len() as u64,
                triangle_packing_number(n as u64),
                "n={n}: packing not maximum"
            );
        }
    }

    #[test]
    fn sts_orders_are_decompositions() {
        for n in [7usize, 9, 13, 15] {
            let packing = max_triangle_packing(n);
            assert_eq!(packing.len(), n * (n - 1) / 6, "n={n}");
        }
    }

    #[test]
    fn disjointness_checker_detects_overlap() {
        assert!(!is_edge_disjoint(5, &[[0, 1, 2], [0, 1, 3]]));
        assert!(is_edge_disjoint(6, &[[0, 1, 2], [3, 4, 5]]));
    }

    #[test]
    fn deleted_vertex_leave_is_a_perfect_matching() {
        // n ≡ 0, 2 (mod 6): the leave of the delete-one-vertex packing is
        // a perfect matching (n/2 edges, every vertex degree 1).
        for n in [6usize, 8, 12, 14] {
            let packing = max_triangle_packing(n);
            let mut cov = EdgeMultiset::new(n);
            for t in &packing {
                for (a, b) in [(t[0], t[1]), (t[0], t[2]), (t[1], t[2])] {
                    cov.insert(Edge::new(a, b));
                }
            }
            let leave: Vec<_> = cov.undercovered(1);
            assert_eq!(leave.len(), n / 2, "n={n}");
            let mut deg = vec![0; n];
            for (e, _) in leave {
                deg[e.u() as usize] += 1;
                deg[e.v() as usize] += 1;
            }
            assert!(deg.iter().all(|&d| d == 1), "n={n}: leave not a matching");
        }
    }

    #[test]
    fn residue_4_leave_is_the_tripole() {
        for n in [10usize, 16] {
            let packing = max_triangle_packing(n);
            let mut cov = EdgeMultiset::new(n);
            for t in &packing {
                for (a, b) in [(t[0], t[1]), (t[0], t[2]), (t[1], t[2])] {
                    cov.insert(Edge::new(a, b));
                }
            }
            let leave = cov.undercovered(1);
            assert_eq!(leave.len(), 3 + (n - 4) / 2, "n={n}");
        }
    }
}
