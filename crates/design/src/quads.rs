//! 4-cycle coverings of `K_n` — the paper's reference \[2\].
//!
//! "The covering by `C_k`, `k > 3`, has been considered in \[2\], where in
//! particular, the minimum number of 4-cycles required to cover `K_n` is
//! determined" (Bermond's thèse d'État, 1975). This module rebuilds the
//! executable substance of that reference:
//!
//! * [`four_cycle_decomposition`] — an exact `C4`-decomposition of
//!   `K_n` for `n ≡ 1 (mod 8)` (the classical rotational construction;
//!   a decomposition exists *only* for this residue), of size
//!   `n(n−1)/8`;
//! * [`greedy_four_cycle_cover`] — a verified covering for every
//!   `n ≥ 4` (optimal at decomposition orders);
//! * [`four_cycle_cover_lower_bound`] — the capacity bound
//!   `⌈n(n−1)/8⌉` (each quad has 4 edges);
//! * [`verify_quad_cover`] — validation.
//!
//! Like triangles, *some* 4-cycles are DRC-routable on the ring (the
//! winding ones) and some are not — which is exactly the distinction the
//! paper's worked `K_4/C_4` example makes. The DRC-aware experiments
//! (E5) repair these classical objects into routable ones and measure
//! the cost of the constraint.

use cyclecover_graph::{Edge, EdgeMultiset, Vertex};

/// A 4-cycle as an ordered vertex quadruple `(a, b, c, d)` — edges
/// `{a,b}, {b,c}, {c,d}, {d,a}`.
pub type Quad = [Vertex; 4];

/// The capacity lower bound on 4-cycle coverings of `K_n`:
/// `⌈n(n−1)/8⌉` (a quad covers 4 of the `n(n−1)/2` edges).
pub fn four_cycle_cover_lower_bound(n: u64) -> u64 {
    assert!(n >= 4);
    (n * (n - 1) / 2).div_ceil(4)
}

/// An exact `C4`-decomposition of `K_n` for `n ≡ 1 (mod 8)`: every edge
/// in exactly one quad; `n(n−1)/8` quads — meeting
/// [`four_cycle_cover_lower_bound`] with equality.
///
/// Rotational construction over `Z_n` with `n = 8k+1`: the difference
/// classes `1..=4k` are partitioned into `k` quadruples
/// `(i, 4k+1−i, k+i, 3k+1−i)`, each with equal pair-sums
/// `s = 4k+1`; the base cycle `(0, i, s, 3k+1−i)` has exactly those four
/// edge differences, so developing it through all `n` rotations covers
/// each of the four classes exactly once.
///
/// # Panics
/// Panics if `n % 8 != 1` or `n < 9`.
pub fn four_cycle_decomposition(n: usize) -> Vec<Quad> {
    assert!(
        n >= 9 && n % 8 == 1,
        "C4 decomposition of K_n needs n ≡ 1 (mod 8), got {n}"
    );
    let k = n / 8;
    let nn = n as u32;
    let s = (4 * k + 1) as u32;
    let mut quads = Vec::with_capacity(k * n);
    for i in 1..=k as u32 {
        let base = [0u32, i, s, (3 * k as u32 + 1) - i];
        for r in 0..nn {
            quads.push([
                (base[0] + r) % nn,
                (base[1] + r) % nn,
                (base[2] + r) % nn,
                (base[3] + r) % nn,
            ]);
        }
    }
    quads
}

/// Greedy 4-cycle covering of `K_n` (`n ≥ 4`): scan edges
/// lexicographically; close each uncovered edge `{u, v}` into the quad
/// `(u, v, w, x)` absorbing the most other uncovered edges.
pub fn greedy_four_cycle_cover(n: usize) -> Vec<Quad> {
    assert!(n >= 4, "need n >= 4 for 4-cycles, got {n}");
    let mut cov = EdgeMultiset::new(n);
    let mut quads = Vec::new();
    let fresh = |cov: &EdgeMultiset, a: Vertex, b: Vertex| u32::from(cov.count(Edge::new(a, b)) == 0);
    for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            if cov.count(Edge::new(u, v)) > 0 {
                continue;
            }
            // Quad (u, v, w, x): edges {u,v},{v,w},{w,x},{x,u}.
            let mut best: Option<(Vertex, Vertex)> = None;
            let mut best_gain = 0u32;
            for w in 0..n as Vertex {
                if w == u || w == v {
                    continue;
                }
                for x in 0..n as Vertex {
                    if x == u || x == v || x == w {
                        continue;
                    }
                    let gain = fresh(&cov, v, w) + fresh(&cov, w, x) + fresh(&cov, x, u);
                    if best.is_none() || gain > best_gain {
                        best = Some((w, x));
                        best_gain = gain;
                    }
                }
            }
            let (w, x) = best.expect("n >= 4 guarantees a quad");
            for e in [(u, v), (v, w), (w, x), (x, u)] {
                cov.insert(Edge::new(e.0, e.1));
            }
            quads.push([u, v, w, x]);
        }
    }
    quads
}

/// Validates that `quads` covers every edge of `K_n` at least `lambda`
/// times (and that each quad is a genuine 4-cycle: distinct vertices);
/// returns the coverage multiset for inspection.
pub fn verify_quad_cover(n: usize, quads: &[Quad], lambda: u32) -> Option<EdgeMultiset> {
    let mut cov = EdgeMultiset::new(n);
    for q in quads {
        let mut sorted = *q;
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        for i in 0..4 {
            cov.insert(Edge::new(q[i], q[(i + 1) % 4]));
        }
    }
    if cov.covers_complete(lambda) {
        Some(cov)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_is_exact_for_all_small_orders() {
        for n in [9usize, 17, 25, 33, 41] {
            let quads = four_cycle_decomposition(n);
            assert_eq!(quads.len() as u64, (n as u64) * (n as u64 - 1) / 8, "n={n}");
            let cov = verify_quad_cover(n, &quads, 1).unwrap_or_else(|| panic!("n={n} invalid"));
            assert!(cov.is_exact(1), "n={n}: not a decomposition");
            assert_eq!(
                quads.len() as u64,
                four_cycle_cover_lower_bound(n as u64),
                "n={n}: decomposition must meet the capacity bound"
            );
        }
    }

    #[test]
    #[should_panic(expected = "n ≡ 1 (mod 8)")]
    fn decomposition_rejects_bad_residue() {
        four_cycle_decomposition(12);
    }

    #[test]
    fn greedy_covers_every_order() {
        for n in 4usize..=20 {
            let quads = greedy_four_cycle_cover(n);
            assert!(
                verify_quad_cover(n, &quads, 1).is_some(),
                "n={n}: greedy cover invalid"
            );
            let lb = four_cycle_cover_lower_bound(n as u64);
            assert!(quads.len() as u64 >= lb, "n={n}");
            assert!(
                quads.len() as u64 <= 2 * lb + 2,
                "n={n}: greedy used {} vs LB {lb}",
                quads.len()
            );
        }
    }

    #[test]
    fn greedy_matches_decomposition_size_at_sts_orders() {
        // At n ≡ 1 (mod 8) the optimum is the capacity bound; greedy
        // should stay within ~25% of it.
        let n = 17usize;
        let greedy = greedy_four_cycle_cover(n).len() as f64;
        let opt = four_cycle_cover_lower_bound(n as u64) as f64;
        assert!(greedy <= 1.4 * opt, "greedy {greedy} vs opt {opt}");
    }

    #[test]
    fn verify_rejects_degenerate_quads() {
        assert!(verify_quad_cover(5, &[[0, 1, 0, 2]], 1).is_none());
    }

    #[test]
    fn lambda_fold_verification() {
        // Doubling a decomposition gives an exact 2-fold covering.
        let mut quads = four_cycle_decomposition(9);
        quads.extend(four_cycle_decomposition(9));
        let cov = verify_quad_cover(9, &quads, 2).expect("2-fold");
        assert!(cov.is_exact(2));
    }
}
