//! # cyclecover-design
//!
//! Classical covering-design substrate — the literature the paper builds
//! on (its references \[2\] Bermond, \[6\] Mills–Mullin, \[7\] Stanton–Rogers):
//! coverings of `K_n` by small cycles *without* the routing constraint.
//!
//! Why this matters for the reproduction: a triangle is DRC-routable on
//! *any* ring (three points on a circle are always in circular order), so
//! every triangle covering of `K_n` is automatically a DRC covering — the
//! pre-existing design-theory machinery is the natural baseline the
//! paper's mixed C3/C4 constructions are measured against in experiment
//! E5. The minimum triangle covering has
//! `C(n,3,2) = ⌈n/3 · ⌈(n−1)/2⌉⌉` triangles (Mills–Mullin / Stanton–Rogers,
//! with the single exception `n = 5` needing one more), about `n²/6`
//! versus the paper's `ρ(n) ≈ n²/8` — the DRC-aware mix wins by ~4/3.
//!
//! Provided here:
//! * [`triangle_covering_number`] — the exact `C(n,3,2)` formula;
//! * [`bose_steiner_triple_system`] — Bose's classical construction of a
//!   Steiner triple system (an exact triangle *decomposition*) for
//!   `n ≡ 3 (mod 6)`;
//! * [`greedy_triangle_cover`] — a constructive covering for every `n ≥ 3`
//!   (optimal when an STS exists and we are in its residue class; within a
//!   small factor otherwise);
//! * λ-fold Schönheim bounds ([`schonheim_bound`]).
//!
//! ```
//! use cyclecover_design::{bose_steiner_triple_system, triangle_covering_number,
//!                         verify_triple_cover};
//!
//! let sts = bose_steiner_triple_system(9);
//! assert_eq!(sts.len() as u64, triangle_covering_number(9));   // STS is optimal
//! assert!(verify_triple_cover(9, &sts, 1).unwrap().is_exact(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packing;
pub mod quads;

use cyclecover_graph::{Edge, EdgeMultiset, Vertex};

/// The minimum number of triangles needed to cover all edges of `K_n`
/// (`n ≥ 3`): `⌈n/3 · ⌈(n−1)/2⌉⌉`, except `C(5,3,2) = 4`.
///
/// References [6, 7] of the paper.
pub fn triangle_covering_number(n: u64) -> u64 {
    assert!(n >= 3);
    if n == 5 {
        return 4;
    }
    // ⌈ n * ⌈(n−1)/2⌉ / 3 ⌉
    (n * (n - 1).div_ceil(2)).div_ceil(3)
}

/// The Schönheim lower bound for λ-fold triple coverings
/// `C_λ(n, 3, 2) ≥ ⌈n/3 · ⌈λ(n−1)/2⌉⌉`.
pub fn schonheim_bound(n: u64, lambda: u64) -> u64 {
    assert!(n >= 3 && lambda >= 1);
    (n * (lambda * (n - 1)).div_ceil(2)).div_ceil(3)
}

/// Bose's construction of a Steiner triple system of order `n ≡ 3 (mod 6)`:
/// a set of `n(n−1)/6` triangles covering every edge of `K_n` exactly once.
///
/// Vertices are `(i, k) ∈ Z_t × Z_3` encoded as `3i + k`, where `t = n/3`
/// (odd). Triples:
/// * `{(i,0), (i,1), (i,2)}` for each `i`;
/// * `{(i,k), (j,k), (⌈(i+j)/2⌉ mod t, k+1)}` for `i < j`, each `k`,
///   where the "half" uses the unique solution of `2x ≡ i+j (mod t)`.
///
/// # Panics
/// Panics if `n % 6 != 3`.
pub fn bose_steiner_triple_system(n: usize) -> Vec<[Vertex; 3]> {
    assert!(n >= 3 && n % 6 == 3, "Bose construction needs n ≡ 3 (mod 6), got {n}");
    let t = n / 3; // odd
    let half = |x: usize| -> usize {
        // unique solution of 2y ≡ x (mod t), t odd
        if x.is_multiple_of(2) {
            x / 2
        } else {
            (x + t) / 2
        }
    };
    let enc = |i: usize, k: usize| -> Vertex { (3 * i + k) as Vertex };
    let mut triples = Vec::with_capacity(n * (n - 1) / 6);
    for i in 0..t {
        triples.push([enc(i, 0), enc(i, 1), enc(i, 2)]);
    }
    for i in 0..t {
        for j in (i + 1)..t {
            let m = half((i + j) % t);
            for k in 0..3 {
                triples.push([enc(i, k), enc(j, k), enc(m, (k + 1) % 3)]);
            }
        }
    }
    triples
}


/// Solves Heffter's difference problem for order `t` by backtracking:
/// partition `{1, …, 3t}` into `t` triples `(a, b, c)` with `a + b = c` or
/// `a + b + c = 6t + 1`. A solution yields a *cyclic* Steiner triple
/// system of order `6t+1` via [`cyclic_steiner_triple_system`].
///
/// Solutions exist for every `t ≥ 1` (Peltesohn 1939); the search is
/// instantaneous for the orders a covering library meets in practice.
pub fn heffter_difference_triples(t: usize) -> Option<Vec<[u32; 3]>> {
    let m = 3 * t;
    let v = 6 * t + 1;
    let mut used = vec![false; m + 1];
    let mut triples = Vec::with_capacity(t);
    fn rec(
        used: &mut Vec<bool>,
        triples: &mut Vec<[u32; 3]>,
        m: usize,
        v: usize,
    ) -> bool {
        // first unused difference
        let a = match (1..=m).find(|&x| !used[x]) {
            None => return true,
            Some(a) => a,
        };
        used[a] = true;
        for b in (a + 1)..=m {
            if used[b] {
                continue;
            }
            for c in [a + b, v - a - b] {
                if c > b && c <= m && !used[c] && c != b {
                    used[b] = true;
                    used[c] = true;
                    triples.push([a as u32, b as u32, c as u32]);
                    if rec(used, triples, m, v) {
                        return true;
                    }
                    triples.pop();
                    used[b] = false;
                    used[c] = false;
                }
            }
        }
        used[a] = false;
        false
    }
    if rec(&mut used, &mut triples, m, v) {
        Some(triples)
    } else {
        None
    }
}

/// A *cyclic* Steiner triple system of order `n ≡ 1 (mod 6)`: base blocks
/// `{0, a, a+b}` (one per Heffter difference triple) developed through all
/// `n` rotations. Complements [`bose_steiner_triple_system`] (which covers
/// `n ≡ 3 (mod 6)`), so optimal triangle decompositions are constructible
/// for every admissible STS order.
///
/// # Panics
/// Panics if `n % 6 != 1` or `n < 7`.
pub fn cyclic_steiner_triple_system(n: usize) -> Vec<[Vertex; 3]> {
    assert!(n >= 7 && n % 6 == 1, "cyclic STS needs n ≡ 1 (mod 6), n ≥ 7, got {n}");
    let t = n / 6;
    let triples = heffter_difference_triples(t)
        .expect("Heffter solutions exist for every t (Peltesohn)");
    let mut blocks = Vec::with_capacity(n * t);
    for &[a, b, _c] in &triples {
        for r in 0..n as u32 {
            let x = r;
            let y = (r + a) % n as u32;
            let z = (r + a + b) % n as u32;
            let mut blk = [x, y, z];
            blk.sort_unstable();
            blocks.push(blk);
        }
    }
    blocks
}

/// A greedy triangle covering of `K_n`: scans edges lexicographically and
/// closes each uncovered edge `{u,v}` with the third vertex `w` maximizing
/// the number of other uncovered edges absorbed.
///
/// Always returns a valid covering; for `n ≡ 3 (mod 6)` prefer
/// [`bose_steiner_triple_system`] (exact optimum).
pub fn greedy_triangle_cover(n: usize) -> Vec<[Vertex; 3]> {
    assert!(n >= 3);
    let mut cov = EdgeMultiset::new(n);
    let mut triangles = Vec::new();
    for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            if cov.count(Edge::new(u, v)) > 0 {
                continue;
            }
            // pick w covering most uncovered edges among {u,w}, {v,w}
            let mut best = None;
            let mut best_gain = -1i32;
            for w in 0..n as Vertex {
                if w == u || w == v {
                    continue;
                }
                let gain = i32::from(cov.count(Edge::new(u, w)) == 0)
                    + i32::from(cov.count(Edge::new(v, w)) == 0);
                if gain > best_gain {
                    best_gain = gain;
                    best = Some(w);
                }
            }
            let w = best.expect("n >= 3");
            cov.insert(Edge::new(u, v));
            cov.insert(Edge::new(u, w));
            cov.insert(Edge::new(v, w));
            let mut t = [u, v, w];
            t.sort_unstable();
            triangles.push(t);
        }
    }
    triangles
}

/// Validates that `triples` covers every edge of `K_n` at least `lambda`
/// times; returns the coverage multiset for further inspection.
pub fn verify_triple_cover(n: usize, triples: &[[Vertex; 3]], lambda: u32) -> Option<EdgeMultiset> {
    let mut cov = EdgeMultiset::new(n);
    for t in triples {
        cov.insert(Edge::new(t[0], t[1]));
        cov.insert(Edge::new(t[0], t[2]));
        cov.insert(Edge::new(t[1], t[2]));
    }
    if cov.covers_complete(lambda) {
        Some(cov)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_number_formula() {
        assert_eq!(triangle_covering_number(3), 1);
        assert_eq!(triangle_covering_number(4), 3);
        assert_eq!(triangle_covering_number(5), 4);
        assert_eq!(triangle_covering_number(6), 6);
        assert_eq!(triangle_covering_number(7), 7);
        assert_eq!(triangle_covering_number(9), 12);
        assert_eq!(triangle_covering_number(13), 26);
    }

    #[test]
    fn schonheim_reduces_to_covering_number() {
        for n in [7u64, 9, 13, 15] {
            assert_eq!(schonheim_bound(n, 1), triangle_covering_number(n));
        }
    }

    #[test]
    fn bose_is_exact_decomposition() {
        for n in [9usize, 15, 21, 33, 45] {
            let triples = bose_steiner_triple_system(n);
            assert_eq!(triples.len(), n * (n - 1) / 6, "triple count at n={n}");
            let cov = verify_triple_cover(n, &triples, 1).expect("covers");
            assert!(cov.is_exact(1), "n={n}: STS must cover each edge exactly once");
        }
    }

    #[test]
    #[should_panic(expected = "n ≡ 3 (mod 6)")]
    fn bose_rejects_wrong_residue() {
        let _ = bose_steiner_triple_system(13);
    }


    #[test]
    fn heffter_triples_exist_and_partition() {
        for t in 1usize..=12 {
            let triples = heffter_difference_triples(t).expect("Peltesohn");
            assert_eq!(triples.len(), t);
            let mut seen = vec![false; 3 * t + 1];
            for &[a, b, c] in &triples {
                for d in [a, b, c] {
                    assert!(!seen[d as usize], "t={t}: difference {d} reused");
                    seen[d as usize] = true;
                }
                let v = (6 * t + 1) as u32;
                assert!(a + b == c || a + b + c == v, "t={t}: bad triple");
            }
            assert!(seen[1..].iter().all(|&x| x), "t={t}: not a partition");
        }
    }

    #[test]
    fn cyclic_sts_is_exact_decomposition() {
        for n in [7usize, 13, 19, 25, 31, 37, 43] {
            let blocks = cyclic_steiner_triple_system(n);
            assert_eq!(blocks.len(), n * (n - 1) / 6, "block count at n={n}");
            let cov = verify_triple_cover(n, &blocks, 1).expect("covers");
            assert!(cov.is_exact(1), "n={n}: cyclic STS must be exact");
        }
    }

    #[test]
    #[should_panic(expected = "n ≡ 1 (mod 6)")]
    fn cyclic_sts_rejects_wrong_residue() {
        let _ = cyclic_steiner_triple_system(9);
    }

    #[test]
    fn greedy_always_covers_and_is_close() {
        for n in 3usize..=30 {
            let triples = greedy_triangle_cover(n);
            assert!(verify_triple_cover(n, &triples, 1).is_some(), "n={n}");
            let opt = triangle_covering_number(n as u64);
            assert!(
                (triples.len() as u64) <= opt + opt / 2 + 2,
                "n={n}: greedy {} vs optimal {opt}",
                triples.len()
            );
        }
    }

    /// Greedy matches the exact optimum on STS orders small enough to eyeball.
    #[test]
    fn greedy_matches_bose_count_on_n9() {
        let greedy = greedy_triangle_cover(9);
        assert!(greedy.len() >= 12);
        assert!(greedy.len() <= 14, "greedy on K9 should be near 12, got {}", greedy.len());
    }
}
