//! Failure/repair timelines — automatic protection switching over time.
//!
//! The paper's ref \[9\] (Tillerot et al., OFC'98) is about *automatic
//! protection switching* on a WDM layer; the combinatorics of the note
//! decide *where* spare capacity lives, and this module simulates *how*
//! the network behaves as failures arrive and crews repair them:
//!
//! * a demand is **up** while its working arc is intact, or — after a
//!   protection switch — while its protection arc is intact;
//! * a demand is **down** only while *both* arcs intersect the failed
//!   link set (the covering's single-failure immunity means this needs
//!   two overlapping failures);
//! * every transition of a demand from working to protection (or back,
//!   on repair — revertive switching) is counted as one switch
//!   operation, the maintenance-cost quantity ref \[9\] cares about.
//!
//! [`simulate_timeline`] processes a deterministic event list, so tests
//! and experiments replay exact scenarios; random soak scenarios are
//! generated in the test-suite with a seeded RNG.

use crate::WdmNetwork;
use cyclecover_ring::Ring;

/// A link going down or coming back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The link fails.
    Fail,
    /// The link is repaired.
    Repair,
}

/// One timeline event: at `time`, `edge` changes state.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Event time (arbitrary units, non-decreasing across the list).
    pub time: u64,
    /// What happens.
    pub kind: EventKind,
    /// The ring edge affected.
    pub edge: u32,
}

/// Aggregate outcome of a timeline simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelineReport {
    /// Events processed.
    pub events: usize,
    /// Protection switch operations executed (to protection on failure,
    /// back to working on repair — revertive).
    pub switch_operations: u64,
    /// Σ over demands of time units spent down (both arcs broken).
    pub demand_downtime: u64,
    /// Σ over demands of time units spent running on protection.
    pub time_on_protection: u64,
    /// Maximum number of simultaneously failed links observed.
    pub max_concurrent_failures: usize,
    /// Demand-outage episodes (transitions from up to down).
    pub outage_episodes: u64,
}

/// Runs the event list (must be sorted by time; repairs must match
/// earlier failures) against the network's demand/arc assignment.
///
/// # Panics
/// Panics on unsorted events, out-of-range edges, double-failing an
/// already-failed link, or repairing a healthy one — malformed
/// scenarios are bugs in the caller, not network states.
pub fn simulate_timeline(net: &WdmNetwork, events: &[Event]) -> TimelineReport {
    let ring: Ring = net.ring();
    let n = ring.n() as usize;

    // Demand state: per (subnet, demand): working edge set, protection
    // edge set, represented as bitmask-free Vec<bool> rows (n ≤ a few
    // hundred; clarity over bit-packing here).
    struct Demand {
        working: Vec<bool>,
        protection: Vec<bool>,
        on_protection: bool,
        down: bool,
    }
    let mut demands: Vec<Demand> = Vec::new();
    for s in net.subnetworks() {
        for arc in &s.arcs {
            let mut w = vec![false; n];
            for e in arc.edges(ring) {
                w[e as usize] = true;
            }
            let mut p = vec![false; n];
            for e in arc.complement(ring).edges(ring) {
                p[e as usize] = true;
            }
            demands.push(Demand {
                working: w,
                protection: p,
                on_protection: false,
                down: false,
            });
        }
    }

    let mut failed = vec![false; n];
    let mut failed_count = 0usize;
    let mut report = TimelineReport::default();
    let mut last_time = 0u64;
    let mut down_now = 0u64;
    let mut on_prot_now = 0u64;

    for ev in events {
        assert!(ev.time >= last_time, "events must be time-sorted");
        assert!((ev.edge as usize) < n, "edge {} out of range", ev.edge);
        // Accumulate the interval just ended.
        let dt = ev.time - last_time;
        report.demand_downtime += dt * down_now;
        report.time_on_protection += dt * on_prot_now;
        last_time = ev.time;

        match ev.kind {
            EventKind::Fail => {
                assert!(!failed[ev.edge as usize], "edge {} already failed", ev.edge);
                failed[ev.edge as usize] = true;
                failed_count += 1;
            }
            EventKind::Repair => {
                assert!(failed[ev.edge as usize], "edge {} not failed", ev.edge);
                failed[ev.edge as usize] = false;
                failed_count -= 1;
            }
        }
        report.events += 1;
        report.max_concurrent_failures = report.max_concurrent_failures.max(failed_count);

        // Re-evaluate every demand (n·ρ(n) of them; timelines are short).
        down_now = 0;
        on_prot_now = 0;
        for d in demands.iter_mut() {
            let working_ok = !d.working.iter().zip(&failed) .any(|(&w, &f)| w && f);
            let protection_ok = !d.protection.iter().zip(&failed).any(|(&p, &f)| p && f);
            let (was_on_protection, was_down) = (d.on_protection, d.down);
            // Revertive policy: prefer working whenever it is intact.
            d.on_protection = !working_ok && protection_ok;
            d.down = !working_ok && !protection_ok;
            if d.on_protection != was_on_protection {
                report.switch_operations += 1;
            }
            if d.down && !was_down {
                report.outage_episodes += 1;
            }
            if d.down {
                down_now += 1;
            }
            if d.on_protection {
                on_prot_now += 1;
            }
        }
    }
    report
}

/// Convenience: a fail+repair pair for one edge.
pub fn fail_repair(edge: u32, fail_at: u64, repair_at: u64) -> [Event; 2] {
    assert!(fail_at < repair_at, "repair must follow failure");
    [
        Event {
            time: fail_at,
            kind: EventKind::Fail,
            edge,
        },
        Event {
            time: repair_at,
            kind: EventKind::Repair,
            edge,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_core::construct_optimal;

    fn net(n: u32) -> WdmNetwork {
        WdmNetwork::from_covering(&construct_optimal(n))
    }

    #[test]
    fn single_failure_causes_no_downtime() {
        let net = net(9);
        let events = fail_repair(3, 10, 50);
        let rep = simulate_timeline(&net, &events);
        assert_eq!(rep.demand_downtime, 0, "single failures are survivable");
        // Every subnetwork has exactly one demand over edge 3: switches =
        // subnets on fail + same on repair (revertive).
        assert_eq!(rep.switch_operations, 2 * net.subnetworks().len() as u64);
        assert_eq!(rep.outage_episodes, 0);
        assert_eq!(rep.max_concurrent_failures, 1);
        // Protection carried those demands for the whole 40-unit window.
        assert_eq!(rep.time_on_protection, 40 * net.subnetworks().len() as u64);
    }

    #[test]
    fn sequential_failures_never_overlap_never_hurt() {
        let net = net(10);
        let mut events = Vec::new();
        for e in 0..10u32 {
            events.extend(fail_repair(e, u64::from(e) * 100, u64::from(e) * 100 + 50));
        }
        let rep = simulate_timeline(&net, &events);
        assert_eq!(rep.demand_downtime, 0);
        assert_eq!(rep.max_concurrent_failures, 1);
    }

    #[test]
    fn overlapping_failures_cause_bounded_outages() {
        let net = net(8);
        // Fail edges 0 and 4 simultaneously: each demand whose working
        // and protection arcs are cut goes down for the overlap window.
        let events = vec![
            Event { time: 0, kind: EventKind::Fail, edge: 0 },
            Event { time: 10, kind: EventKind::Fail, edge: 4 },
            Event { time: 30, kind: EventKind::Repair, edge: 0 },
            Event { time: 60, kind: EventKind::Repair, edge: 4 },
        ];
        let rep = simulate_timeline(&net, &events);
        assert!(rep.demand_downtime > 0, "dual failure must hurt someone");
        assert_eq!(rep.max_concurrent_failures, 2);
        assert!(rep.outage_episodes > 0);
        // Every down demand has both arcs cut: downtime happens only in
        // the overlap window [10, 30): per-demand at most 20 units.
        let demand_count = net.demand_count() as u64;
        assert!(rep.demand_downtime <= 20 * demand_count);
    }

    #[test]
    fn revertive_switching_restores_working_path() {
        let net = net(7);
        let events = fail_repair(0, 0, 100);
        let rep = simulate_timeline(&net, &events);
        // After the repair event the interval ends; nobody should be left
        // on protection (validated via switch parity: equal on/off).
        assert_eq!(rep.switch_operations % 2, 0);
    }

    #[test]
    fn random_soak_no_downtime_without_overlap() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let net = net(12);
        let mut rng = StdRng::seed_from_u64(99);
        // Non-overlapping random windows.
        let mut events = Vec::new();
        let mut t = 0u64;
        for _ in 0..50 {
            let e = rng.gen_range(0..12u32);
            let dur = rng.gen_range(1..20u64);
            events.extend(fail_repair(e, t, t + dur));
            t += dur + rng.gen_range(1..10u64);
        }
        let rep = simulate_timeline(&net, &events);
        assert_eq!(rep.demand_downtime, 0);
        assert_eq!(rep.events, 100);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_events_rejected() {
        let net = net(6);
        let events = vec![
            Event { time: 10, kind: EventKind::Fail, edge: 0 },
            Event { time: 5, kind: EventKind::Repair, edge: 0 },
        ];
        simulate_timeline(&net, &events);
    }

    #[test]
    #[should_panic(expected = "already failed")]
    fn double_failure_rejected() {
        let net = net(6);
        let events = vec![
            Event { time: 0, kind: EventKind::Fail, edge: 1 },
            Event { time: 1, kind: EventKind::Fail, edge: 1 },
        ];
        simulate_timeline(&net, &events);
    }
}
