//! # cyclecover-net
//!
//! The WDM optical-network substrate the paper's combinatorics serve: a
//! simulator of a survivable ring network built from a DRC cycle covering.
//!
//! ## Model (paper §1)
//!
//! The physical layer is the ring `C_n` (switches + fiber links). A
//! covering cycle `I_k` becomes a [`Subnetwork`]: it gets a *wavelength
//! pair* — one wavelength for working traffic, one for spare — and an ADM
//! (Add-Drop Multiplexer) at each of its vertices. Working traffic is
//! routed on the cycle's tiling arcs; because the arcs of a winding tile
//! partition the ring, **each ring edge carries exactly one working demand
//! per subnetwork**, i.e. half the capacity of the pair, matching the
//! paper's "on the cycle we use half of the capacity for the demands".
//!
//! ## Protection (paper §1 and ref \[9\])
//!
//! On a single link failure, each subnetwork reroutes its (unique)
//! affected demand "through the remaining part of the cycle using the
//! other half of the capacity": the complement arc on the spare
//! wavelength. [`WdmNetwork::fail_link`] simulates this and
//! [`audit_all_failures`] verifies the claim exhaustively —
//! every demand restored, protection path avoiding the failed link, spare
//! capacity never exceeded.
//!
//! ## Cost model (paper §2)
//!
//! "The cost is a very complex function depending on the size of the ADM
//! in each node, the number of wavelengths … and a cost of regeneration
//! and amplification." [`CostModel`] exposes those three knobs; on a ring
//! minimizing cost at fixed weights reduces to minimizing the number of
//! subnetworks — the paper's objective — while refs \[3,4\] minimize total
//! ADM count instead. Experiment E7 compares coverings under both.
//!
//! ```
//! use cyclecover_core::construct_optimal;
//! use cyclecover_net::{audit_all_failures, WdmNetwork};
//!
//! let net = WdmNetwork::from_covering(&construct_optimal(9));
//! assert_eq!(net.wavelength_count(), 20);         // 10 cycles x (work + spare)
//! assert!(audit_all_failures(&net).fully_survivable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
mod cost;
pub mod dynamics;
mod failure;
mod network;
pub mod report;
pub mod restoration;
pub mod wavelength;

pub use availability::{availability_comparison, AvailabilityComparison, LinkModel};
pub use cost::CostModel;
pub use failure::{
    audit_all_failures, audit_all_node_failures, FailureReport, NodeFailureReport, Reroute,
    SurvivabilityAudit,
};
pub use network::{Subnetwork, WdmNetwork};
pub use restoration::{compare_schemes, RestorationNetwork, SchemeComparison};
