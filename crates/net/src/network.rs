//! The WDM ring network: subnetworks, wavelengths, ADMs, capacity.

use cyclecover_core::DrcCovering;
use cyclecover_graph::Edge;
use cyclecover_ring::{Chord, Ring, RingArc, Tile};

/// One protected subnetwork: a covering cycle with its wavelength pair.
///
/// The subnetwork owns one working and one spare wavelength (the paper:
/// "we will associate a wavelength to each cycle (in fact two: one for the
/// normal traffic and one for the spare one)").
#[derive(Clone, Debug)]
pub struct Subnetwork {
    /// Dense id; also the index of its wavelength pair.
    pub id: u32,
    /// The logical cycle, as a winding tile.
    pub tile: Tile,
    /// Working routing: `arcs[i]` carries `demands[i]`.
    pub arcs: Vec<RingArc>,
    /// The demands (requests) this subnetwork carries.
    pub demands: Vec<Chord>,
}

impl Subnetwork {
    /// ADM count: one Add-Drop Multiplexer per cycle vertex.
    pub fn adm_count(&self) -> usize {
        self.tile.len()
    }

    /// The demand whose working arc uses ring edge `e`, if any.
    ///
    /// Because the arcs of a winding tile partition the ring edges, there
    /// is always exactly one.
    pub fn demand_on_edge(&self, ring: Ring, e: u32) -> Option<(usize, Chord)> {
        self.arcs
            .iter()
            .position(|a| a.covers_edge(ring, e))
            .map(|i| (i, self.demands[i]))
    }
}

/// A survivable WDM ring network assembled from a DRC covering.
pub struct WdmNetwork {
    ring: Ring,
    subnets: Vec<Subnetwork>,
}

impl WdmNetwork {
    /// Builds the network: one subnetwork (wavelength pair) per covering
    /// cycle, working traffic routed on the tiling arcs.
    pub fn from_covering(cover: &DrcCovering) -> Self {
        let ring = cover.ring();
        let subnets = cover
            .tiles()
            .iter()
            .enumerate()
            .map(|(id, tile)| Subnetwork {
                id: id as u32,
                tile: tile.clone(),
                arcs: tile.arcs(ring),
                demands: tile.chords(ring),
            })
            .collect();
        WdmNetwork { ring, subnets }
    }

    /// The physical ring.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// All subnetworks.
    pub fn subnetworks(&self) -> &[Subnetwork] {
        &self.subnets
    }

    /// Number of wavelengths used (2 per subnetwork: working + spare).
    pub fn wavelength_count(&self) -> usize {
        2 * self.subnets.len()
    }

    /// Total ADM count across subnetworks — the objective of the paper's
    /// refs \[3\] (Eilam–Moran–Zaks) and \[4\] (Gerstel–Lin–Sasaki).
    pub fn total_adms(&self) -> usize {
        self.subnets.iter().map(Subnetwork::adm_count).sum()
    }

    /// Number of distinct demands carried (with multiplicity if a request
    /// is covered by several subnetworks).
    pub fn demand_count(&self) -> usize {
        self.subnets.iter().map(|s| s.demands.len()).sum()
    }

    /// Working-capacity load of ring edge `e` in wavelength-units: the
    /// number of subnetworks whose working routing uses `e`. For winding
    /// tiles this is exactly the number of subnetworks (each tiling arc
    /// set covers every ring edge once) — asserted in tests.
    pub fn working_load(&self, e: u32) -> usize {
        self.subnets
            .iter()
            .filter(|s| s.arcs.iter().any(|a| a.covers_edge(self.ring, e)))
            .count()
    }

    /// Wavelengths *in transit* at a vertex `v`: subnetworks whose working
    /// arcs pass through `v` without terminating there (no ADM drop).
    /// One of the cost drivers the paper lists.
    pub fn transit_count(&self, v: u32) -> usize {
        self.subnets
            .iter()
            .filter(|s| !s.tile.vertices().contains(&v))
            .count()
    }

    /// Looks up all subnetworks covering a given request.
    pub fn subnets_for_demand(&self, e: Edge) -> Vec<u32> {
        self.subnets
            .iter()
            .filter(|s| s.demands.iter().any(|c| c.to_edge() == e))
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_core::construct_optimal;

    #[test]
    fn network_from_covering_basic_accounting() {
        let cover = construct_optimal(9);
        let net = WdmNetwork::from_covering(&cover);
        assert_eq!(net.subnetworks().len(), 10);
        assert_eq!(net.wavelength_count(), 20);
        // ADMs: 3 per C3, 4 per C4: 4 triangles + 6 quads = 12 + 24.
        assert_eq!(net.total_adms(), 36);
        // Every request of K9 appears exactly once (odd case = partition).
        assert_eq!(net.demand_count(), 36);
    }

    #[test]
    fn every_ring_edge_fully_loaded() {
        for n in [7u32, 10, 12] {
            let cover = construct_optimal(n);
            let net = WdmNetwork::from_covering(&cover);
            for e in 0..n {
                assert_eq!(
                    net.working_load(e),
                    net.subnetworks().len(),
                    "n={n}, edge {e}: winding tiles use every ring edge once"
                );
            }
        }
    }

    #[test]
    fn demand_on_edge_unique() {
        let cover = construct_optimal(11);
        let net = WdmNetwork::from_covering(&cover);
        let ring = net.ring();
        for s in net.subnetworks() {
            for e in 0..ring.n() {
                let hit = s.demand_on_edge(ring, e);
                assert!(hit.is_some(), "edge {e} uncovered in subnet {}", s.id);
            }
        }
    }

    #[test]
    fn transit_counts_consistent() {
        let cover = construct_optimal(8);
        let net = WdmNetwork::from_covering(&cover);
        for v in 0..8 {
            let transit = net.transit_count(v);
            let terminating = net
                .subnetworks()
                .iter()
                .filter(|s| s.tile.vertices().contains(&v))
                .count();
            assert_eq!(transit + terminating, net.subnetworks().len());
        }
    }

    #[test]
    fn demands_lookup() {
        let cover = construct_optimal(7);
        let net = WdmNetwork::from_covering(&cover);
        for u in 0..7u32 {
            for v in (u + 1)..7 {
                assert!(
                    !net.subnets_for_demand(Edge::new(u, v)).is_empty(),
                    "request ({u},{v}) not carried"
                );
            }
        }
    }
}
