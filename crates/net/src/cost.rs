//! The network cost model (paper §2).
//!
//! "The cost is a very complex function depending on the size of the ADM
//! in each node, the number of wavelengths (associated to the subnetworks)
//! in transit in each optical node and a cost of regeneration and
//! amplification of the signal. When the physical graph is a ring that
//! corresponds to minimize the number of subgraphs `I_k` in the covering."
//!
//! [`CostModel`] makes the three cost drivers explicit and lets
//! experiments compare coverings under the paper's objective (cycle
//! count), the refs [3,4] objective (total ADMs = Σ cycle sizes), and
//! arbitrary weightings.

use crate::WdmNetwork;

/// Linear cost model over the three drivers the paper lists.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost per wavelength (the per-subnetwork transponder/laser cost).
    pub wavelength_cost: f64,
    /// Cost per ADM (termination equipment at each cycle vertex).
    pub adm_cost: f64,
    /// Cost per wavelength-in-transit at a node (regeneration /
    /// amplification driver).
    pub transit_cost: f64,
}

impl CostModel {
    /// The paper's ring objective: only the number of subnetworks matters.
    pub fn subnetwork_count_objective() -> Self {
        CostModel {
            wavelength_cost: 1.0,
            adm_cost: 0.0,
            transit_cost: 0.0,
        }
    }

    /// The refs \[3,4\] objective: minimize total ADM count (Σ|V(I_k)|).
    pub fn adm_objective() -> Self {
        CostModel {
            wavelength_cost: 0.0,
            adm_cost: 1.0,
            transit_cost: 0.0,
        }
    }

    /// A blended "realistic" model: every driver weighted.
    pub fn blended() -> Self {
        CostModel {
            wavelength_cost: 10.0,
            adm_cost: 3.0,
            transit_cost: 0.5,
        }
    }

    /// Evaluates the total network cost.
    pub fn evaluate(&self, net: &WdmNetwork) -> f64 {
        let wl = net.wavelength_count() as f64;
        let adm = net.total_adms() as f64;
        let transit: usize = (0..net.ring().n()).map(|v| net.transit_count(v)).sum();
        self.wavelength_cost * wl + self.adm_cost * adm + self.transit_cost * transit as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_core::construct_optimal;
    use cyclecover_core::DrcCovering;
    use cyclecover_ring::{Ring, Tile};

    /// Build a deliberately wasteful covering of K5 (all triangles) to
    /// compare objectives.
    fn triangle_covering_k5() -> DrcCovering {
        let ring = Ring::new(5);
        // Greedy triangle covering of K5: 4 triangles.
        let tiles = vec![
            Tile::from_vertices(ring, vec![0, 1, 2]),
            Tile::from_vertices(ring, vec![0, 3, 4]),
            Tile::from_vertices(ring, vec![1, 2, 3]),
            Tile::from_vertices(ring, vec![1, 2, 4]),
        ];
        let c = DrcCovering::from_tiles(ring, tiles);
        assert!(c.validate().is_ok());
        c
    }

    #[test]
    fn paper_objective_prefers_optimal_covering() {
        let ours = WdmNetwork::from_covering(&construct_optimal(5));
        let tris = WdmNetwork::from_covering(&triangle_covering_k5());
        let m = CostModel::subnetwork_count_objective();
        assert!(m.evaluate(&ours) < m.evaluate(&tris));
    }

    #[test]
    fn adm_objective_measures_sum_of_sizes() {
        let net = WdmNetwork::from_covering(&construct_optimal(5));
        let m = CostModel::adm_objective();
        // 2 C3 + 1 C4: ADMs = 3+3+4 = 10.
        assert_eq!(m.evaluate(&net), 10.0);
    }

    #[test]
    fn blended_cost_is_monotone_in_components() {
        let net = WdmNetwork::from_covering(&construct_optimal(7));
        let blended = CostModel::blended().evaluate(&net);
        let wl_only = CostModel::subnetwork_count_objective().evaluate(&net);
        assert!(blended > wl_only);
    }
}
