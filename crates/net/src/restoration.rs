//! Restoration — the paper's *other* survivability scheme — simulated
//! and compared against cycle-covering protection.
//!
//! From the paper's introduction: "Two survivability schemes can be
//! implemented: protection or restoration. Protection can be done by
//! using a pre-assigned capacity … restoration can be realized by using
//! any capacity available between nodes in order to find a transport
//! entity that can replace the failed one."
//!
//! On a ring, restoration is concrete: demands are routed on their
//! shortest arcs against a pooled per-link capacity; when a link fails,
//! every demand crossing it is rerouted the only other way — the
//! complement arc — *if the pool has room*. The scheme needs less
//! capacity than protection (which pre-assigns a full spare wavelength
//! per subnetwork) but recovery is not instantaneous and demands can
//! block under tight provisioning. [`compare_schemes`] quantifies the
//! trade for the all-to-all instance, making the paper's qualitative
//! discussion measurable (experiment E11).

use cyclecover_graph::Edge;
use cyclecover_ring::{Chord, Ring, RingArc};

/// An unprotected (restoration-based) WDM ring: demands with shortest-arc
/// working routes, pooled per-link capacity.
pub struct RestorationNetwork {
    ring: Ring,
    /// Demands with their working arcs.
    demands: Vec<(Edge, RingArc)>,
    /// Pooled capacity per ring edge, in wavelength-units.
    capacity: u32,
}

/// Outcome of restoring one link failure.
#[derive(Clone, Debug)]
pub struct RestorationReport {
    /// The failed ring edge.
    pub failed_edge: u32,
    /// Demands whose working arc crossed the failed link.
    pub affected: usize,
    /// Demands successfully rerouted within the capacity pool.
    pub restored: usize,
    /// Demands that could not fit (capacity exhausted somewhere on their
    /// complement arc).
    pub blocked: usize,
    /// Maximum link load after restoration, over surviving edges.
    pub max_post_load: u32,
}

impl RestorationNetwork {
    /// The all-to-all instance on `C_n`, shortest-arc routed, with the
    /// given per-link capacity pool.
    pub fn all_to_all(ring: Ring, capacity: u32) -> Self {
        let demands = (0..ring.n())
            .flat_map(|u| ((u + 1)..ring.n()).map(move |v| (u, v)))
            .map(|(u, v)| {
                let c = Chord::new(ring, u, v);
                (Edge::new(u, v), c.shortest_arc(ring))
            })
            .collect();
        RestorationNetwork {
            ring,
            demands,
            capacity,
        }
    }

    /// A custom demand set, shortest-arc routed.
    pub fn from_requests(ring: Ring, requests: &[Edge], capacity: u32) -> Self {
        let demands = requests
            .iter()
            .map(|e| {
                let c = Chord::new(ring, e.u(), e.v());
                (*e, c.shortest_arc(ring))
            })
            .collect();
        RestorationNetwork {
            ring,
            demands,
            capacity,
        }
    }

    /// The ring.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The provisioned per-link capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of demands.
    pub fn demand_count(&self) -> usize {
        self.demands.len()
    }

    /// Pre-failure load per ring edge.
    pub fn working_load(&self) -> Vec<u32> {
        let mut load = vec![0u32; self.ring.n() as usize];
        for (_, arc) in &self.demands {
            for e in arc.edges(self.ring) {
                load[e as usize] += 1;
            }
        }
        load
    }

    /// The minimum capacity at which the *working* routing fits.
    pub fn min_working_capacity(&self) -> u32 {
        self.working_load().into_iter().max().unwrap_or(0)
    }

    /// Fails link `e` and restores affected demands greedily,
    /// longest-detour-first (fitting the hardest reroutes while slack is
    /// plentiful), against the pooled capacity.
    pub fn restore_failure(&self, e: u32) -> RestorationReport {
        let ring = self.ring;
        assert!(e < ring.n(), "ring edge {e} out of range");
        let mut load = self.working_load();
        // Remove affected demands' working load; collect their reroutes.
        let mut pending: Vec<RingArc> = Vec::new();
        for (_, arc) in &self.demands {
            if arc.covers_edge(ring, e) {
                for ee in arc.edges(ring) {
                    load[ee as usize] -= 1;
                }
                pending.push(arc.complement(ring));
            }
        }
        let affected = pending.len();
        pending.sort_by_key(|a| std::cmp::Reverse(a.len()));
        let mut restored = 0usize;
        for det in &pending {
            debug_assert!(!det.covers_edge(ring, e), "complement avoids the failure");
            let fits = det.edges(ring).all(|ee| load[ee as usize] < self.capacity);
            if fits {
                for ee in det.edges(ring) {
                    load[ee as usize] += 1;
                }
                restored += 1;
            }
        }
        let max_post_load = (0..ring.n())
            .filter(|&ee| ee != e)
            .map(|ee| load[ee as usize])
            .max()
            .unwrap_or(0);
        RestorationReport {
            failed_edge: e,
            affected,
            restored,
            blocked: affected - restored,
            max_post_load,
        }
    }

    /// The smallest per-link capacity guaranteeing full restoration of
    /// every single-link failure (found by auditing each failure with
    /// unlimited capacity and taking the worst post-restoration load).
    pub fn min_full_restoration_capacity(&self) -> u32 {
        let unlimited = RestorationNetwork {
            ring: self.ring,
            demands: self.demands.clone(),
            capacity: u32::MAX,
        };
        (0..self.ring.n())
            .map(|e| unlimited.restore_failure(e).max_post_load)
            .max()
            .unwrap_or(0)
    }
}

/// Head-to-head comparison of the two schemes of the paper's
/// introduction, on the all-to-all instance over `C_n`.
#[derive(Clone, Copy, Debug)]
pub struct SchemeComparison {
    /// Ring size.
    pub n: u32,
    /// Wavelengths pre-assigned by cycle-covering protection
    /// (`2 · ρ(n)` — working + spare per subnetwork).
    pub protection_wavelengths: u64,
    /// Per-link capacity needed by the bare working routing.
    pub working_capacity: u32,
    /// Per-link capacity needed for full single-failure restoration.
    pub restoration_capacity: u32,
    /// Capacity premium of protection over restoration.
    pub protection_over_restoration: f64,
}

/// Computes the comparison for `C_n`.
pub fn compare_schemes(n: u32) -> SchemeComparison {
    let ring = Ring::new(n);
    let net = RestorationNetwork::all_to_all(ring, u32::MAX);
    let protection_wavelengths = 2 * cyclecover_core::rho(n);
    let working_capacity = net.min_working_capacity();
    let restoration_capacity = net.min_full_restoration_capacity();
    SchemeComparison {
        n,
        protection_wavelengths,
        working_capacity,
        restoration_capacity,
        protection_over_restoration: protection_wavelengths as f64
            / restoration_capacity as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_capacity_restores_everything() {
        for n in [6u32, 9, 12, 15] {
            let net = RestorationNetwork::all_to_all(Ring::new(n), u32::MAX);
            for e in 0..n {
                let r = net.restore_failure(e);
                assert_eq!(r.blocked, 0, "n={n} edge {e}");
                assert_eq!(r.restored, r.affected);
                assert!(r.affected > 0, "some demand always crosses each link");
            }
        }
    }

    #[test]
    fn zero_capacity_blocks_everything() {
        let net = RestorationNetwork::all_to_all(Ring::new(8), 0);
        let r = net.restore_failure(0);
        assert_eq!(r.restored, 0);
        assert_eq!(r.blocked, r.affected);
    }

    #[test]
    fn min_restoration_capacity_is_tight() {
        for n in [7u32, 8, 11] {
            let probe = RestorationNetwork::all_to_all(Ring::new(n), u32::MAX);
            let cap = probe.min_full_restoration_capacity();
            // At cap: everything restores.
            let at = RestorationNetwork::all_to_all(Ring::new(n), cap);
            for e in 0..n {
                assert_eq!(at.restore_failure(e).blocked, 0, "n={n} at cap");
            }
            // At cap − 1: some failure must block (tightness).
            let below = RestorationNetwork::all_to_all(Ring::new(n), cap - 1);
            assert!(
                (0..n).any(|e| below.restore_failure(e).blocked > 0),
                "n={n}: capacity {cap} not tight"
            );
        }
    }

    #[test]
    fn restoration_needs_more_than_working_but_less_than_double_plus_slack() {
        for n in [9u32, 12, 15, 20] {
            let net = RestorationNetwork::all_to_all(Ring::new(n), u32::MAX);
            let work = net.min_working_capacity();
            let rest = net.min_full_restoration_capacity();
            assert!(rest >= work, "n={n}");
            assert!(
                rest <= 3 * work,
                "n={n}: restoration capacity {rest} vs working {work}"
            );
        }
    }

    #[test]
    fn protection_premium_positive() {
        for n in [8u32, 13, 16, 21] {
            let cmp = compare_schemes(n);
            // Protection pre-assigns spare per subnetwork; restoration
            // shares — protection always costs more capacity.
            assert!(
                cmp.protection_wavelengths as f64 >= cmp.restoration_capacity as f64,
                "n={n}: {cmp:?}"
            );
            assert!(cmp.protection_over_restoration >= 1.0);
            assert!(cmp.working_capacity <= cmp.restoration_capacity);
        }
    }

    #[test]
    fn custom_demand_sets() {
        let ring = Ring::new(10);
        let reqs = [Edge::new(0, 5), Edge::new(2, 7), Edge::new(1, 2)];
        let net = RestorationNetwork::from_requests(ring, &reqs, u32::MAX);
        assert_eq!(net.demand_count(), 3);
        let load = net.working_load();
        let total: u32 = load.iter().sum();
        // 5 + 5 + 1 hops of shortest arcs.
        assert_eq!(total, 11);
        let cap = net.min_full_restoration_capacity();
        assert!(cap >= net.min_working_capacity());
    }
}
