//! Single-link failure injection and automatic protection switching.
//!
//! The paper's survivability scheme (§1, ref [9]): subnetworks are
//! protected independently; on a link failure, traffic inside each cycle
//! is rerouted "through the failed link via the remaining part of the
//! cycle using the other half of the capacity". This module simulates
//! exactly that and audits the scheme's guarantees.

use crate::WdmNetwork;
use cyclecover_ring::{Ring, RingArc};

/// One rerouted demand after a failure.
#[derive(Clone, Debug)]
pub struct Reroute {
    /// Subnetwork affected.
    pub subnet: u32,
    /// The affected demand's endpoints.
    pub demand: (u32, u32),
    /// Its working arc (used the failed edge).
    pub working: RingArc,
    /// The protection arc (complement, on the spare wavelength).
    pub protection: RingArc,
}

impl Reroute {
    /// Stretch factor: protection length / working length.
    pub fn stretch(&self) -> f64 {
        self.protection.len() as f64 / self.working.len() as f64
    }
}

/// Outcome of a single link failure.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// The failed ring edge.
    pub failed_edge: u32,
    /// One reroute per affected subnetwork.
    pub reroutes: Vec<Reroute>,
    /// Whether every affected demand was restored.
    pub all_restored: bool,
    /// Maximum spare-wavelength load on any surviving ring edge per
    /// subnetwork (must be ≤ 1: one reroute per wavelength pair).
    pub max_spare_load: u32,
}

/// Aggregate audit over all `n` single-link failures.
#[derive(Clone, Debug)]
pub struct SurvivabilityAudit {
    /// Ring size.
    pub n: u32,
    /// Number of subnetworks.
    pub subnets: usize,
    /// Total reroutes simulated (= n × subnets for winding coverings).
    pub total_reroutes: usize,
    /// All failures fully restored.
    pub fully_survivable: bool,
    /// Worst protection-path stretch observed.
    pub max_stretch: f64,
    /// Mean protection-path length (in ring edges).
    pub mean_protection_len: f64,
}

impl WdmNetwork {
    /// Simulates the failure of ring edge `e` and performs protection
    /// switching in every subnetwork.
    ///
    /// Invariants checked (and reported): each subnetwork has exactly one
    /// affected demand (its arcs tile the ring); the protection arc avoids
    /// the failed edge; spare capacity per subnetwork is not exceeded.
    pub fn fail_link(&self, e: u32) -> FailureReport {
        let ring: Ring = self.ring();
        assert!(e < ring.n(), "ring edge {e} out of range");
        let mut reroutes = Vec::new();
        let mut all_restored = true;
        let mut max_spare_load = 0u32;
        for s in self.subnetworks() {
            match s.demand_on_edge(ring, e) {
                Some((i, demand)) => {
                    let working = s.arcs[i];
                    let protection = working.complement(ring);
                    // Protection must avoid the failed edge and terminate at
                    // the same endpoints.
                    let ok = !protection.covers_edge(ring, e)
                        && protection.start() == working.end(ring)
                        && protection.end(ring) == working.start();
                    all_restored &= ok;
                    // Spare load per subnetwork: only this one demand uses
                    // the spare wavelength => load 1 on its edges.
                    max_spare_load = max_spare_load.max(1);
                    reroutes.push(Reroute {
                        subnet: s.id,
                        demand: (demand.u(), demand.v()),
                        working,
                        protection,
                    });
                }
                None => {
                    // A non-winding covering could leave an edge unused;
                    // nothing to do for this subnetwork.
                }
            }
        }
        FailureReport {
            failed_edge: e,
            reroutes,
            all_restored,
            max_spare_load,
        }
    }
}

/// Outcome of a node (optical switch) failure — "equipment failure" in
/// the paper's opening sentence, strictly harsher than a link failure.
#[derive(Clone, Debug)]
pub struct NodeFailureReport {
    /// The failed node.
    pub node: u32,
    /// Demands terminating at the node: unrecoverable by definition (the
    /// endpoint itself is gone), excluded from protection accounting.
    pub terminating: usize,
    /// Transit demands (node interior to the working arc) restored via
    /// the complement arc.
    pub restored: usize,
    /// Transit demands whose protection arc *also* transits the node.
    /// On a ring this is provably impossible — the working and
    /// protection arcs' interiors partition the other vertices — and the
    /// audit asserts the count stays 0.
    pub unprotected: usize,
}

impl WdmNetwork {
    /// Simulates the failure of node `v`: every subnetwork reroutes its
    /// transit demands through the complements of their working arcs.
    pub fn fail_node(&self, v: u32) -> NodeFailureReport {
        let ring = self.ring();
        assert!(v < ring.n(), "node {v} out of range");
        let mut terminating = 0usize;
        let mut restored = 0usize;
        let mut unprotected = 0usize;
        for s in self.subnetworks() {
            for (i, demand) in s.demands.iter().enumerate() {
                if demand.u() == v || demand.v() == v {
                    terminating += 1;
                    continue;
                }
                let working = s.arcs[i];
                if !arc_transits(ring, working, v) {
                    continue; // unaffected
                }
                let protection = working.complement(ring);
                if arc_transits(ring, protection, v) {
                    unprotected += 1;
                } else {
                    restored += 1;
                }
            }
        }
        NodeFailureReport {
            node: v,
            terminating,
            restored,
            unprotected,
        }
    }
}

/// Whether `v` is *interior* to the arc (strictly between its endpoints
/// along the clockwise walk).
fn arc_transits(ring: Ring, arc: RingArc, v: u32) -> bool {
    let walk = arc.walk(ring);
    walk[1..walk.len().saturating_sub(1)].contains(&v)
}

/// Runs all `n` single-node failures; returns the per-node reports.
/// Ring protection is structurally node-safe for transit demands, so
/// `unprotected` is 0 in every report (asserted by tests, *demonstrated*
/// rather than assumed).
pub fn audit_all_node_failures(net: &WdmNetwork) -> Vec<NodeFailureReport> {
    (0..net.ring().n()).map(|v| net.fail_node(v)).collect()
}

/// Runs all `n` single-link failures and aggregates the audit.
pub fn audit_all_failures(net: &WdmNetwork) -> SurvivabilityAudit {
    let ring = net.ring();
    let n = ring.n();
    let mut total = 0usize;
    let mut survivable = true;
    let mut max_stretch = 0f64;
    let mut len_sum = 0u64;
    for e in 0..n {
        let report = net.fail_link(e);
        survivable &= report.all_restored;
        total += report.reroutes.len();
        for r in &report.reroutes {
            max_stretch = max_stretch.max(r.stretch());
            len_sum += r.protection.len() as u64;
        }
    }
    SurvivabilityAudit {
        n,
        subnets: net.subnetworks().len(),
        total_reroutes: total,
        fully_survivable: survivable,
        max_stretch,
        mean_protection_len: if total > 0 {
            len_sum as f64 / total as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_core::construct_optimal;

    #[test]
    fn every_single_failure_restores_everything() {
        for n in [7u32, 8, 10, 13, 16] {
            let cover = construct_optimal(n);
            let net = WdmNetwork::from_covering(&cover);
            let audit = audit_all_failures(&net);
            assert!(audit.fully_survivable, "n={n}");
            assert_eq!(audit.total_reroutes, n as usize * net.subnetworks().len());
        }
    }

    #[test]
    fn protection_path_properties() {
        let cover = construct_optimal(9);
        let net = WdmNetwork::from_covering(&cover);
        for e in 0..9 {
            let report = net.fail_link(e);
            assert!(report.all_restored);
            assert_eq!(report.max_spare_load, 1);
            for r in &report.reroutes {
                // working + protection partition the ring
                assert_eq!(r.working.len() + r.protection.len(), 9);
                assert!(!r.protection.covers_edge(net.ring(), e));
            }
        }
    }

    #[test]
    fn node_failures_protect_all_transit_demands() {
        for n in [7u32, 8, 12, 15] {
            let cover = construct_optimal(n);
            let net = WdmNetwork::from_covering(&cover);
            let reports = audit_all_node_failures(&net);
            assert_eq!(reports.len(), n as usize);
            for rep in &reports {
                assert_eq!(
                    rep.unprotected, 0,
                    "n={n}, node {}: ring protection is node-safe",
                    rep.node
                );
            }
            // Every demand terminates somewhere: summed over nodes, each
            // chord is counted at exactly its 2 endpoints.
            let term_total: usize = reports.iter().map(|r| r.terminating).sum();
            assert_eq!(term_total, 2 * net.demand_count(), "n={n}");
        }
    }

    #[test]
    fn node_failure_counts_split_cleanly() {
        let cover = construct_optimal(9);
        let net = WdmNetwork::from_covering(&cover);
        let rep = net.fail_node(4);
        // Affected = terminating + restored (+ unprotected = 0); every
        // demand either ends at 4, transits 4, or avoids it entirely.
        let transits: usize = net
            .subnetworks()
            .iter()
            .flat_map(|s| s.arcs.iter().zip(&s.demands))
            .filter(|(a, d)| {
                d.u() != 4 && d.v() != 4 && {
                    let w = a.walk(net.ring());
                    w[1..w.len() - 1].contains(&4)
                }
            })
            .count();
        assert_eq!(rep.restored, transits);
    }

    #[test]
    fn stretch_is_bounded_by_ring_size() {
        let cover = construct_optimal(12);
        let net = WdmNetwork::from_covering(&cover);
        let audit = audit_all_failures(&net);
        // Worst case: a distance-1 demand rerouted the long way: n−1.
        assert!(audit.max_stretch <= 11.0 + 1e-9);
        assert!(audit.mean_protection_len > 0.0);
        assert!(audit.mean_protection_len < 12.0);
    }
}
