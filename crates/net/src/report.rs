//! Human-readable design reports (used by examples and experiment bins).

use crate::{audit_all_failures, CostModel, WdmNetwork};
use std::fmt::Write;

/// Renders a full design summary: topology, subnetworks, wavelengths,
/// ADMs, cost breakdown, survivability audit.
pub fn design_report(net: &WdmNetwork) -> String {
    let mut s = String::new();
    let n = net.ring().n();
    let _ = writeln!(s, "=== WDM ring design report ===");
    let _ = writeln!(s, "physical topology : C_{n} ({n} switches, {n} fiber links)");
    let _ = writeln!(s, "logical instance  : K_{n} ({} requests)", n * (n - 1) / 2);
    let _ = writeln!(s, "subnetworks       : {}", net.subnetworks().len());
    let _ = writeln!(
        s,
        "wavelengths       : {} ({} working + spare pairs)",
        net.wavelength_count(),
        net.subnetworks().len()
    );
    let _ = writeln!(s, "total ADMs        : {}", net.total_adms());

    let mut by_len = std::collections::BTreeMap::new();
    for sub in net.subnetworks() {
        *by_len.entry(sub.tile.len()).or_insert(0usize) += 1;
    }
    let comp: Vec<String> = by_len.iter().map(|(k, v)| format!("{v}×C{k}")).collect();
    let _ = writeln!(s, "composition       : {}", comp.join(" + "));

    for (name, model) in [
        ("cycles", CostModel::subnetwork_count_objective()),
        ("ADMs", CostModel::adm_objective()),
        ("blended", CostModel::blended()),
    ] {
        let _ = writeln!(s, "cost[{name:7}]     : {:.1}", model.evaluate(net));
    }

    let audit = audit_all_failures(net);
    let _ = writeln!(
        s,
        "survivability     : {} ({} reroutes over {} failure scenarios, max stretch {:.1})",
        if audit.fully_survivable { "100%" } else { "FAILED" },
        audit.total_reroutes,
        n,
        audit.max_stretch
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_core::construct_optimal;

    #[test]
    fn report_contains_key_lines() {
        let net = WdmNetwork::from_covering(&construct_optimal(10));
        let report = design_report(&net);
        assert!(report.contains("C_10"));
        assert!(report.contains("subnetworks       : 13"));
        assert!(report.contains("survivability     : 100%"));
        assert!(report.contains("composition"));
    }
}
