//! Wavelength assignment: protected cycles vs. unprotected routing.
//!
//! Two accounting regimes on the same ring:
//!
//! * **Protected (the paper's scheme):** each covering cycle owns a
//!   working + spare wavelength pair. Winding cycles occupy *every* ring
//!   edge, so no two subnetworks can share a wavelength — the conflict
//!   graph is complete and the assignment `cycle i ↦ pair i` is optimal:
//!   exactly `2·ρ(n)` wavelengths ([`protected_wavelengths`]).
//! * **Unprotected baseline:** route each request on its shortest arc and
//!   color arcs so same-wavelength arcs are edge-disjoint (circular-arc
//!   coloring). The max link load `L = ⌈Σdist/n⌉` lower-bounds the count;
//!   first-fit ([`first_fit_assignment`]) gets close in practice.
//!
//! Comparing the two makes the paper's premise quantitative: survivable
//! design via cycle coverings costs ~2× the wavelengths of unprotected
//! routing — "half of the capacity for the demands … the other half" as
//! spare — in exchange for instant single-failure recovery.

use cyclecover_graph::Edge;
use cyclecover_ring::{ArcOccupancy, Chord, Ring, RingArc};

/// Shortest-arc routing of the full `K_n` instance: one arc per request
/// (ties at diameters broken clockwise-from-smaller-endpoint).
pub fn route_all_shortest(ring: Ring) -> Vec<(Edge, RingArc)> {
    let n = ring.n();
    let mut out = Vec::with_capacity((n as usize * (n as usize - 1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            let c = Chord::new(ring, u, v);
            out.push((Edge::new(u, v), c.shortest_arc(ring)));
        }
    }
    out
}

/// Maximum number of routed arcs crossing any single ring edge — the
/// clique-style lower bound on the unprotected wavelength count.
pub fn max_link_load(ring: Ring, routing: &[(Edge, RingArc)]) -> u32 {
    let n = ring.n();
    let mut load = vec![0u32; n as usize];
    for (_, arc) in routing {
        for e in arc.edges(ring) {
            load[e as usize] += 1;
        }
    }
    load.into_iter().max().unwrap_or(0)
}

/// First-fit circular-arc coloring: assigns each arc the smallest
/// wavelength on which it fits edge-disjointly. Returns per-request
/// wavelength indices and the number of wavelengths used.
///
/// Arcs are processed longest-first (a strong heuristic for circular-arc
/// graphs); the result is within a small factor of [`max_link_load`].
pub fn first_fit_assignment(ring: Ring, routing: &[(Edge, RingArc)]) -> (Vec<u32>, usize) {
    let mut order: Vec<usize> = (0..routing.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(routing[i].1.len()));
    let mut layers: Vec<ArcOccupancy> = Vec::new();
    let mut assignment = vec![0u32; routing.len()];
    for i in order {
        let arc = routing[i].1;
        let mut placed = false;
        for (w, layer) in layers.iter_mut().enumerate() {
            if layer.try_place(ring, &arc) {
                assignment[i] = w as u32;
                placed = true;
                break;
            }
        }
        if !placed {
            let mut layer = ArcOccupancy::new(ring);
            assert!(layer.try_place(ring, &arc));
            assignment[i] = layers.len() as u32;
            layers.push(layer);
        }
    }
    let used = layers.len();
    (assignment, used)
}

/// Wavelengths needed by the paper's protected scheme for a covering of
/// `cycles` winding cycles: exactly `2 · cycles` (complete conflict graph
/// — every winding cycle uses every ring edge).
pub fn protected_wavelengths(cycles: usize) -> usize {
    2 * cycles
}

/// The protection premium: protected / unprotected wavelength counts for
/// the all-to-all instance on `C_n` (using first-fit for the baseline).
pub fn protection_premium(ring: Ring, cycles: usize) -> f64 {
    let routing = route_all_shortest(ring);
    let (_, unprotected) = first_fit_assignment(ring, &routing);
    protected_wavelengths(cycles) as f64 / unprotected as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_solver::lower_bound::capacity_lower_bound;

    #[test]
    fn shortest_routing_loads_match_capacity_bound() {
        for n in [7u32, 8, 11, 16] {
            let ring = Ring::new(n);
            let routing = route_all_shortest(ring);
            let load = max_link_load(ring, &routing);
            // Total load = Σ dist; max ≥ average = capacity bound.
            assert!(load as u64 >= capacity_lower_bound(n), "n={n}");
            // Shortest routing is balanced on symmetric instances: max is
            // within 1.5x of average.
            assert!(
                (load as f64) <= 1.5 * capacity_lower_bound(n) as f64 + 2.0,
                "n={n}: load {load}"
            );
        }
    }

    #[test]
    fn first_fit_is_valid_and_bounded() {
        for n in [6u32, 9, 12, 15, 20] {
            let ring = Ring::new(n);
            let routing = route_all_shortest(ring);
            let (assignment, used) = first_fit_assignment(ring, &routing);
            // Validity: same-wavelength arcs are pairwise disjoint.
            for w in 0..used as u32 {
                let mut occ = ArcOccupancy::new(ring);
                for (i, (_, arc)) in routing.iter().enumerate() {
                    if assignment[i] == w {
                        assert!(occ.try_place(ring, arc), "n={n} λ={w}");
                    }
                }
            }
            let lb = max_link_load(ring, &routing) as usize;
            assert!(used >= lb, "n={n}");
            assert!(used <= 2 * lb + 2, "n={n}: first-fit used {used} vs LB {lb}");
        }
    }

    #[test]
    fn protection_costs_about_twice() {
        for n in [9u32, 13, 14] {
            let ring = Ring::new(n);
            let cycles = cyclecover_core::rho(n) as usize;
            let premium = protection_premium(ring, cycles);
            assert!(
                (1.5..=2.6).contains(&premium),
                "n={n}: protection premium {premium} should be ≈ 2"
            );
        }
    }
}
