//! Availability analysis — what protection actually buys.
//!
//! The paper motivates cycle coverings with survivability, but never
//! quantifies the reliability gain. This module does, with the standard
//! telecom steady-state model: each fiber link fails independently with
//! unavailability `u = MTTR / (MTBF + MTTR)`, and a demand is *up* when
//! its traffic is deliverable. Exact analysis by failure-state
//! enumeration, truncated at double failures (triple-failure mass is
//! `O(u³)` — beyond the ~1e-9 resolution this model is used at, and the
//! truncation's residual is reported, not hidden):
//!
//! * **unprotected** — a demand dies with any link of its (shortest-arc)
//!   working path;
//! * **cycle-protected** — a demand survives every single failure (the
//!   paper's guarantee, E6); it dies only when a *pair* of failures
//!   hits both its working arc and its protection arc.
//!
//! [`availability_comparison`] reports mean demand unavailability under
//! both schemes and the improvement factor — "how many nines" the
//! covering adds.

use crate::WdmNetwork;
use cyclecover_ring::{Chord, Ring};

/// Steady-state per-link unavailability parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Mean time between failures (hours).
    pub mtbf_hours: f64,
    /// Mean time to repair (hours).
    pub mttr_hours: f64,
}

impl LinkModel {
    /// Typical long-haul fiber numbers: cuts every ~4 months, 12 h fix.
    pub fn typical_fiber() -> Self {
        LinkModel {
            mtbf_hours: 4.0 * 30.0 * 24.0,
            mttr_hours: 12.0,
        }
    }

    /// Steady-state probability the link is down.
    pub fn unavailability(&self) -> f64 {
        self.mttr_hours / (self.mtbf_hours + self.mttr_hours)
    }
}

/// Availability figures for one scheme.
#[derive(Clone, Copy, Debug)]
pub struct SchemeAvailability {
    /// Mean demand unavailability (probability a given demand is down).
    pub mean_unavailability: f64,
    /// Worst single demand unavailability.
    pub worst_unavailability: f64,
}

impl SchemeAvailability {
    /// "Number of nines" of the mean availability.
    pub fn nines(&self) -> f64 {
        -self.mean_unavailability.log10()
    }
}

/// Head-to-head availability of unprotected vs cycle-protected designs.
#[derive(Clone, Debug)]
pub struct AvailabilityComparison {
    /// Per-link unavailability used.
    pub link_unavailability: f64,
    /// Unprotected shortest-arc routing.
    pub unprotected: SchemeAvailability,
    /// The covering-based protection of `net`.
    pub protected: SchemeAvailability,
    /// Mean improvement factor (unprotected / protected unavailability).
    pub improvement: f64,
    /// Upper bound on probability mass ignored by the double-failure
    /// truncation (`C(n,3) u³`) — the analysis' honest error bar.
    pub truncation_residual: f64,
}

/// Exact-to-second-order availability analysis of `net` under `model`.
///
/// For every demand the working path is its subnetwork's assigned arc;
/// the protection path is the complement arc. Unprotected baseline: the
/// same demand routed on its shortest arc with no spare.
pub fn availability_comparison(net: &WdmNetwork, model: LinkModel) -> AvailabilityComparison {
    let ring: Ring = net.ring();
    let n = ring.n();
    let u = model.unavailability();

    // Enumerate demands with (working, protection) edge sets.
    let mut protected_pairs: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    let mut unprotected_paths: Vec<Vec<u32>> = Vec::new();
    for s in net.subnetworks() {
        for (i, d) in s.demands.iter().enumerate() {
            let work: Vec<u32> = s.arcs[i].edges(ring).collect();
            let prot: Vec<u32> = s.arcs[i].complement(ring).edges(ring).collect();
            protected_pairs.push((work, prot));
            let chord = Chord::new(ring, d.u(), d.v());
            unprotected_paths.push(chord.shortest_arc(ring).edges(ring).collect());
        }
    }

    // Unprotected: P(down) = P(any working link down) ≈ exact closed form
    // (independent links): 1 − (1−u)^len.
    let unprot = summarize(unprotected_paths.iter().map(|p| {
        1.0 - (1.0 - u).powi(p.len() as i32)
    }));

    // Protected: up unless (some working link down) AND (some protection
    // link down). Working and protection arcs are edge-disjoint, so
    // P(down) = [1 − (1−u)^w] · [1 − (1−u)^p] exactly (independence),
    // which is Θ(u²) — the single-failure immunity the paper promises.
    let prot = summarize(protected_pairs.iter().map(|(w, p)| {
        (1.0 - (1.0 - u).powi(w.len() as i32)) * (1.0 - (1.0 - u).powi(p.len() as i32))
    }));

    let choose3 = (n as f64) * ((n - 1) as f64) * ((n - 2) as f64) / 6.0;
    AvailabilityComparison {
        link_unavailability: u,
        unprotected: unprot,
        protected: prot,
        improvement: unprot.mean_unavailability / prot.mean_unavailability,
        truncation_residual: choose3 * u * u * u,
    }
}

fn summarize(per_demand: impl Iterator<Item = f64>) -> SchemeAvailability {
    let mut total = 0.0;
    let mut worst: f64 = 0.0;
    let mut count = 0usize;
    for p in per_demand {
        total += p;
        worst = worst.max(p);
        count += 1;
    }
    SchemeAvailability {
        mean_unavailability: total / count.max(1) as f64,
        worst_unavailability: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_core::construct_optimal;

    fn net(n: u32) -> WdmNetwork {
        WdmNetwork::from_covering(&construct_optimal(n))
    }

    #[test]
    fn protection_improves_availability_by_orders_of_magnitude() {
        let cmp = availability_comparison(&net(12), LinkModel::typical_fiber());
        // Unprotected demand ~ u·len_short; protected ~ u²·w·p with
        // w + p = n — the gain is ≈ len_short / (w·p·u), an order of
        // magnitude-plus for typical fiber at metro sizes.
        assert!(cmp.improvement > 20.0, "improvement only {}", cmp.improvement);
        assert!(cmp.protected.nines() > cmp.unprotected.nines() + 1.0);
        assert!(cmp.protected.mean_unavailability > 0.0);
    }

    #[test]
    fn unavailability_orderings() {
        for n in [7u32, 10, 15] {
            let cmp = availability_comparison(&net(n), LinkModel::typical_fiber());
            assert!(cmp.protected.mean_unavailability < cmp.unprotected.mean_unavailability);
            assert!(cmp.protected.worst_unavailability >= cmp.protected.mean_unavailability);
            assert!(cmp.unprotected.worst_unavailability >= cmp.unprotected.mean_unavailability);
            assert!(cmp.truncation_residual < cmp.protected.mean_unavailability,
                "n={n}: truncation must be below the signal");
        }
    }

    #[test]
    fn perfect_links_mean_perfect_availability() {
        let model = LinkModel {
            mtbf_hours: 1e12,
            mttr_hours: 1e-9,
        };
        let cmp = availability_comparison(&net(8), model);
        assert!(cmp.unprotected.mean_unavailability < 1e-15);
        assert!(cmp.protected.mean_unavailability < 1e-24);
    }

    #[test]
    fn nines_are_monotone_in_link_quality() {
        let good = availability_comparison(
            &net(9),
            LinkModel { mtbf_hours: 10_000.0, mttr_hours: 1.0 },
        );
        let bad = availability_comparison(
            &net(9),
            LinkModel { mtbf_hours: 100.0, mttr_hours: 10.0 },
        );
        assert!(good.protected.nines() > bad.protected.nines());
        assert!(good.unprotected.nines() > bad.unprotected.nines());
    }

    #[test]
    fn longer_rings_are_less_available() {
        let m = LinkModel::typical_fiber();
        let small = availability_comparison(&net(7), m);
        let large = availability_comparison(&net(21), m);
        assert!(
            large.unprotected.mean_unavailability > small.unprotected.mean_unavailability,
            "more hops, more exposure"
        );
    }
}
