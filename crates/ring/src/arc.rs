//! Directed clockwise arcs on the ring.

use crate::Ring;
use std::fmt;

/// A directed arc of the ring: starting at vertex `start` and walking
/// `len ≥ 1` ring edges clockwise (in the direction of increasing vertex
/// numbers), ending at `start + len mod n`.
///
/// An arc *covers* the ring edges `e_start, e_{start+1}, …, e_{start+len−1}`
/// (indices mod `n`). Arcs are the unit of capacity allocation: a routed
/// request occupies exactly the edges of its arc on one wavelength.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct RingArc {
    start: u32,
    len: u32,
}

impl RingArc {
    /// Arc from `start` spanning `len` clockwise ring edges.
    ///
    /// # Panics
    /// Panics if `len == 0` or `len > n` or `start ≥ n`.
    pub fn new(ring: Ring, start: u32, len: u32) -> Self {
        assert!(start < ring.n(), "arc start {start} out of range");
        assert!(
            len >= 1 && len <= ring.n(),
            "arc length {len} out of range 1..={}",
            ring.n()
        );
        RingArc { start, len }
    }

    /// Starting vertex.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Number of ring edges covered.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Arcs always cover ≥ 1 edge.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Ending vertex `start + len mod n`.
    #[inline]
    pub fn end(&self, ring: Ring) -> u32 {
        ring.add(self.start, self.len % ring.n())
    }

    /// Iterator over covered ring-edge indices.
    pub fn edges(&self, ring: Ring) -> impl Iterator<Item = u32> {
        let n = ring.n();
        let start = self.start;
        (0..self.len).map(move |i| {
            let e = start + i;
            if e >= n {
                e - n
            } else {
                e
            }
        })
    }

    /// Whether this arc covers ring edge `e`.
    pub fn covers_edge(&self, ring: Ring, e: u32) -> bool {
        ring.sub(e, self.start) < self.len
    }

    /// Whether two arcs share a ring edge.
    pub fn overlaps(&self, ring: Ring, other: &RingArc) -> bool {
        // The cheaper direction: iterate the shorter arc.
        let (a, b) = if self.len <= other.len { (self, other) } else { (other, self) };
        a.edges(ring).any(|e| b.covers_edge(ring, e))
    }

    /// Vertex sequence along the arc, endpoints included (`len + 1` entries).
    pub fn walk(&self, ring: Ring) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len as usize + 1);
        let mut v = self.start;
        out.push(v);
        for _ in 0..self.len {
            v = ring.add(v, 1);
            out.push(v);
        }
        out
    }

    /// The complementary arc: from this arc's end, clockwise back to its
    /// start, covering exactly the ring edges this arc does not.
    pub fn complement(&self, ring: Ring) -> RingArc {
        assert!(
            self.len < ring.n(),
            "full-ring arc has an empty complement"
        );
        RingArc {
            start: self.end(ring),
            len: ring.n() - self.len,
        }
    }
}

impl fmt::Debug for RingArc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Arc({}→+{})", self.start, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> Ring {
        Ring::new(n)
    }

    #[test]
    fn arc_edges_wrap() {
        let a = RingArc::new(r(6), 4, 3);
        let es: Vec<u32> = a.edges(r(6)).collect();
        assert_eq!(es, vec![4, 5, 0]);
        assert_eq!(a.end(r(6)), 1);
        assert_eq!(a.walk(r(6)), vec![4, 5, 0, 1]);
    }

    #[test]
    fn covers_edge_matches_iteration() {
        let ring = r(10);
        for start in 0..10 {
            for len in 1..=10 {
                let a = RingArc::new(ring, start, len);
                let covered: Vec<u32> = a.edges(ring).collect();
                for e in 0..10 {
                    assert_eq!(a.covers_edge(ring, e), covered.contains(&e), "{a:?} edge {e}");
                }
            }
        }
    }

    #[test]
    fn overlap_detection() {
        let ring = r(8);
        let a = RingArc::new(ring, 0, 3); // edges 0,1,2
        let b = RingArc::new(ring, 3, 2); // edges 3,4
        let c = RingArc::new(ring, 2, 2); // edges 2,3
        assert!(!a.overlaps(ring, &b));
        assert!(a.overlaps(ring, &c));
        assert!(b.overlaps(ring, &c));
        assert!(a.overlaps(ring, &a));
    }

    #[test]
    fn complement_partitions_ring() {
        let ring = r(9);
        let a = RingArc::new(ring, 7, 4);
        let c = a.complement(ring);
        assert_eq!(c.start(), 2);
        assert_eq!(c.len(), 5);
        assert!(!a.overlaps(ring, &c));
        let mut all: Vec<u32> = a.edges(ring).chain(c.edges(ring)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_length_rejected() {
        let _ = RingArc::new(r(5), 0, 0);
    }

    #[test]
    fn full_ring_arc() {
        let ring = r(5);
        let a = RingArc::new(ring, 2, 5);
        assert_eq!(a.edges(ring).count(), 5);
        assert_eq!(a.end(ring), 2);
    }
}
