//! Dihedral symmetries of the ring and their action on tiles.
//!
//! The ring `C_n` has automorphism group `D_n` (rotations + reflections);
//! the DRC structure is invariant under it, so tiles, coverings and
//! solver searches can all be normalized modulo `D_n`. Used for
//! deduplication (the constructions' identified quad pairs), canonical
//! fingerprints in tests, and symmetry-breaking in exhaustive search.

use crate::{Ring, Tile};

/// Rotates a tile by `r` positions (vertex `v ↦ v + r mod n`).
pub fn rotate_tile(ring: Ring, tile: &Tile, r: u32) -> Tile {
    Tile::from_vertices(
        ring,
        tile.vertices().iter().map(|&v| ring.add(v, r % ring.n())).collect(),
    )
}

/// Reflects a tile through vertex 0 (vertex `v ↦ −v mod n`).
pub fn reflect_tile(ring: Ring, tile: &Tile) -> Tile {
    Tile::from_vertices(
        ring,
        tile.vertices().iter().map(|&v| ring.sub(0, v)).collect(),
    )
}

/// The canonical representative of the tile's dihedral orbit: the
/// lexicographically smallest vertex list over all `2n` symmetries.
pub fn canonical_tile(ring: Ring, tile: &Tile) -> Tile {
    let mut best = tile.clone();
    for reflected in [false, true] {
        let base = if reflected { reflect_tile(ring, tile) } else { tile.clone() };
        for r in 0..ring.n() {
            let cand = rotate_tile(ring, &base, r);
            if cand.vertices() < best.vertices() {
                best = cand;
            }
        }
    }
    best
}

/// Size of the tile's orbit under the dihedral group (divides `2n`).
pub fn orbit_size(ring: Ring, tile: &Tile) -> usize {
    let mut orbit = std::collections::BTreeSet::new();
    for reflected in [false, true] {
        let base = if reflected { reflect_tile(ring, tile) } else { tile.clone() };
        for r in 0..ring.n() {
            orbit.insert(rotate_tile(ring, &base, r));
        }
    }
    orbit.len()
}

/// Rotates every tile of a covering — coverings of `K_n` map to coverings
/// of `K_n` (the whole problem is `D_n`-invariant).
pub fn rotate_tiles(ring: Ring, tiles: &[Tile], r: u32) -> Vec<Tile> {
    tiles.iter().map(|t| rotate_tile(ring, t, r)).collect()
}

/// Groups tiles into dihedral orbit classes; returns (canonical form,
/// multiplicity) pairs sorted by canonical form.
pub fn orbit_census(ring: Ring, tiles: &[Tile]) -> Vec<(Tile, usize)> {
    let mut counts: std::collections::BTreeMap<Tile, usize> = Default::default();
    for t in tiles {
        *counts.entry(canonical_tile(ring, t)).or_default() += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_preserves_gap_multiset() {
        let ring = Ring::new(11);
        let t = Tile::from_gaps(ring, 2, &[3, 4, 4]);
        for r in 0..11 {
            let rt = rotate_tile(ring, &t, r);
            let mut a = t.gaps(ring);
            let mut b = rt.gaps(ring);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "r={r}");
        }
    }

    #[test]
    fn reflection_is_involution() {
        let ring = Ring::new(9);
        let t = Tile::from_vertices(ring, vec![1, 4, 6, 7]);
        assert_eq!(reflect_tile(ring, &reflect_tile(ring, &t)), t);
    }

    #[test]
    fn canonical_is_orbit_invariant() {
        let ring = Ring::new(10);
        let t = Tile::from_vertices(ring, vec![0, 3, 5, 9]);
        let canon = canonical_tile(ring, &t);
        for r in 0..10 {
            let rt = rotate_tile(ring, &t, r);
            assert_eq!(canonical_tile(ring, &rt), canon);
            let rf = reflect_tile(ring, &rt);
            assert_eq!(canonical_tile(ring, &rf), canon);
        }
        // Canonical starts at vertex 0 by minimality.
        assert_eq!(canon.vertices()[0], 0);
    }

    #[test]
    fn orbit_sizes_divide_group_order() {
        let ring = Ring::new(12);
        for t in [
            Tile::from_vertices(ring, vec![0, 4, 8]),     // high symmetry
            Tile::from_vertices(ring, vec![0, 1, 2]),     // reflective symmetry
            Tile::from_vertices(ring, vec![0, 1, 3, 7]),  // low symmetry
            Tile::from_vertices(ring, vec![0, 3, 6, 9]),  // square
        ] {
            let s = orbit_size(ring, &t);
            assert_eq!(24 % s, 0, "orbit {s} must divide 2n = 24 for {t:?}");
        }
        // The equilateral triangle on C_12 has orbit exactly n/3 * ... = 4.
        let tri = Tile::from_vertices(ring, vec![0, 4, 8]);
        assert_eq!(orbit_size(ring, &tri), 4);
        // The square {0,3,6,9}: orbit 3.
        let sq = Tile::from_vertices(ring, vec![0, 3, 6, 9]);
        assert_eq!(orbit_size(ring, &sq), 3);
    }

    #[test]
    fn census_counts_orbits() {
        let ring = Ring::new(8);
        let tiles = vec![
            Tile::from_vertices(ring, vec![0, 1, 2]),
            Tile::from_vertices(ring, vec![3, 4, 5]), // same orbit
            Tile::from_vertices(ring, vec![0, 2, 4]), // different orbit
        ];
        let census = orbit_census(ring, &tiles);
        assert_eq!(census.len(), 2);
        let total: usize = census.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 3);
    }
}
