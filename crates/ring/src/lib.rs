//! # cyclecover-ring
//!
//! The physical-ring model underlying *A Note on Cycle Covering* (Bermond,
//! Coudert, Chacon & Tillerot, SPAA 2001): modular arithmetic on `C_n`,
//! directed arcs, chords (requests embedded on the ring), winding tiles, and
//! the **Disjoint Routing Constraint (DRC)** machinery.
//!
//! ## Model
//!
//! The physical network is the undirected ring `C_n` with vertices `0..n` and
//! *ring edges* `e_i = {i, i+1 mod n}` (edge `e_i` is identified by its
//! counterclockwise endpoint `i`). A request between `u` and `v` must be
//! routed along one of the two arcs of the ring connecting them.
//!
//! A set of requests forming a cycle `I_k` satisfies the **DRC** iff there is
//! a choice of arcs, one per request, that are pairwise edge-disjoint. This
//! crate provides two independent implementations:
//!
//! * [`routing::route_cycle`] — an exhaustive backtracking *oracle* that
//!   searches all `2^k` arc assignments (ground truth, used for testing and
//!   for small instances);
//! * [`routing::winding_routing`] — the O(k) structural characterization
//!   (*winding lemma*, §2.1 of `DESIGN.md`): a cycle is DRC-routable iff its
//!   cyclic vertex order agrees with the ring's cyclic order (in one of the
//!   two directions), and then the consecutive arcs form the routing.
//!
//! The two are cross-validated by exhaustive tests for small `n` and by
//! property tests; all higher layers (constructions, solvers, the WDM
//! simulator) rely on the fast path and audit with the oracle.
//!
//! ## Key types
//!
//! * [`Ring`] — the cycle `C_n`, distance/normalization helpers.
//! * [`RingArc`] — a directed clockwise arc `(start, len)`.
//! * [`ArcOccupancy`] — an occupancy set over ring edges with O(1)
//!   place/remove, the hot data structure of every solver inner loop.
//! * [`Chord`] — a request `{u, v}` together with its two candidate arcs.
//! * [`Tile`] — a *winding tile*: a vertex subset whose consecutive arcs
//!   tile the ring exactly once; the canonical shape of every DRC-routable
//!   `C3`/`C4` used by the constructions.
//!
//! ```
//! use cyclecover_graph::CycleSubgraph;
//! use cyclecover_ring::{routing, Ring, Tile};
//!
//! let ring = Ring::new(8);
//! // Winding cycles route; crossing cycles don't (the paper's example).
//! assert!(routing::is_drc_routable(ring, &CycleSubgraph::new(vec![0, 2, 5, 7])));
//! assert!(!routing::is_drc_routable(ring, &CycleSubgraph::new(vec![0, 5, 2, 7])));
//!
//! // A tile's arcs partition the ring edges.
//! let tile = Tile::from_gaps(ring, 3, &[2, 3, 3]);
//! let total: u32 = tile.arcs(ring).iter().map(|a| a.len()).sum();
//! assert_eq!(total, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arc;
mod chord;
pub mod loading;
mod occupancy;
mod ring;
pub mod routing;
pub mod symmetry;
mod tile;

pub use arc::RingArc;
pub use chord::Chord;
pub use occupancy::ArcOccupancy;
pub use ring::Ring;
pub use tile::Tile;
