//! Ring-edge occupancy sets: the hot inner-loop structure of routing checks
//! and solvers.

use crate::{Ring, RingArc};

/// A set of occupied ring edges with O(len) arc placement and removal.
///
/// Two representations, chosen at construction (per the perf guide: avoid
/// heap traffic on the hot path):
/// * `n ≤ 128` — a single `u128` bitmask (all solver workloads live here);
/// * larger rings — a `Vec<u64>` bitset.
#[derive(Clone, PartialEq, Eq)]
pub enum ArcOccupancy {
    /// Bitmask fast path for `n ≤ 128`.
    Small {
        /// Occupied-edge bitmask; bit `i` = ring edge `e_i`.
        mask: u128,
        /// Ring size.
        n: u32,
    },
    /// Bitset for large rings.
    Large {
        /// 64-bit words of the occupied-edge bitset.
        words: Vec<u64>,
        /// Ring size.
        n: u32,
    },
}

impl ArcOccupancy {
    /// Empty occupancy over the edges of `ring`.
    pub fn new(ring: Ring) -> Self {
        let n = ring.n();
        if n <= 128 {
            ArcOccupancy::Small { mask: 0, n }
        } else {
            ArcOccupancy::Large {
                words: vec![0; (n as usize).div_ceil(64)],
                n,
            }
        }
    }

    /// Ring size.
    #[inline]
    pub fn n(&self) -> u32 {
        match self {
            ArcOccupancy::Small { n, .. } | ArcOccupancy::Large { n, .. } => *n,
        }
    }

    /// Number of occupied edges.
    pub fn occupied(&self) -> u32 {
        match self {
            ArcOccupancy::Small { mask, .. } => mask.count_ones(),
            ArcOccupancy::Large { words, .. } => words.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// Whether ring edge `e` is occupied.
    #[inline]
    pub fn is_occupied(&self, e: u32) -> bool {
        match self {
            ArcOccupancy::Small { mask, .. } => mask >> e & 1 == 1,
            ArcOccupancy::Large { words, .. } => words[e as usize / 64] >> (e % 64) & 1 == 1,
        }
    }

    /// Bitmask of an arc on a small ring.
    fn small_arc_mask(n: u32, arc: &RingArc) -> u128 {
        let len = arc.len();
        let start = arc.start();
        if len == n {
            if n == 128 {
                return u128::MAX;
            }
            return (1u128 << n) - 1;
        }
        let base = (1u128 << len) - 1; // len < n <= 128
        let rot = base << start;
        let wrap = if start + len > n { base >> (n - start) } else { 0 };
        (rot | wrap) & if n == 128 { u128::MAX } else { (1u128 << n) - 1 }
    }

    /// Attempts to place `arc`; returns `false` (leaving the set unchanged)
    /// if any of its edges is already occupied.
    pub fn try_place(&mut self, ring: Ring, arc: &RingArc) -> bool {
        match self {
            ArcOccupancy::Small { mask, n } => {
                let am = Self::small_arc_mask(*n, arc);
                if *mask & am != 0 {
                    return false;
                }
                *mask |= am;
                true
            }
            ArcOccupancy::Large { words, .. } => {
                if arc.edges(ring).any(|e| words[e as usize / 64] >> (e % 64) & 1 == 1) {
                    return false;
                }
                for e in arc.edges(ring) {
                    words[e as usize / 64] |= 1 << (e % 64);
                }
                true
            }
        }
    }

    /// Removes a previously placed arc.
    ///
    /// # Panics
    /// Debug-asserts that the arc's edges were occupied.
    pub fn remove(&mut self, ring: Ring, arc: &RingArc) {
        match self {
            ArcOccupancy::Small { mask, n } => {
                let am = Self::small_arc_mask(*n, arc);
                debug_assert_eq!(*mask & am, am, "removing unplaced arc {arc:?}");
                *mask &= !am;
            }
            ArcOccupancy::Large { words, .. } => {
                for e in arc.edges(ring) {
                    debug_assert!(
                        words[e as usize / 64] >> (e % 64) & 1 == 1,
                        "removing unplaced arc {arc:?}"
                    );
                    words[e as usize / 64] &= !(1 << (e % 64));
                }
            }
        }
    }

    /// Clears all occupancy.
    pub fn clear(&mut self) {
        match self {
            ArcOccupancy::Small { mask, .. } => *mask = 0,
            ArcOccupancy::Large { words, .. } => words.iter_mut().for_each(|w| *w = 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_place_remove_roundtrip() {
        let ring = Ring::new(10);
        let mut occ = ArcOccupancy::new(ring);
        let a = RingArc::new(ring, 8, 4); // edges 8,9,0,1
        assert!(occ.try_place(ring, &a));
        assert_eq!(occ.occupied(), 4);
        assert!(occ.is_occupied(9) && occ.is_occupied(0));
        assert!(!occ.is_occupied(2));
        // Overlapping placement fails atomically.
        let b = RingArc::new(ring, 1, 2);
        assert!(!occ.try_place(ring, &b));
        assert_eq!(occ.occupied(), 4);
        // Disjoint placement succeeds.
        let c = RingArc::new(ring, 2, 6);
        assert!(occ.try_place(ring, &c));
        assert_eq!(occ.occupied(), 10);
        occ.remove(ring, &a);
        assert_eq!(occ.occupied(), 6);
        assert!(!occ.is_occupied(8));
    }

    #[test]
    fn large_ring_matches_small_semantics() {
        // Same scenario on n=200 (Vec path) and n=100 (mask path), shifted.
        let small = Ring::new(100);
        let large = Ring::new(200);
        let mut so = ArcOccupancy::new(small);
        let mut lo = ArcOccupancy::new(large);
        for (ring, occ) in [(small, &mut so), (large, &mut lo)] {
            let a = RingArc::new(ring, ring.n() - 3, 7);
            assert!(occ.try_place(ring, &a));
            assert!(!occ.try_place(ring, &RingArc::new(ring, 0, 1)));
            assert_eq!(occ.occupied(), 7);
            occ.remove(ring, &a);
            assert_eq!(occ.occupied(), 0);
        }
    }

    #[test]
    fn full_ring_masks() {
        for n in [3u32, 64, 127, 128] {
            let ring = Ring::new(n);
            let mut occ = ArcOccupancy::new(ring);
            let a = RingArc::new(ring, 1 % n, n);
            assert!(occ.try_place(ring, &a));
            assert_eq!(occ.occupied(), n);
            for e in 0..n {
                assert!(occ.is_occupied(e));
            }
            occ.clear();
            assert_eq!(occ.occupied(), 0);
        }
    }

    #[test]
    fn boundary_128_vs_129() {
        assert!(matches!(ArcOccupancy::new(Ring::new(128)), ArcOccupancy::Small { .. }));
        assert!(matches!(ArcOccupancy::new(Ring::new(129)), ArcOccupancy::Large { .. }));
    }
}
