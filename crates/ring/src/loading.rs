//! The ring loading problem — the unprotected routing baseline.
//!
//! The paper splits optical-layer planning into a *routing problem* and
//! a *resource allocation problem*. For the covering constructions the
//! routing is forced (winding tiles), but the natural baseline — route
//! every demand individually, no protection — is the classical **ring
//! loading problem**: choose, per demand, one of its two arcs so that
//! the maximum link load is minimized. The optimum `L*` lower-bounds the
//! per-link capacity of *any* unprotected design and calibrates the
//! protection premium measured in experiment E11.
//!
//! Three solvers, strongest-first guarantees:
//!
//! * [`optimal_loading`] — exact branch & bound (demands longest-first,
//!   load-bound pruning); practical for the workspace's instance sizes;
//! * [`local_search_loading`] — single-flip hill climbing from the
//!   shortest-arc start (fast, near-optimal in practice);
//! * [`shortest_loading`] — all demands on shortest arcs (the classic
//!   2-approximation).

use crate::{Chord, Ring, RingArc};
use cyclecover_graph::Edge;

/// A complete arc assignment with its link-load profile.
#[derive(Clone, Debug)]
pub struct Loading {
    /// One arc per demand, parallel to the input.
    pub arcs: Vec<RingArc>,
    /// Load per ring edge.
    pub load: Vec<u32>,
    /// Maximum link load (the objective).
    pub max_load: u32,
}

impl Loading {
    fn from_arcs(ring: Ring, arcs: Vec<RingArc>) -> Self {
        let mut load = vec![0u32; ring.n() as usize];
        for a in &arcs {
            for e in a.edges(ring) {
                load[e as usize] += 1;
            }
        }
        let max_load = load.iter().copied().max().unwrap_or(0);
        Loading {
            arcs,
            load,
            max_load,
        }
    }
}

/// Routes every demand on its shortest arc (diameter ties clockwise).
pub fn shortest_loading(ring: Ring, demands: &[Edge]) -> Loading {
    let arcs = demands
        .iter()
        .map(|e| Chord::new(ring, e.u(), e.v()).shortest_arc(ring))
        .collect();
    Loading::from_arcs(ring, arcs)
}

/// Hill climbing from the shortest-arc start: repeatedly flip the single
/// demand that most reduces the maximum load (ties: largest secondary
/// improvement), until no flip helps. Deterministic.
pub fn local_search_loading(ring: Ring, demands: &[Edge]) -> Loading {
    let mut cur = shortest_loading(ring, demands);
    loop {
        let mut best: Option<(usize, u32, u64)> = None; // (idx, new_max, new_sq)
        for i in 0..cur.arcs.len() {
            let flipped = cur.arcs[i].complement(ring);
            // Apply flip to a scratch load vector.
            let mut load = cur.load.clone();
            for e in cur.arcs[i].edges(ring) {
                load[e as usize] -= 1;
            }
            for e in flipped.edges(ring) {
                load[e as usize] += 1;
            }
            let new_max = load.iter().copied().max().unwrap_or(0);
            // Secondary criterion — sum of squared loads — lets the search
            // walk across max-load plateaus toward balance.
            let new_sq: u64 = load.iter().map(|&l| (l as u64) * (l as u64)).sum();
            let cur_sq: u64 = cur.load.iter().map(|&l| (l as u64) * (l as u64)).sum();
            if new_max < cur.max_load || (new_max == cur.max_load && new_sq < cur_sq) {
                let better = match best {
                    None => true,
                    Some((_, bm, bs)) => new_max < bm || (new_max == bm && new_sq < bs),
                };
                if better {
                    best = Some((i, new_max, new_sq));
                }
            }
        }
        match best {
            Some((i, _, _)) => {
                let flipped = cur.arcs[i].complement(ring);
                for e in cur.arcs[i].edges(ring) {
                    cur.load[e as usize] -= 1;
                }
                for e in flipped.edges(ring) {
                    cur.load[e as usize] += 1;
                }
                cur.arcs[i] = flipped;
                cur.max_load = cur.load.iter().copied().max().unwrap_or(0);
            }
            None => return cur,
        }
    }
}

/// Exact minimum-max-load assignment by branch & bound. Demands are
/// ordered longest-first (their choices constrain the most); a branch is
/// pruned when its partial max load already reaches the incumbent. The
/// search is exhaustive — the result is the true optimum `L*` — but
/// exponential in the worst case; `node_budget` caps the search
/// (`None` is returned on exhaustion, never a wrong answer).
pub fn optimal_loading(ring: Ring, demands: &[Edge], node_budget: u64) -> Option<Loading> {
    let n = ring.n() as usize;
    let mut order: Vec<usize> = (0..demands.len()).collect();
    let chords: Vec<Chord> = demands
        .iter()
        .map(|e| Chord::new(ring, e.u(), e.v()))
        .collect();
    order.sort_by_key(|&i| std::cmp::Reverse(chords[i].distance(ring)));

    // Incumbent from local search (a strong upper bound shrinks the tree).
    let incumbent = local_search_loading(ring, demands);
    let mut best_max = incumbent.max_load;
    let mut best_arcs: Vec<RingArc> = incumbent.arcs.clone();

    struct Bb<'a> {
        ring: Ring,
        chords: &'a [Chord],
        order: &'a [usize],
        load: Vec<u32>,
        chosen: Vec<Option<RingArc>>,
        budget: u64,
        exhausted: bool,
    }
    impl Bb<'_> {
        fn place(&mut self, pos: usize, best_max: &mut u32, best_arcs: &mut Vec<RingArc>) {
            if self.budget == 0 {
                self.exhausted = true;
                return;
            }
            self.budget -= 1;
            if pos == self.order.len() {
                let cur = self.load.iter().copied().max().unwrap_or(0);
                if cur < *best_max {
                    *best_max = cur;
                    *best_arcs = self.chosen.iter().map(|a| a.unwrap()).collect();
                }
                return;
            }
            let i = self.order[pos];
            let c = self.chords[i];
            for arc in c.arcs(self.ring) {
                // Partial bound: max load if we commit this arc.
                let peak = arc
                    .edges(self.ring)
                    .map(|e| self.load[e as usize] + 1)
                    .max()
                    .unwrap_or(0)
                    .max(self.load.iter().copied().max().unwrap_or(0));
                if peak >= *best_max {
                    continue;
                }
                for e in arc.edges(self.ring) {
                    self.load[e as usize] += 1;
                }
                self.chosen[i] = Some(arc);
                self.place(pos + 1, best_max, best_arcs);
                self.chosen[i] = None;
                for e in arc.edges(self.ring) {
                    self.load[e as usize] -= 1;
                }
                if self.exhausted {
                    return;
                }
            }
        }
    }

    let mut bb = Bb {
        ring,
        chords: &chords,
        order: &order,
        load: vec![0u32; n],
        chosen: vec![None; demands.len()],
        budget: node_budget,
        exhausted: false,
    };
    bb.place(0, &mut best_max, &mut best_arcs);
    if bb.exhausted {
        return None;
    }
    Some(Loading::from_arcs(ring, best_arcs))
}

/// The trivial lower bound on `L*`: average load under *any* assignment
/// is at least `Σ dist / n` (each demand needs at least its shortest
/// distance in edge slots), so `L* ≥ ⌈Σ dist / n⌉`.
pub fn loading_lower_bound(ring: Ring, demands: &[Edge]) -> u32 {
    let total: u64 = demands
        .iter()
        .map(|e| Chord::new(ring, e.u(), e.v()).distance(ring) as u64)
        .sum();
    total.div_ceil(ring.n() as u64) as u32
}

/// All requests of `K_n`, the paper's instance.
pub fn all_to_all_demands(ring: Ring) -> Vec<Edge> {
    (0..ring.n())
        .flat_map(|u| ((u + 1)..ring.n()).map(move |v| Edge::new(u, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_chain_is_monotone() {
        // optimal ≤ local ≤ shortest, all ≥ lower bound.
        for n in [5u32, 6, 7, 8, 9] {
            let ring = Ring::new(n);
            let demands = all_to_all_demands(ring);
            let s = shortest_loading(ring, &demands);
            let l = local_search_loading(ring, &demands);
            let o = optimal_loading(ring, &demands, 50_000_000).expect("small instance");
            let lb = loading_lower_bound(ring, &demands);
            assert!(o.max_load <= l.max_load, "n={n}");
            assert!(l.max_load <= s.max_load, "n={n}");
            assert!(o.max_load as u64 >= lb as u64, "n={n}");
        }
    }

    #[test]
    fn all_to_all_shortest_is_already_optimal_on_odd_rings() {
        // Odd n: every demand has a strict shortest arc and the load is
        // perfectly symmetric — shortest = optimal.
        for n in [5u32, 7, 9] {
            let ring = Ring::new(n);
            let demands = all_to_all_demands(ring);
            let s = shortest_loading(ring, &demands);
            let o = optimal_loading(ring, &demands, 50_000_000).unwrap();
            assert_eq!(s.max_load, o.max_load, "n={n}");
        }
    }

    #[test]
    fn loads_account_every_hop() {
        let ring = Ring::new(8);
        let demands = all_to_all_demands(ring);
        let s = shortest_loading(ring, &demands);
        let total_hops: u32 = s.load.iter().sum();
        let expect: u32 = demands
            .iter()
            .map(|e| Chord::new(ring, e.u(), e.v()).distance(ring))
            .sum();
        assert_eq!(total_hops, expect);
    }

    #[test]
    fn single_demand_optimal_takes_shortest() {
        let ring = Ring::new(10);
        let demands = vec![Edge::new(0, 3)];
        let o = optimal_loading(ring, &demands, 1_000).unwrap();
        assert_eq!(o.max_load, 1);
        assert_eq!(o.arcs[0].len(), 3);
    }

    #[test]
    fn skewed_instance_beats_shortest() {
        // Demands piled on one side: shortest routing overloads the short
        // side; the optimum spreads to the far side.
        let ring = Ring::new(8);
        let demands = vec![
            Edge::new(0, 3),
            Edge::new(1, 3),
            Edge::new(2, 3),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(0, 1),
        ];
        let s = shortest_loading(ring, &demands);
        let o = optimal_loading(ring, &demands, 1_000_000).unwrap();
        assert!(o.max_load < s.max_load, "{} !< {}", o.max_load, s.max_load);
        let l = local_search_loading(ring, &demands);
        assert!(l.max_load <= s.max_load);
    }

    #[test]
    fn empty_demands() {
        let ring = Ring::new(5);
        let s = shortest_loading(ring, &[]);
        assert_eq!(s.max_load, 0);
        assert_eq!(loading_lower_bound(ring, &[]), 0);
        let o = optimal_loading(ring, &[], 10).unwrap();
        assert_eq!(o.max_load, 0);
    }

    #[test]
    fn tiny_budget_returns_none() {
        let ring = Ring::new(12);
        let demands = all_to_all_demands(ring);
        // Budget 1 cannot finish (needs > 1 node) — but local search
        // incumbent might already be optimal; exhaustion must yield None
        // regardless (no false certificates).
        assert!(optimal_loading(ring, &demands, 1).is_none());
    }
}
