//! The ring `C_n` and its modular arithmetic.

use cyclecover_graph::{builders, Graph, Vertex};
use std::fmt;

/// The physical ring topology `C_n`.
///
/// A lightweight value type: it only stores `n` and provides the modular
/// geometry every other type needs. Vertices are `0..n`; ring edge `e_i`
/// joins `i` and `i+1 mod n` and is identified by index `i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ring {
    n: u32,
}

impl Ring {
    /// Ring on `n ≥ 3` vertices.
    ///
    /// # Panics
    /// Panics if `n < 3`.
    pub fn new(n: u32) -> Self {
        assert!(n >= 3, "ring C_n needs n >= 3, got {n}");
        Ring { n }
    }

    /// Number of vertices (= number of ring edges).
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// `x mod n` for possibly-large `x`.
    #[inline]
    pub fn reduce(&self, x: u64) -> u32 {
        (x % self.n as u64) as u32
    }

    /// `a + b mod n` for vertices `a, b < n`.
    #[inline]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        let s = a + b;
        if s >= self.n {
            s - self.n
        } else {
            s
        }
    }

    /// `a − b mod n` for vertices `a, b < n`.
    #[inline]
    pub fn sub(&self, a: u32, b: u32) -> u32 {
        if a >= b {
            a - b
        } else {
            a + self.n - b
        }
    }

    /// Clockwise gap from `a` to `b`: the length of the arc `a → b` in the
    /// direction of increasing vertex numbers. Zero iff `a == b`.
    #[inline]
    pub fn cw_gap(&self, a: u32, b: u32) -> u32 {
        self.sub(b, a)
    }

    /// Ring distance `min(cw_gap, ccw_gap)` — the length of a shortest path
    /// between `a` and `b` along the ring.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let d = self.cw_gap(a, b);
        d.min(self.n - d)
    }

    /// Maximum possible distance, `⌊n/2⌋` (the *diameter*).
    #[inline]
    pub fn diameter(&self) -> u32 {
        self.n / 2
    }

    /// Whether distance class `d` is a diameter class with non-unique
    /// shortest paths (`n` even and `d = n/2`).
    #[inline]
    pub fn is_diameter_class(&self, d: u32) -> bool {
        self.n.is_multiple_of(2) && d == self.n / 2
    }

    /// Number of distinct chords (unordered vertex pairs) at distance `d`.
    ///
    /// `n` per class except the diameter class of an even ring, which has
    /// `n/2`.
    pub fn chords_in_class(&self, d: u32) -> u32 {
        assert!(d >= 1 && d <= self.diameter(), "distance class {d} out of range");
        if self.is_diameter_class(d) {
            self.n / 2
        } else {
            self.n
        }
    }

    /// Sum of ring distances over all unordered vertex pairs of `K_n`.
    ///
    /// This is the total shortest-path load of the all-to-all instance and
    /// the numerator of the paper's capacity lower bound:
    /// `ρ(n) ≥ ⌈Σ dist / n⌉` (each DRC cycle uses ≤ n ring edges).
    pub fn total_pair_distance(&self) -> u64 {
        let n = self.n as u64;
        if n % 2 == 1 {
            // n = 2p+1: each class d ∈ 1..=p has n chords: n·p(p+1)/2.
            let p = (n - 1) / 2;
            n * p * (p + 1) / 2
        } else {
            // n = 2p: classes 1..p−1 have n chords, the diameter class has p.
            let p = n / 2;
            n * p * (p - 1) / 2 + p * p
        }
    }

    /// The ring as an explicit [`Graph`] (`C_n`).
    pub fn to_graph(&self) -> Graph {
        builders::cycle(self.n as usize)
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.n
    }
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C_{}", self.n)
    }
}

impl fmt::Display for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C_{}", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_helpers() {
        let r = Ring::new(7);
        assert_eq!(r.add(5, 4), 2);
        assert_eq!(r.sub(2, 5), 4);
        assert_eq!(r.cw_gap(5, 2), 4);
        assert_eq!(r.cw_gap(2, 5), 3);
        assert_eq!(r.reduce(23), 2);
    }

    #[test]
    fn distances_odd_even() {
        let r7 = Ring::new(7);
        assert_eq!(r7.distance(0, 3), 3);
        assert_eq!(r7.distance(0, 4), 3);
        assert_eq!(r7.diameter(), 3);
        assert!(!r7.is_diameter_class(3));

        let r8 = Ring::new(8);
        assert_eq!(r8.distance(1, 5), 4);
        assert!(r8.is_diameter_class(4));
        assert_eq!(r8.chords_in_class(4), 4);
        assert_eq!(r8.chords_in_class(3), 8);
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn too_small() {
        let _ = Ring::new(2);
    }

    #[test]
    fn total_pair_distance_matches_bruteforce() {
        for n in 3u32..=40 {
            let r = Ring::new(n);
            let mut brute = 0u64;
            for u in 0..n {
                for v in (u + 1)..n {
                    brute += r.distance(u, v) as u64;
                }
            }
            assert_eq!(r.total_pair_distance(), brute, "n={n}");
        }
    }

    #[test]
    fn ring_graph_shape() {
        let g = Ring::new(9).to_graph();
        assert_eq!(g.vertex_count(), 9);
        assert_eq!(g.edge_count(), 9);
    }
}
