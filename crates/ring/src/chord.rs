//! Chords: requests embedded on the ring.

use crate::{Ring, RingArc};
use cyclecover_graph::Edge;
use std::fmt;

/// A *chord* of the ring: an unordered pair of distinct ring vertices,
/// i.e. a request of the logical graph viewed geometrically.
///
/// A chord at clockwise gap `g` from `u` can be routed by exactly two arcs:
/// clockwise from `u` (length `g`) or clockwise from `v` (length `n − g`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Chord {
    u: u32,
    v: u32,
}

impl Chord {
    /// Chord `{a, b}`, normalized so `u() < v()`.
    ///
    /// # Panics
    /// Panics if `a == b` or out of range.
    pub fn new(ring: Ring, a: u32, b: u32) -> Self {
        assert!(a < ring.n() && b < ring.n(), "chord ({a},{b}) out of range");
        assert_ne!(a, b, "degenerate chord ({a},{a})");
        Chord {
            u: a.min(b),
            v: a.max(b),
        }
    }

    /// Smaller endpoint.
    #[inline]
    pub fn u(&self) -> u32 {
        self.u
    }

    /// Larger endpoint.
    #[inline]
    pub fn v(&self) -> u32 {
        self.v
    }

    /// Ring distance of the chord (its *distance class*).
    #[inline]
    pub fn distance(&self, ring: Ring) -> u32 {
        ring.distance(self.u, self.v)
    }

    /// The clockwise arc from `u` to `v`.
    pub fn cw_arc(&self, ring: Ring) -> RingArc {
        RingArc::new(ring, self.u, ring.cw_gap(self.u, self.v))
    }

    /// The clockwise arc from `v` to `u` (the "other way around").
    pub fn ccw_arc(&self, ring: Ring) -> RingArc {
        RingArc::new(ring, self.v, ring.cw_gap(self.v, self.u))
    }

    /// Both candidate arcs, shortest first (ties: `cw_arc` first).
    pub fn arcs(&self, ring: Ring) -> [RingArc; 2] {
        let a = self.cw_arc(ring);
        let b = self.ccw_arc(ring);
        if a.len() <= b.len() {
            [a, b]
        } else {
            [b, a]
        }
    }

    /// The shortest-path arc (for even `n` diameters, `cw_arc` wins the tie).
    pub fn shortest_arc(&self, ring: Ring) -> RingArc {
        self.arcs(ring)[0]
    }

    /// As a logical-graph [`Edge`].
    pub fn to_edge(&self) -> Edge {
        Edge::new(self.u, self.v)
    }

    /// From a logical-graph [`Edge`].
    pub fn from_edge(ring: Ring, e: Edge) -> Self {
        Chord::new(ring, e.u(), e.v())
    }
}

impl fmt::Debug for Chord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chord({},{})", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_complement_each_other() {
        let ring = Ring::new(9);
        let c = Chord::new(ring, 7, 2);
        assert_eq!((c.u(), c.v()), (2, 7));
        let cw = c.cw_arc(ring); // 2 -> 7: length 5
        let ccw = c.ccw_arc(ring); // 7 -> 2: length 4
        assert_eq!(cw.len(), 5);
        assert_eq!(ccw.len(), 4);
        assert!(!cw.overlaps(ring, &ccw));
        assert_eq!(cw.len() + ccw.len(), 9);
        assert_eq!(c.shortest_arc(ring), ccw);
        assert_eq!(c.distance(ring), 4);
    }

    #[test]
    fn diameter_tie_break() {
        let ring = Ring::new(8);
        let c = Chord::new(ring, 1, 5);
        let [first, second] = c.arcs(ring);
        assert_eq!(first.len(), 4);
        assert_eq!(second.len(), 4);
        assert_eq!(first.start(), 1); // cw first on ties
        assert_eq!(second.start(), 5);
    }

    #[test]
    fn edge_roundtrip() {
        let ring = Ring::new(6);
        let c = Chord::new(ring, 4, 0);
        let e = c.to_edge();
        assert_eq!(Chord::from_edge(ring, e), c);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_degenerate() {
        let _ = Chord::new(Ring::new(5), 3, 3);
    }
}
