//! DRC routing: the exhaustive oracle and the winding-lemma fast path.
//!
//! The paper's Disjoint Routing Constraint (DRC): a covering subgraph `I_k`
//! is admissible iff its requests can be assigned pairwise edge-disjoint
//! paths on the physical ring. For a cycle `I_k = (v_0, v_1, …, v_{k−1})`
//! each request `{v_i, v_{i+1}}` has exactly two candidate paths (the two
//! arcs), so DRC feasibility is a search over `2^k` assignments —
//! implemented exactly in [`route_order`] / [`route_cycle`].
//!
//! The *winding lemma* (derived for this reproduction, §2.1 of `DESIGN.md`)
//! collapses the search: a cycle is DRC-routable iff its cyclic vertex order
//! agrees with the ring order in one of the two directions, i.e. iff the sum
//! of clockwise gaps along the cycle is `n` (winds once clockwise) or
//! `(k−1)·n` (the reverse orientation winds once). The consecutive arcs then
//! tile the ring and give the routing — [`winding_routing_order`], O(k).
//!
//! `tests` cross-validate the two on *every* cycle of length 3–5 of rings
//! `n ≤ 9`, and property tests in `cyclecover-core` extend the evidence; the
//! equivalence is also `debug_assert`ed whenever the fast path is consulted.

use crate::{ArcOccupancy, Chord, Ring, RingArc};
use cyclecover_graph::CycleSubgraph;

/// A DRC routing: one arc per cycle edge, pairwise edge-disjoint.
///
/// `arcs[i]` carries the request between `v_i` and `v_{i+1 mod k}` of the
/// vertex order the routing was computed for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrcRouting {
    /// One arc per cycle edge, in cycle order.
    pub arcs: Vec<RingArc>,
}

impl DrcRouting {
    /// Total number of ring edges used (≤ n for a valid routing).
    pub fn load(&self) -> u32 {
        self.arcs.iter().map(RingArc::len).sum()
    }

    /// Validates pairwise edge-disjointness.
    pub fn is_edge_disjoint(&self, ring: Ring) -> bool {
        let mut occ = ArcOccupancy::new(ring);
        self.arcs.iter().all(|a| occ.try_place(ring, a))
    }
}

fn chords_of_order(ring: Ring, verts: &[u32]) -> Vec<Chord> {
    let k = verts.len();
    assert!(k >= 3, "cycle needs >= 3 vertices");
    (0..k)
        .map(|i| Chord::new(ring, verts[i], verts[(i + 1) % k]))
        .collect()
}

/// Exhaustive DRC oracle on an explicit cyclic vertex order: finds an
/// edge-disjoint arc assignment or proves none exists, by depth-first search
/// over the `2^k` choices with occupancy pruning.
///
/// Ground truth — O(2^k) worst case, for validation and small instances.
/// Production paths use [`winding_routing_order`].
pub fn route_order(ring: Ring, verts: &[u32]) -> Option<DrcRouting> {
    let chords = chords_of_order(ring, verts);
    let mut occ = ArcOccupancy::new(ring);
    let mut chosen: Vec<RingArc> = Vec::with_capacity(chords.len());

    fn dfs(
        ring: Ring,
        chords: &[Chord],
        i: usize,
        occ: &mut ArcOccupancy,
        chosen: &mut Vec<RingArc>,
    ) -> bool {
        if i == chords.len() {
            return true;
        }
        for arc in chords[i].arcs(ring) {
            if occ.try_place(ring, &arc) {
                chosen.push(arc);
                if dfs(ring, chords, i + 1, occ, chosen) {
                    return true;
                }
                chosen.pop();
                occ.remove(ring, &arc);
            }
        }
        false
    }

    if dfs(ring, &chords, 0, &mut occ, &mut chosen) {
        Some(DrcRouting { arcs: chosen })
    } else {
        None
    }
}

/// [`route_order`] on a canonical [`CycleSubgraph`].
pub fn route_cycle(ring: Ring, cycle: &CycleSubgraph) -> Option<DrcRouting> {
    route_order(ring, cycle.vertices())
}

/// Direction in which a cycle order winds around the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Winding {
    /// The given order follows increasing ring positions (winds once cw).
    Clockwise,
    /// The reverse order winds once (the given order is "backwards").
    ///
    /// Note [`CycleSubgraph`] canonicalization always orients cycles
    /// clockwise, so this variant only appears for raw vertex orders.
    Counterclockwise,
}

/// Winding fast path on an explicit cyclic order: O(k) check + routing.
///
/// Returns the winding direction and the tiling routing if the cycle winds
/// once in either direction; `None` otherwise — which by the winding lemma
/// means the cycle violates the DRC.
pub fn winding_routing_order(ring: Ring, verts: &[u32]) -> Option<(Winding, DrcRouting)> {
    let k = verts.len();
    assert!(k >= 3, "cycle needs >= 3 vertices");
    let n = ring.n() as u64;
    let total: u64 = (0..k)
        .map(|i| ring.cw_gap(verts[i], verts[(i + 1) % k]) as u64)
        .sum();
    debug_assert_eq!(total % n, 0, "gap sum must be a multiple of n");
    let winds = total / n;
    if winds == 1 {
        let arcs = (0..k)
            .map(|i| RingArc::new(ring, verts[i], ring.cw_gap(verts[i], verts[(i + 1) % k])))
            .collect();
        Some((Winding::Clockwise, DrcRouting { arcs }))
    } else if winds == (k as u64) - 1 {
        // Reverse orientation winds once: route each chord from its far end.
        let arcs = (0..k)
            .map(|i| {
                let a = verts[(i + 1) % k];
                let b = verts[i];
                RingArc::new(ring, a, ring.cw_gap(a, b))
            })
            .collect();
        Some((Winding::Counterclockwise, DrcRouting { arcs }))
    } else {
        None
    }
}

/// [`winding_routing_order`] on a canonical [`CycleSubgraph`].
pub fn winding_routing(ring: Ring, cycle: &CycleSubgraph) -> Option<(Winding, DrcRouting)> {
    winding_routing_order(ring, cycle.vertices())
}

/// Whether the cycle satisfies the DRC (fast path; equals the oracle by the
/// winding lemma, `debug_assert`ed here and cross-validated by the tests).
pub fn is_drc_routable(ring: Ring, cycle: &CycleSubgraph) -> bool {
    let fast = winding_routing(ring, cycle).is_some();
    debug_assert_eq!(
        fast,
        route_cycle(ring, cycle).is_some(),
        "winding lemma violated for {cycle:?} on {ring:?}"
    );
    fast
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example, verbatim: `G = C_4`, `I = K_4` (paper
    /// vertices 1..4 map to 0..3 here).
    ///
    /// * Covering A: the two C4s `(1,2,3,4)` and `(1,3,4,2)` — the second
    ///   has no edge-disjoint routing (requests `(1,3)` and `(2,4)` cannot
    ///   avoid each other).
    /// * Covering B: the C4 `(1,2,3,4)` and the two C3s `(1,2,4)`, `(1,3,4)`
    ///   — every cycle routable.
    #[test]
    fn paper_example_k4_on_c4() {
        let ring = Ring::new(4);
        let straight = CycleSubgraph::new(vec![0, 1, 2, 3]);
        let crossed = CycleSubgraph::new(vec![0, 2, 3, 1]);
        let t1 = CycleSubgraph::new(vec![0, 1, 3]);
        let t2 = CycleSubgraph::new(vec![0, 2, 3]);

        assert!(route_cycle(ring, &straight).is_some());
        assert!(route_cycle(ring, &crossed).is_none(), "crossed C4 must fail DRC");
        assert!(route_cycle(ring, &t1).is_some());
        assert!(route_cycle(ring, &t2).is_some());

        assert!(is_drc_routable(ring, &straight));
        assert!(!is_drc_routable(ring, &crossed));
        assert!(is_drc_routable(ring, &t1));
        assert!(is_drc_routable(ring, &t2));
    }

    #[test]
    fn routings_are_edge_disjoint_and_tile() {
        let ring = Ring::new(9);
        let cyc = CycleSubgraph::new(vec![0, 2, 5, 8]);
        let (w, routing) = winding_routing(ring, &cyc).expect("winding");
        assert_eq!(w, Winding::Clockwise);
        assert!(routing.is_edge_disjoint(ring));
        assert_eq!(routing.load(), 9);
        let oracle = route_cycle(ring, &cyc).expect("oracle agrees");
        assert!(oracle.is_edge_disjoint(ring));
    }

    #[test]
    fn counterclockwise_raw_order_routes() {
        let ring = Ring::new(8);
        // Raw order (0,5,3,1): gaps 5,6,6,7 sum 24 = 3n = (k−1)n → reverse
        // winds once.
        let (w, routing) = winding_routing_order(ring, &[0, 5, 3, 1]).expect("routable");
        assert_eq!(w, Winding::Counterclockwise);
        assert!(routing.is_edge_disjoint(ring));
        assert_eq!(routing.load(), 8);
        // arcs[0] must route chord {0,5}.
        let a = routing.arcs[0];
        assert_eq!(a.start(), 5);
        assert_eq!(a.end(ring), 0);
    }

    /// Exhaustive cross-validation of the winding lemma: for every ring
    /// `n ∈ 4..=9` and every cyclic order of 3..=5 distinct vertices, the
    /// oracle and the fast path agree.
    #[test]
    fn winding_lemma_exhaustive_small() {
        let mut checked = 0u64;
        for n in 4u32..=9 {
            let ring = Ring::new(n);
            for k in 3usize..=5.min(n as usize) {
                let mut tuple: Vec<u32> = Vec::with_capacity(k);
                enumerate_orders(n, k, &mut tuple, &mut |order| {
                    let oracle = route_order(ring, order).is_some();
                    let fast = winding_routing_order(ring, order).is_some();
                    assert_eq!(oracle, fast, "n={n} order={order:?}");
                    checked += 1;
                });
            }
        }
        assert_eq!(checked, 32_502, "exhaustive sweep size changed: {checked}");
    }

    /// Any routing the oracle returns is edge-disjoint with load ≤ n.
    #[test]
    fn oracle_routings_valid() {
        let ring = Ring::new(7);
        for a in 1..7u32 {
            for b in (a + 1)..7u32 {
                let cyc = CycleSubgraph::new(vec![0, a, b]);
                let r = route_cycle(ring, &cyc).expect("triangles always route");
                assert!(r.is_edge_disjoint(ring));
                assert!(r.load() <= 7);
            }
        }
    }

    /// All triangles are DRC-routable on any ring (3 points on a circle are
    /// always in circular order).
    #[test]
    fn triangles_always_route() {
        for n in 4u32..=12 {
            let ring = Ring::new(n);
            for a in 1..n {
                for b in (a + 1)..n {
                    let cyc = CycleSubgraph::new(vec![0, a, b]);
                    assert!(is_drc_routable(ring, &cyc), "triangle (0,{a},{b}) on C_{n}");
                }
            }
        }
    }

    /// Enumerates all ordered tuples of `k` distinct vertices of `0..n`.
    fn enumerate_orders(n: u32, k: usize, tuple: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        if tuple.len() == k {
            f(tuple);
            return;
        }
        for v in 0..n {
            if !tuple.contains(&v) {
                tuple.push(v);
                enumerate_orders(n, k, tuple, f);
                tuple.pop();
            }
        }
    }
}
