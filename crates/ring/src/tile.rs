//! Winding tiles: the canonical geometry of DRC-routable cycles.

use crate::{Chord, Ring, RingArc};
use cyclecover_graph::CycleSubgraph;
use std::fmt;

/// A *winding tile*: a set `S` of `k ≥ 3` ring vertices, interpreted as the
/// cycle that visits the vertices of `S` in ring order.
///
/// Its *chords* are the ring-consecutive pairs of `S` and its *arcs* are the
/// gaps between consecutive vertices; the arcs partition the ring edges
/// (they "wind once"), so routing each chord along its gap arc is always
/// edge-disjoint: **every tile is a DRC-routable cycle**, and by the winding
/// lemma (see `routing`), every DRC-routable cycle is a tile.
///
/// Stored as the sorted vertex list; the gap sequence `g_i = v_{i+1} − v_i`
/// (cyclically, mod `n`) always sums to exactly `n`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tile {
    verts: Vec<u32>,
}

impl Tile {
    /// Builds a tile from a vertex set (any order; sorted internally).
    ///
    /// # Panics
    /// Panics if fewer than 3 vertices, repeats, or out of range.
    pub fn from_vertices(ring: Ring, mut verts: Vec<u32>) -> Self {
        assert!(verts.len() >= 3, "tile needs >= 3 vertices");
        assert!(verts.len() <= ring.n() as usize, "more vertices than ring positions");
        verts.sort_unstable();
        assert!(
            verts.windows(2).all(|w| w[0] != w[1]),
            "tile has repeated vertices: {verts:?}"
        );
        assert!(*verts.last().unwrap() < ring.n(), "tile vertex out of range");
        Tile { verts }
    }

    /// Builds a tile from a start vertex and a clockwise gap sequence.
    ///
    /// `from_gaps(ring, s, [g1, g2, g3])` is the tile
    /// `{s, s+g1, s+g1+g2}` — the gaps must be ≥ 1 and sum to exactly `n`
    /// (wind once).
    ///
    /// # Panics
    /// Panics if any gap is 0 or the gaps don't sum to `n`.
    pub fn from_gaps(ring: Ring, start: u32, gaps: &[u32]) -> Self {
        assert!(gaps.len() >= 3, "tile needs >= 3 gaps");
        assert!(gaps.iter().all(|&g| g >= 1), "gaps must be >= 1: {gaps:?}");
        let total: u64 = gaps.iter().map(|&g| g as u64).sum();
        assert_eq!(
            total,
            ring.n() as u64,
            "gaps {gaps:?} must sum to n={} (wind once)",
            ring.n()
        );
        let mut verts = Vec::with_capacity(gaps.len());
        let mut v = start % ring.n();
        for &g in gaps {
            verts.push(v);
            v = ring.add(v, g);
        }
        Tile::from_vertices(ring, verts)
    }

    /// Number of vertices (= chords = arcs).
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Tiles always have ≥ 3 vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Vertices in increasing ring order.
    #[inline]
    pub fn vertices(&self) -> &[u32] {
        &self.verts
    }

    /// Clockwise gap sequence starting at the smallest vertex; sums to `n`.
    pub fn gaps(&self, ring: Ring) -> Vec<u32> {
        let k = self.verts.len();
        (0..k)
            .map(|i| ring.cw_gap(self.verts[i], self.verts[(i + 1) % k]))
            .collect()
    }

    /// The `k` chords (ring-consecutive pairs).
    pub fn chords(&self, ring: Ring) -> Vec<Chord> {
        let k = self.verts.len();
        (0..k)
            .map(|i| Chord::new(ring, self.verts[i], self.verts[(i + 1) % k]))
            .collect()
    }

    /// The chords as raw `(u, v)` endpoint pairs with `u < v`, without
    /// allocating or constructing [`Chord`] values — the cheap iterator the
    /// solver uses when precomputing per-tile metadata. Pairs come in the
    /// same order as [`Tile::chords`].
    pub fn chord_pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let k = self.verts.len();
        (0..k).map(move |i| {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % k];
            (a.min(b), a.max(b))
        })
    }

    /// The `k` routing arcs: `arcs()[i]` routes `chords()[i]` clockwise from
    /// `vertices()[i]`. Together they cover every ring edge exactly once.
    pub fn arcs(&self, ring: Ring) -> Vec<RingArc> {
        let k = self.verts.len();
        (0..k)
            .map(|i| {
                RingArc::new(
                    ring,
                    self.verts[i],
                    ring.cw_gap(self.verts[i], self.verts[(i + 1) % k]),
                )
            })
            .collect()
    }

    /// The tile as an ordered logical cycle (`I_k` of the paper).
    pub fn to_cycle(&self) -> CycleSubgraph {
        CycleSubgraph::new(self.verts.clone())
    }

    /// Sum of the *shortest-path* lengths of the tile's chords. Equals `n`
    /// iff every chord's gap arc is a shortest path (always true when every
    /// gap is ≤ ⌊n/2⌋); in general the tile "wastes" `n − shortest_load`
    /// capacity.
    pub fn shortest_load(&self, ring: Ring) -> u32 {
        self.chords(ring).iter().map(|c| c.distance(ring)).sum()
    }

    /// Largest gap (longest arc any chord is routed over).
    pub fn max_gap(&self, ring: Ring) -> u32 {
        self.gaps(ring).into_iter().max().expect("non-empty")
    }
}

impl fmt::Debug for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tile{:?}", self.verts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_sum_to_n_and_roundtrip() {
        let ring = Ring::new(11);
        let t = Tile::from_vertices(ring, vec![9, 2, 5]);
        assert_eq!(t.vertices(), &[2, 5, 9]);
        assert_eq!(t.gaps(ring), vec![3, 4, 4]);
        let t2 = Tile::from_gaps(ring, 2, &[3, 4, 4]);
        assert_eq!(t, t2);
        // from_gaps at a rotated start yields the same tile.
        let t3 = Tile::from_gaps(ring, 5, &[4, 4, 3]);
        assert_eq!(t, t3);
    }

    #[test]
    fn arcs_tile_the_ring() {
        let ring = Ring::new(10);
        let t = Tile::from_gaps(ring, 7, &[2, 3, 1, 4]);
        let arcs = t.arcs(ring);
        let mut covered: Vec<u32> = arcs.iter().flat_map(|a| a.edges(ring)).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chords_match_cycle_edges() {
        let ring = Ring::new(8);
        let t = Tile::from_vertices(ring, vec![1, 4, 6, 7]);
        let cyc = t.to_cycle();
        let mut from_tile: Vec<_> = t.chords(ring).iter().map(|c| c.to_edge()).collect();
        let mut from_cycle: Vec<_> = cyc.edges().collect();
        from_tile.sort_unstable();
        from_cycle.sort_unstable();
        assert_eq!(from_tile, from_cycle);
    }

    #[test]
    fn chord_pairs_match_chords() {
        let ring = Ring::new(11);
        for verts in [vec![0, 4, 7], vec![1, 2, 8, 10], vec![0, 3, 5, 6, 9]] {
            let t = Tile::from_vertices(ring, verts);
            let from_chords: Vec<(u32, u32)> =
                t.chords(ring).iter().map(|c| (c.u(), c.v())).collect();
            let from_pairs: Vec<(u32, u32)> = t.chord_pairs().collect();
            assert_eq!(from_chords, from_pairs);
        }
    }

    #[test]
    fn shortest_load_detects_long_routing() {
        let ring = Ring::new(10);
        // Gap 6 routes a distance-4 chord the long way: load 4+... gaps 6,2,2
        // route chords of distances 4,2,2 → shortest_load 8 < 10.
        let t = Tile::from_gaps(ring, 0, &[6, 2, 2]);
        assert_eq!(t.shortest_load(ring), 8);
        assert_eq!(t.max_gap(ring), 6);
        // All-short tile: load = n.
        let t2 = Tile::from_gaps(ring, 0, &[3, 3, 4]);
        assert_eq!(t2.shortest_load(ring), 10);
    }

    #[test]
    #[should_panic(expected = "sum to n")]
    fn rejects_non_winding_gaps() {
        let _ = Tile::from_gaps(Ring::new(9), 0, &[2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rejects_duplicate_vertices() {
        let _ = Tile::from_vertices(Ring::new(9), vec![1, 1, 3]);
    }
}
