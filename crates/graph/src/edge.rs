//! Normalized undirected edges and edge multisets.

use crate::Vertex;
use std::fmt;

/// An undirected edge: an unordered pair of distinct vertices, stored
/// normalized with `u() < v()`.
///
/// In the paper's terminology an edge of the logical graph is a *(symmetric)
/// request*: a demand for one unit of (bidirectional) traffic between two
/// optical switches.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    u: Vertex,
    v: Vertex,
}

impl Edge {
    /// Creates the edge `{a, b}`, normalizing endpoint order.
    ///
    /// # Panics
    /// Panics if `a == b` (self-loops never occur in this problem domain:
    /// a request from a node to itself needs no capacity).
    #[inline]
    pub fn new(a: Vertex, b: Vertex) -> Self {
        assert_ne!(a, b, "self-loop edge ({a},{a}) is not allowed");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Smaller endpoint.
    #[inline]
    pub fn u(&self) -> Vertex {
        self.u
    }

    /// Larger endpoint.
    #[inline]
    pub fn v(&self) -> Vertex {
        self.v
    }

    /// Both endpoints as a `(small, large)` tuple.
    #[inline]
    pub fn endpoints(&self) -> (Vertex, Vertex) {
        (self.u, self.v)
    }

    /// Whether `x` is one of the endpoints.
    #[inline]
    pub fn is_incident(&self, x: Vertex) -> bool {
        self.u == x || self.v == x
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint.
    #[inline]
    pub fn other(&self, x: Vertex) -> Vertex {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}")
        }
    }

    /// Dense index of this edge among all edges of `K_n` listed in
    /// lexicographic order, i.e. `{0,1}, {0,2}, …, {0,n−1}, {1,2}, …`.
    ///
    /// Used to address flat covering-count arrays without hashing.
    #[inline]
    pub fn dense_index(&self, n: usize) -> usize {
        let (u, v) = (self.u as usize, self.v as usize);
        debug_assert!(v < n, "edge endpoint {v} out of range for n={n}");
        // Sum of row lengths above row u: Σ_{i<u}(n−1−i) = u(2n−u−1)/2, then offset.
        u * (2 * n - u - 1) / 2 + (v - u - 1)
    }

    /// Inverse of [`Edge::dense_index`].
    pub fn from_dense_index(idx: usize, n: usize) -> Self {
        let mut u = 0usize;
        let mut idx = idx;
        loop {
            let row = n - 1 - u;
            if idx < row {
                return Edge::new(u as Vertex, (u + 1 + idx) as Vertex);
            }
            idx -= row;
            u += 1;
            assert!(u < n, "dense index out of range for n={n}");
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{},{}}}", self.u, self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{},{}}}", self.u, self.v)
    }
}

/// A multiset of edges over the vertex set `0..n`, stored as a flat count
/// array indexed by [`Edge::dense_index`].
///
/// This is the bookkeeping structure for coverings: `counts[e]` is the number
/// of covering cycles that contain request `e`. A *covering* requires every
/// count ≥ 1; a *partition* requires every count = 1.
#[derive(Clone, PartialEq, Eq)]
pub struct EdgeMultiset {
    n: usize,
    counts: Vec<u32>,
}

impl EdgeMultiset {
    /// Empty multiset over vertex set `0..n`.
    pub fn new(n: usize) -> Self {
        let m = if n < 2 { 0 } else { n * (n - 1) / 2 };
        EdgeMultiset {
            n,
            counts: vec![0; m],
        }
    }

    /// Number of vertices of the underlying vertex set.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Adds one occurrence of `e`; returns the new count.
    #[inline]
    pub fn insert(&mut self, e: Edge) -> u32 {
        let i = e.dense_index(self.n);
        self.counts[i] += 1;
        self.counts[i]
    }

    /// Removes one occurrence of `e`; returns the new count.
    ///
    /// # Panics
    /// Panics if the count was already zero.
    #[inline]
    pub fn remove(&mut self, e: Edge) -> u32 {
        let i = e.dense_index(self.n);
        assert!(self.counts[i] > 0, "removing absent edge {e}");
        self.counts[i] -= 1;
        self.counts[i]
    }

    /// Multiplicity of `e`.
    #[inline]
    pub fn count(&self, e: Edge) -> u32 {
        self.counts[e.dense_index(self.n)]
    }

    /// Total number of edge occurrences (with multiplicity).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Number of distinct edges present at least once.
    pub fn support_size(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// True iff every edge of `K_n` has multiplicity ≥ `lambda`.
    pub fn covers_complete(&self, lambda: u32) -> bool {
        self.counts.iter().all(|&c| c >= lambda)
    }

    /// True iff every edge of `K_n` has multiplicity exactly `lambda`
    /// (an exact `λ`-fold decomposition).
    pub fn is_exact(&self, lambda: u32) -> bool {
        self.counts.iter().all(|&c| c == lambda)
    }

    /// Edges covered more than `lambda` times, with their excess.
    pub fn overcovered(&self, lambda: u32) -> Vec<(Edge, u32)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > lambda)
            .map(|(i, &c)| (Edge::from_dense_index(i, self.n), c - lambda))
            .collect()
    }

    /// Edges covered fewer than `lambda` times, with their deficiency.
    pub fn undercovered(&self, lambda: u32) -> Vec<(Edge, u32)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c < lambda)
            .map(|(i, &c)| (Edge::from_dense_index(i, self.n), lambda - c))
            .collect()
    }

    /// Iterator over `(edge, count)` pairs with positive count.
    pub fn iter(&self) -> impl Iterator<Item = (Edge, u32)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (Edge::from_dense_index(i, self.n), c))
    }
}

impl fmt::Debug for EdgeMultiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes() {
        let e = Edge::new(5, 2);
        assert_eq!(e.endpoints(), (2, 5));
        assert_eq!(Edge::new(2, 5), e);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_loop() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(1, 7);
        assert_eq!(e.other(1), 7);
        assert_eq!(e.other(7), 1);
        assert!(e.is_incident(1) && e.is_incident(7) && !e.is_incident(2));
    }

    #[test]
    fn dense_index_roundtrip_k7() {
        let n = 7;
        let mut seen = vec![false; n * (n - 1) / 2];
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                let e = Edge::new(u, v);
                let i = e.dense_index(n);
                assert!(!seen[i], "index collision at {e}");
                seen[i] = true;
                assert_eq!(Edge::from_dense_index(i, n), e);
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn dense_index_is_lexicographic() {
        assert_eq!(Edge::new(0, 1).dense_index(5), 0);
        assert_eq!(Edge::new(0, 4).dense_index(5), 3);
        assert_eq!(Edge::new(1, 2).dense_index(5), 4);
        assert_eq!(Edge::new(3, 4).dense_index(5), 9);
    }

    #[test]
    fn multiset_insert_remove_count() {
        let mut m = EdgeMultiset::new(6);
        let e = Edge::new(0, 3);
        assert_eq!(m.count(e), 0);
        assert_eq!(m.insert(e), 1);
        assert_eq!(m.insert(e), 2);
        assert_eq!(m.remove(e), 1);
        assert_eq!(m.count(e), 1);
        assert_eq!(m.total(), 1);
        assert_eq!(m.support_size(), 1);
    }

    #[test]
    #[should_panic(expected = "removing absent edge")]
    fn multiset_remove_absent_panics() {
        let mut m = EdgeMultiset::new(4);
        m.remove(Edge::new(0, 1));
    }

    #[test]
    fn multiset_cover_predicates() {
        let n = 4;
        let mut m = EdgeMultiset::new(n);
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                m.insert(Edge::new(u, v));
            }
        }
        assert!(m.covers_complete(1));
        assert!(m.is_exact(1));
        m.insert(Edge::new(0, 1));
        assert!(m.covers_complete(1));
        assert!(!m.is_exact(1));
        assert_eq!(m.overcovered(1), vec![(Edge::new(0, 1), 1)]);
        assert_eq!(m.undercovered(2).len(), 5);
    }

    #[test]
    fn multiset_tiny_vertex_sets() {
        let m0 = EdgeMultiset::new(0);
        let m1 = EdgeMultiset::new(1);
        assert!(m0.covers_complete(1));
        assert!(m1.covers_complete(1));
        assert_eq!(m0.total(), 0);
        assert_eq!(m1.support_size(), 0);
    }
}
