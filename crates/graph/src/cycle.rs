//! Ordered simple cycles — the subnetworks `I_k` of the paper.

use crate::{Edge, Vertex};
use std::fmt;

/// A simple cycle given by its vertices in cyclic order.
///
/// `CycleSubgraph([v0, v1, …, v_{k−1}])` is the cycle with edges
/// `{v0,v1}, {v1,v2}, …, {v_{k−1},v0}`. Vertices must be distinct and `k ≥ 3`.
///
/// Two `CycleSubgraph`s are equal iff they denote the same cyclic sequence up
/// to rotation and reflection; [`CycleSubgraph::canonical`] picks the unique
/// representative (smallest vertex first, smaller second vertex among the two
/// traversal directions).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CycleSubgraph {
    verts: Vec<Vertex>,
}

impl CycleSubgraph {
    /// Builds a cycle from vertices in cyclic order, canonicalizing the
    /// representation.
    ///
    /// # Panics
    /// Panics if `verts.len() < 3` or vertices repeat.
    pub fn new(verts: Vec<Vertex>) -> Self {
        assert!(verts.len() >= 3, "cycle needs >= 3 vertices, got {}", verts.len());
        let mut sorted = verts.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "cycle has repeated vertices: {verts:?}"
        );
        let mut c = CycleSubgraph { verts };
        c.canonicalize();
        c
    }

    /// The canonical representative of this cycle (already applied by
    /// [`CycleSubgraph::new`], exposed for clarity in tests).
    pub fn canonical(&self) -> &[Vertex] {
        &self.verts
    }

    fn canonicalize(&mut self) {
        let k = self.verts.len();
        // Rotate the minimum vertex to front.
        let (min_pos, _) = self
            .verts
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| v)
            .expect("non-empty");
        self.verts.rotate_left(min_pos);
        // Choose direction: successor must not exceed predecessor.
        if self.verts[1] > self.verts[k - 1] {
            self.verts[1..].reverse();
        }
    }

    /// Number of vertices (= number of edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Always false (cycles have ≥ 3 vertices); included for clippy's sake.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Vertices in (canonical) cyclic order.
    #[inline]
    pub fn vertices(&self) -> &[Vertex] {
        &self.verts
    }

    /// Iterator over the `k` edges of the cycle.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let k = self.verts.len();
        (0..k).map(move |i| Edge::new(self.verts[i], self.verts[(i + 1) % k]))
    }

    /// Whether `v` lies on the cycle.
    pub fn contains(&self, v: Vertex) -> bool {
        self.verts.contains(&v)
    }

    /// The two cycle-neighbors of `v`.
    ///
    /// # Panics
    /// Panics if `v` is not on the cycle.
    pub fn neighbors_of(&self, v: Vertex) -> (Vertex, Vertex) {
        let k = self.verts.len();
        let i = self
            .verts
            .iter()
            .position(|&x| x == v)
            .unwrap_or_else(|| panic!("vertex {v} not on cycle {self:?}"));
        (self.verts[(i + k - 1) % k], self.verts[(i + 1) % k])
    }

    /// Walks the cycle from `from` to `to` *not* using the edge
    /// `{from, via_neighbor}` — i.e. goes the other way around. Returns the
    /// vertex sequence including both endpoints.
    ///
    /// This is the paper's protection mechanism: when the link carrying the
    /// path of request `{from, to}` fails, traffic is rerouted "through the
    /// remaining part of the cycle".
    pub fn detour(&self, from: Vertex, to: Vertex, via_neighbor: Vertex) -> Vec<Vertex> {
        let k = self.verts.len();
        let i = self.verts.iter().position(|&x| x == from).expect("from on cycle");
        // Decide direction: the neighbor we must avoid.
        let fwd = self.verts[(i + 1) % k];
        let step_back = fwd == via_neighbor;
        let mut out = Vec::with_capacity(k);
        let mut pos = i;
        loop {
            out.push(self.verts[pos]);
            if self.verts[pos] == to {
                return out;
            }
            pos = if step_back { (pos + k - 1) % k } else { (pos + 1) % k };
            assert!(out.len() <= k, "detour did not reach {to}");
        }
    }
}

impl fmt::Debug for CycleSubgraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle(")?;
        for (i, v) in self.verts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for CycleSubgraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_rotation_and_reflection_invariant() {
        let a = CycleSubgraph::new(vec![2, 5, 9, 4]);
        let b = CycleSubgraph::new(vec![9, 4, 2, 5]);
        let c = CycleSubgraph::new(vec![4, 9, 5, 2]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.vertices()[0], 2);
        assert!(a.vertices()[1] <= *a.vertices().last().unwrap());
    }

    #[test]
    fn distinct_cycles_differ() {
        // (1,3,4,2) is the paper's crossing quad on K4 — distinct from (1,2,3,4).
        let straight = CycleSubgraph::new(vec![1, 2, 3, 4]);
        let crossed = CycleSubgraph::new(vec![1, 3, 4, 2]);
        assert_ne!(straight, crossed);
    }

    #[test]
    fn edges_of_triangle() {
        let t = CycleSubgraph::new(vec![7, 1, 4]);
        let mut es: Vec<Edge> = t.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![Edge::new(1, 4), Edge::new(1, 7), Edge::new(4, 7)]);
    }

    #[test]
    #[should_panic(expected = "repeated vertices")]
    fn rejects_repeats() {
        let _ = CycleSubgraph::new(vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = ">= 3 vertices")]
    fn rejects_short() {
        let _ = CycleSubgraph::new(vec![1, 2]);
    }

    #[test]
    fn neighbors_and_detour() {
        let c = CycleSubgraph::new(vec![0, 1, 2, 3, 4]);
        let (a, b) = c.neighbors_of(0);
        assert_eq!((a.min(b), a.max(b)), (1, 4));
        // Reroute request {0,1} avoiding direct edge: 0 -> 4 -> 3 -> 2 -> 1.
        let d = c.detour(0, 1, 1);
        assert_eq!(d, vec![0, 4, 3, 2, 1]);
        // Other direction.
        let d2 = c.detour(0, 4, 4);
        assert_eq!(d2, vec![0, 1, 2, 3, 4]);
    }
}
