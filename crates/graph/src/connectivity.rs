//! Edge connectivity via Menger's theorem.
//!
//! A survivable physical topology must be 2-edge-connected: every request
//! needs a working path *and* a protection path avoiding any single failed
//! link. The paper assumes this of the ring ("just enough connectivity");
//! the extension topologies (trees of rings, grids, tori) must be audited.
//! [`edge_connectivity`] computes the global minimum cut exactly using the
//! flow engine of [`crate::flow`].

use crate::flow::FlowNetwork;
use crate::{is_connected, Graph, Vertex};

/// Global edge connectivity `λ(g)`: the minimum number of edges whose
/// removal disconnects `g`. Returns 0 for disconnected or single-vertex
/// graphs.
///
/// Uses the standard reduction: fix `s = 0`; `λ = min over t ≠ s` of the
/// `s`–`t` max flow (any global min cut separates 0 from *some* vertex).
/// Cost is `n − 1` unit-capacity Dinic runs — instant at workspace scales.
pub fn edge_connectivity(g: &Graph) -> u32 {
    let n = g.vertex_count();
    if n <= 1 || !is_connected(g) {
        return 0;
    }
    let mut net = FlowNetwork::new(g);
    let mut best = u32::MAX;
    for t in 1..n as Vertex {
        net.reset();
        best = best.min(net.run(0, t));
        if best == 0 {
            break;
        }
    }
    best
}

/// Local edge connectivity `λ(u, v)`: the maximum number of pairwise
/// edge-disjoint `u`–`v` paths (Menger).
///
/// # Panics
/// Panics if `u == v` or either endpoint is out of range.
pub fn local_edge_connectivity(g: &Graph, u: Vertex, v: Vertex) -> u32 {
    crate::flow::max_flow(g, u, v)
}

/// True iff `g` is `k`-edge-connected (`λ(g) ≥ k`). Every graph is
/// 0-edge-connected; a single vertex is not 1-edge-connected here because
/// survivability semantics require at least one *pair* to connect.
pub fn is_k_edge_connected(g: &Graph, k: u32) -> bool {
    if k == 0 {
        return true;
    }
    edge_connectivity(g) >= k
}

/// All bridges of `g`: edges whose removal disconnects their component.
/// Returned as edge indices into `g.edges()`.
///
/// A topology with bridges cannot protect requests crossing them — this
/// is why the paper's subnetworks are cycles. Uses Tarjan's low-link DFS,
/// iterative to stay stack-safe on long paths; parallel edges are never
/// bridges (multiplicity is checked).
pub fn bridges(g: &Graph) -> Vec<u32> {
    let n = g.vertex_count();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut out = Vec::new();
    let mut timer = 0u32;
    // Iterative DFS frame: (vertex, parent edge index, adjacency cursor).
    let mut stack: Vec<(Vertex, u32, usize)> = Vec::new();
    for root in 0..n as Vertex {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, u32::MAX, 0));
        while let Some(&(v, pe, cursor)) = stack.last() {
            match g.incident_edges(v).nth(cursor) {
                Some((ei, w)) => {
                    stack.last_mut().expect("frame exists").2 += 1;
                    if ei == pe {
                        continue; // don't re-traverse the tree edge to the parent
                    }
                    if disc[w as usize] == u32::MAX {
                        disc[w as usize] = timer;
                        low[w as usize] = timer;
                        timer += 1;
                        stack.push((w, ei, 0));
                    } else {
                        low[v as usize] = low[v as usize].min(disc[w as usize]);
                    }
                }
                None => {
                    stack.pop();
                    if let Some(&(u, _, _)) = stack.last() {
                        low[u as usize] = low[u as usize].min(low[v as usize]);
                        if low[v as usize] > disc[u as usize] {
                            out.push(pe);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn cycle_is_exactly_two_connected() {
        for n in [3usize, 5, 8, 16] {
            let g = builders::cycle(n);
            assert_eq!(edge_connectivity(&g), 2, "C_{n}");
            assert!(is_k_edge_connected(&g, 2));
            assert!(!is_k_edge_connected(&g, 3));
            assert!(bridges(&g).is_empty());
        }
    }

    #[test]
    fn complete_graph_connectivity() {
        for n in [3u32, 5, 7] {
            let g = builders::complete(n as usize);
            assert_eq!(edge_connectivity(&g), n - 1, "K_{n}");
        }
    }

    #[test]
    fn path_has_bridges_everywhere() {
        let g = builders::path(5);
        assert_eq!(edge_connectivity(&g), 1);
        assert_eq!(bridges(&g).len(), 4, "every path edge is a bridge");
        assert!(!is_k_edge_connected(&g, 2));
    }

    #[test]
    fn disconnected_graph_is_zero_connected() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert_eq!(edge_connectivity(&g), 0);
        assert!(is_k_edge_connected(&g, 0));
        assert!(!is_k_edge_connected(&g, 1));
    }

    #[test]
    fn barbell_bridge_detected() {
        // Two triangles joined by one edge: that edge is the unique bridge.
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 3);
        let b = g.add_edge(2, 3);
        assert_eq!(edge_connectivity(&g), 1);
        assert_eq!(bridges(&g), vec![b]);
    }

    #[test]
    fn parallel_edge_is_not_a_bridge() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert!(bridges(&g).is_empty());
        assert_eq!(edge_connectivity(&g), 2);
    }

    #[test]
    fn tree_all_edges_are_bridges() {
        // Star K_{1,5}.
        let mut g = Graph::new(6);
        for v in 1..6 {
            g.add_edge(0, v);
        }
        assert_eq!(bridges(&g).len(), 5);
        assert_eq!(edge_connectivity(&g), 1);
    }

    #[test]
    fn local_connectivity_varies_across_pairs() {
        // Triangle with a pendant vertex.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        assert_eq!(local_edge_connectivity(&g, 0, 1), 2);
        assert_eq!(local_edge_connectivity(&g, 0, 3), 1);
    }

    #[test]
    fn single_vertex_and_empty() {
        assert_eq!(edge_connectivity(&Graph::new(1)), 0);
        assert_eq!(edge_connectivity(&Graph::new(0)), 0);
    }
}
