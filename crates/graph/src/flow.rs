//! Unit-capacity maximum flow (Dinic's algorithm) and edge-disjoint paths.
//!
//! The survivability arguments of the paper rest on Menger's theorem: a
//! request between `u` and `v` survives any single link failure iff the
//! physical graph carries two edge-disjoint `u`–`v` paths. On the ring this
//! is immediate (the two arcs); on the extension topologies (trees of
//! rings, grids, tori — the paper's "we are now investigating" section)
//! it must be computed. This module provides the computation:
//!
//! * [`max_flow`] — the number of pairwise edge-disjoint `s`–`t` paths
//!   (= unit-capacity max flow = local edge connectivity, by Menger);
//! * [`edge_disjoint_paths`] — an explicit maximum family of such paths;
//! * [`FlowNetwork`] — the reusable residual-graph engine behind both.
//!
//! Dinic's algorithm on a unit-capacity graph runs in `O(E √E)`; every
//! instance in this workspace (rings, grids, tori with a few thousand
//! edges) solves in microseconds. Storage is flat `Vec`s of arcs indexed
//! by `u32`, per the HPC guides: no per-node allocation, no hashing.

use crate::{Graph, Vertex};

/// A residual flow network over a fixed undirected multigraph.
///
/// Each undirected edge `{u, v}` becomes a *pair* of residual arcs
/// (`u→v` and `v→u`), each of capacity 1; pushing flow along one arc
/// grows the reverse capacity, which models both "use the edge in either
/// direction" and cancellation. The network is rebuilt cheaply per query
/// via [`FlowNetwork::reset`].
pub struct FlowNetwork {
    n: usize,
    /// Arc heads; arc `i` and `i ^ 1` are mutual reverses.
    head: Vec<u32>,
    /// Residual capacities, parallel to `head`.
    cap: Vec<u8>,
    /// `first[v]` lists arc indices leaving `v`.
    first: Vec<Vec<u32>>,
    /// BFS levels, reused across phases.
    level: Vec<u32>,
    /// Per-phase iterator state (current-arc optimization).
    iter: Vec<u32>,
}

const UNREACHED: u32 = u32::MAX;

impl FlowNetwork {
    /// Builds the residual network of `g` with unit capacity per edge.
    pub fn new(g: &Graph) -> Self {
        let n = g.vertex_count();
        let m = g.edge_count();
        let mut head = Vec::with_capacity(2 * m);
        let mut first = vec![Vec::new(); n];
        for e in g.edges() {
            let (u, v) = (e.u(), e.v());
            first[u as usize].push(head.len() as u32);
            head.push(v);
            first[v as usize].push(head.len() as u32);
            head.push(u);
        }
        FlowNetwork {
            n,
            cap: vec![1; head.len()],
            head,
            first,
            level: vec![UNREACHED; n],
            iter: vec![0; n],
        }
    }

    /// Restores every residual capacity to 1 (ready for a fresh query).
    pub fn reset(&mut self) {
        self.cap.fill(1);
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Computes the max `s`–`t` flow (= max number of edge-disjoint
    /// `s`–`t` paths) on the *current* residual capacities, saturating
    /// them in place. Call [`FlowNetwork::reset`] first to query a fresh
    /// graph.
    ///
    /// # Panics
    /// Panics if `s == t` or either endpoint is out of range.
    pub fn run(&mut self, s: Vertex, t: Vertex) -> u32 {
        assert!(s != t, "max flow requires distinct endpoints");
        assert!(
            (s as usize) < self.n && (t as usize) < self.n,
            "flow endpoints ({s},{t}) out of range for n={}",
            self.n
        );
        let mut total = 0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            while self.dfs(s, t) {
                total += 1;
            }
        }
        total
    }

    /// Level graph construction; true iff `t` is reachable.
    fn bfs(&mut self, s: Vertex, t: Vertex) -> bool {
        self.level.fill(UNREACHED);
        self.level[s as usize] = 0;
        let mut queue = std::collections::VecDeque::with_capacity(self.n);
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &a in &self.first[v as usize] {
                let w = self.head[a as usize];
                if self.cap[a as usize] > 0 && self.level[w as usize] == UNREACHED {
                    self.level[w as usize] = self.level[v as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        self.level[t as usize] != UNREACHED
    }

    /// Finds one augmenting path in the level graph (unit capacities make
    /// blocking-flow bookkeeping trivial: each augmentation pushes 1).
    fn dfs(&mut self, v: Vertex, t: Vertex) -> bool {
        if v == t {
            return true;
        }
        while (self.iter[v as usize] as usize) < self.first[v as usize].len() {
            let a = self.first[v as usize][self.iter[v as usize] as usize];
            let w = self.head[a as usize];
            if self.cap[a as usize] > 0
                && self.level[w as usize] == self.level[v as usize] + 1
                && self.dfs(w, t)
            {
                self.cap[a as usize] -= 1;
                self.cap[(a ^ 1) as usize] += 1;
                return true;
            }
            self.iter[v as usize] += 1;
        }
        // Dead end: prune v from this phase.
        self.level[v as usize] = UNREACHED;
        false
    }

    /// After [`FlowNetwork::run`], decomposes the flow into explicit
    /// vertex paths from `s` to `t` (one per flow unit).
    fn extract_paths(&mut self, s: Vertex, t: Vertex, count: u32) -> Vec<Vec<Vertex>> {
        // An arc carries flow iff its residual capacity dropped to 0 while
        // its reverse rose to 2 — but reverse arcs also start at cap 1, so
        // detect "net flow" arcs as cap == 0 (used forward) where the
        // reverse has cap 2, OR cap 0 with reverse cap 1 is impossible
        // after augmentation (pairs always move together). Walk greedily.
        let mut used: Vec<bool> = (0..self.head.len())
            .map(|a| self.cap[a] == 0 && self.cap[a ^ 1] == 2)
            .collect();
        let mut paths = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut path = vec![s];
            let mut v = s;
            while v != t {
                let mut advanced = false;
                for &a in &self.first[v as usize] {
                    if used[a as usize] {
                        used[a as usize] = false;
                        v = self.head[a as usize];
                        path.push(v);
                        advanced = true;
                        break;
                    }
                }
                assert!(advanced, "flow decomposition stuck at vertex {v}");
            }
            paths.push(path);
        }
        paths
    }
}

/// Maximum number of pairwise edge-disjoint `s`–`t` paths in `g`
/// (= unit-capacity max flow; by Menger, the local edge connectivity).
///
/// # Panics
/// Panics if `s == t` or either endpoint is out of range.
pub fn max_flow(g: &Graph, s: Vertex, t: Vertex) -> u32 {
    FlowNetwork::new(g).run(s, t)
}

/// An explicit maximum family of pairwise edge-disjoint `s`–`t` paths.
///
/// Paths are returned as vertex sequences `s, …, t`. The family size
/// equals [`max_flow`]`(g, s, t)`.
pub fn edge_disjoint_paths(g: &Graph, s: Vertex, t: Vertex) -> Vec<Vec<Vertex>> {
    let mut net = FlowNetwork::new(g);
    let f = net.run(s, t);
    net.extract_paths(s, t, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::Edge;

    #[test]
    fn ring_has_two_disjoint_paths_between_any_pair() {
        let g = builders::cycle(9);
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                assert_eq!(max_flow(&g, u, v), 2, "({u},{v})");
            }
        }
    }

    #[test]
    fn complete_graph_flow_is_n_minus_one() {
        for n in [4u32, 6, 9] {
            let g = builders::complete(n as usize);
            assert_eq!(max_flow(&g, 0, n - 1), n - 1, "K_{n}");
        }
    }

    #[test]
    fn path_graph_has_single_path() {
        let g = builders::path(6);
        assert_eq!(max_flow(&g, 0, 5), 1);
        let paths = edge_disjoint_paths(&g, 0, 5);
        assert_eq!(paths, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn disconnected_pair_has_zero_flow() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert_eq!(max_flow(&g, 0, 3), 0);
        assert!(edge_disjoint_paths(&g, 0, 3).is_empty());
    }

    #[test]
    fn parallel_edges_add_capacity() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(max_flow(&g, 0, 1), 3);
    }

    #[test]
    fn extracted_paths_are_edge_disjoint_and_valid() {
        for n in [5u32, 8, 11] {
            let g = builders::complete(n as usize);
            let paths = edge_disjoint_paths(&g, 0, 1);
            assert_eq!(paths.len() as u32, n - 1);
            let mut seen = std::collections::HashSet::new();
            for p in &paths {
                assert_eq!(*p.first().unwrap(), 0);
                assert_eq!(*p.last().unwrap(), 1);
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "missing edge {w:?}");
                    assert!(seen.insert(Edge::new(w[0], w[1])), "edge reused: {w:?}");
                }
            }
        }
    }

    #[test]
    fn flow_respects_bottleneck() {
        // Two K4 blobs joined by a single bridge: flow across = 1.
        let mut g = Graph::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        for u in 4..8u32 {
            for v in (u + 1)..8 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(3, 4);
        assert_eq!(max_flow(&g, 0, 7), 1);
        assert_eq!(max_flow(&g, 0, 3), 3);
    }

    #[test]
    fn reset_allows_reuse() {
        let g = builders::cycle(6);
        let mut net = FlowNetwork::new(&g);
        assert_eq!(net.run(0, 3), 2);
        net.reset();
        assert_eq!(net.run(1, 4), 2);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn same_endpoint_panics() {
        let g = builders::cycle(4);
        max_flow(&g, 2, 2);
    }
}
