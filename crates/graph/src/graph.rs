//! Undirected multigraph with flat adjacency storage.

use crate::{Edge, Vertex};
use std::fmt;

/// An undirected multigraph on the dense vertex set `0..n`.
///
/// Parallel edges are allowed (needed for `λK_n` logical graphs); self-loops
/// are not (a request from a node to itself consumes no network capacity).
///
/// Storage is a flat edge list plus per-vertex adjacency lists of edge
/// indices, which keeps iteration allocation-free and cache-friendly.
#[derive(Clone)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// `adj[v]` lists indices into `edges` of the edges incident to `v`.
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Creates an edgeless graph with room for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Graph {
            n,
            edges: Vec::with_capacity(m),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges (with multiplicity).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the edge `{u, v}` (a parallel copy if it already exists) and
    /// returns its index.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> u32 {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        let e = Edge::new(u, v);
        let idx = self.edges.len() as u32;
        self.edges.push(e);
        self.adj[u as usize].push(idx);
        self.adj[v as usize].push(idx);
        idx
    }

    /// The edge with internal index `idx`.
    #[inline]
    pub fn edge(&self, idx: u32) -> Edge {
        self.edges[idx as usize]
    }

    /// All edges, in insertion order (with multiplicity).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of `v` (parallel edges counted with multiplicity).
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterator over the neighbors of `v` (with multiplicity).
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.adj[v as usize].iter().map(move |&i| self.edges[i as usize].other(v))
    }

    /// Iterator over `(edge index, neighbor)` pairs at `v`.
    pub fn incident_edges(&self, v: Vertex) -> impl Iterator<Item = (u32, Vertex)> + '_ {
        self.adj[v as usize]
            .iter()
            .map(move |&i| (i, self.edges[i as usize].other(v)))
    }

    /// Multiplicity of edge `{u, v}`.
    pub fn edge_multiplicity(&self, u: Vertex, v: Vertex) -> usize {
        if u == v || (u as usize) >= self.n || (v as usize) >= self.n {
            return 0;
        }
        let e = Edge::new(u, v);
        // Scan the smaller adjacency list.
        let w = if self.degree(u) <= self.degree(v) { u } else { v };
        self.adj[w as usize]
            .iter()
            .filter(|&&i| self.edges[i as usize] == e)
            .count()
    }

    /// Whether `{u, v}` is present at least once.
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_multiplicity(u, v) > 0
    }

    /// True iff no edge appears more than once (the graph is simple).
    ///
    /// Linear time via a neighbor stamp array: for each vertex, mark the
    /// opposite endpoints of its incident edges; a repeated mark is a
    /// parallel edge. `O(n + m)` with one `O(n)` scratch allocation —
    /// no copy of the edge list, no sort.
    pub fn is_simple(&self) -> bool {
        let mut stamp = vec![u32::MAX; self.n];
        for v in 0..self.n {
            for &i in &self.adj[v] {
                let w = self.edges[i as usize].other(v as Vertex) as usize;
                if stamp[w] == v as u32 {
                    return false;
                }
                stamp[w] = v as u32;
            }
        }
        true
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.adj[v].len()).max().unwrap_or(0)
    }

    /// Minimum degree.
    pub fn min_degree(&self) -> usize {
        (0..self.n).map(|v| self.adj[v].len()).min().unwrap_or(0)
    }

    /// True iff every vertex has even degree (necessary for an Euler tour,
    /// and for a graph to decompose into cycles).
    pub fn all_degrees_even(&self) -> bool {
        (0..self.n).all(|v| self.adj[v].len().is_multiple_of(2))
    }

    /// GraphViz DOT rendering (small graphs; debugging and docs).
    pub fn to_dot(&self, name: &str) -> String {
        use fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "graph {name} {{");
        for v in 0..self.n {
            let _ = writeln!(s, "  {v};");
        }
        for e in &self.edges {
            let _ = writeln!(s, "  {} -- {};", e.u(), e.v());
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 2));
        assert!(g.is_simple());
        assert!(g.all_degrees_even());
        let mut nb: Vec<_> = g.neighbors(0).collect();
        nb.sort_unstable();
        assert_eq!(nb, vec![1, 3]);
    }

    #[test]
    fn multigraph_multiplicity() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        assert_eq!(g.edge_multiplicity(0, 1), 2);
        assert_eq!(g.edge_multiplicity(1, 2), 1);
        assert_eq!(g.edge_multiplicity(0, 2), 0);
        assert!(!g.is_simple());
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert!(g.all_degrees_even());
    }

    #[test]
    fn dot_output_contains_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 2);
        let dot = g.to_dot("g");
        assert!(dot.contains("0 -- 2;"));
        assert!(dot.starts_with("graph g {"));
    }
}
