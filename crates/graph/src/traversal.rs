//! Graph traversal utilities: connectivity, components, BFS distances.

use crate::{Graph, Vertex};
use std::collections::VecDeque;

/// Connected components; returns `comp` with `comp[v]` = component id
/// (ids are dense, assigned in order of discovery from vertex 0 upward).
pub fn connected_components(g: &Graph) -> Vec<u32> {
    let n = g.vertex_count();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start as Vertex);
        while let Some(v) = queue.pop_front() {
            for w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// True iff the graph is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    let comp = connected_components(g);
    comp.iter().all(|&c| c == 0)
}

/// BFS hop distances from `src`; unreachable vertices get `usize::MAX`.
pub fn bfs_distances(g: &Graph, src: Vertex) -> Vec<usize> {
    let n = g.vertex_count();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for w in g.neighbors(v) {
            if dist[w as usize] == usize::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn ring_is_connected_with_halved_distances() {
        let g = builders::cycle(8);
        assert!(is_connected(&g));
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn disconnected_components() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert!(!is_connected(&g));
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[4], usize::MAX);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = builders::complete(6);
        let d = bfs_distances(&g, 3);
        assert!(d.iter().enumerate().all(|(v, &x)| x == usize::from(v != 3)));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
    }
}
