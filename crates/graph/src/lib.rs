//! # cyclecover-graph
//!
//! Minimal, allocation-conscious undirected multigraph substrate for the
//! `cyclecover` workspace (a reproduction of Bermond, Coudert, Chacon &
//! Tillerot, *A Note on Cycle Covering*, SPAA 2001).
//!
//! The paper models an optical network as an undirected graph: vertices are
//! optical switches, edges are fiber links. The logical (traffic) graph is a
//! second graph on the same vertex set. This crate provides exactly the graph
//! machinery the rest of the workspace needs:
//!
//! * [`Graph`] — an undirected multigraph over dense `u32` vertex ids with
//!   flat adjacency storage (index-based, cache-friendly, per the HPC guides).
//! * [`Edge`] — a normalized unordered vertex pair.
//! * [`EdgeMultiset`] — a multiset of edges over a fixed vertex count, the
//!   workhorse for covering bookkeeping (how often is each request covered?).
//! * Builders for the graph families the paper uses: complete graphs `K_n`
//!   ([`builders::complete`]), rings `C_n` ([`builders::cycle`]), circulants,
//!   paths, and `λK_n` multigraphs.
//! * [`CycleSubgraph`] — an ordered simple cycle on a subset of vertices (the
//!   `I_k` subnetworks of the paper).
//! * Traversal utilities: connectivity, components, BFS distance.
//!
//! Nothing here knows about rings-as-embeddings or the DRC; that lives in
//! `cyclecover-ring`.
//!
//! ```
//! use cyclecover_graph::{builders, CycleSubgraph, is_connected};
//!
//! let kn = builders::complete(7);            // the all-to-all instance
//! assert_eq!(kn.edge_count(), 21);
//! assert!(is_connected(&kn));
//!
//! let ring = builders::cycle(7);             // the physical topology
//! assert!(ring.all_degrees_even());
//!
//! let subnet = CycleSubgraph::new(vec![0, 2, 5]);   // one I_k
//! assert_eq!(subnet.edges().count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod connectivity;
mod cycle;
mod edge;
pub mod euler;
pub mod flow;
mod graph;
mod traversal;

pub use cycle::CycleSubgraph;
pub use edge::{Edge, EdgeMultiset};
pub use graph::Graph;
pub use traversal::{bfs_distances, connected_components, is_connected};

/// Dense vertex identifier. Vertices of an `n`-vertex graph are `0..n`.
pub type Vertex = u32;
