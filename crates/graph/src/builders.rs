//! Builders for the graph families the paper works with.
//!
//! * the physical topology: the ring `C_n` ([`cycle`]);
//! * the logical all-to-all instance: `K_n` ([`complete`]) and the λ-fold
//!   variant `λK_n` ([`lambda_complete`]) mentioned in the paper's extension
//!   section;
//! * circulants `C_n(d_1, …, d_k)`, the natural generalization containing
//!   both (`C_n = C_n(1)`, `K_n = C_n(1..⌊n/2⌋)`);
//! * paths `P_n`, used by the path-topology variant in `cyclecover-core`.

use crate::{Graph, Vertex};

/// The complete graph `K_n`: every pair of distinct vertices joined once.
///
/// This is the paper's logical graph for the *total exchange* (All-to-All)
/// instance.
pub fn complete(n: usize) -> Graph {
    lambda_complete(n, 1)
}

/// The λ-fold complete multigraph `λK_n`: every pair joined `lambda` times.
pub fn lambda_complete(n: usize, lambda: u32) -> Graph {
    let m = if n < 2 { 0 } else { n * (n - 1) / 2 * lambda as usize };
    let mut g = Graph::with_capacity(n, m);
    for _ in 0..lambda {
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// The cycle (ring) `C_n` with edges `{i, i+1 mod n}`.
///
/// This is the paper's physical topology.
///
/// # Panics
/// Panics if `n < 3`: a ring needs at least three nodes (with two nodes the
/// "ring" would be a doubled edge and survivability degenerates).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle C_n needs n >= 3, got {n}");
    let mut g = Graph::with_capacity(n, n);
    for i in 0..n {
        g.add_edge(i as Vertex, ((i + 1) % n) as Vertex);
    }
    g
}

/// The path `P_n` with edges `{i, i+1}`, `i < n−1`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    for i in 0..n.saturating_sub(1) {
        g.add_edge(i as Vertex, (i + 1) as Vertex);
    }
    g
}

/// The circulant graph `C_n(D)`: vertex `i` joined to `i ± d (mod n)` for
/// each `d ∈ D`.
///
/// Each chord length `d` with `0 < d < n/2` contributes `n` edges; `d = n/2`
/// (even `n`) contributes the `n/2` diameters. Duplicate or out-of-range
/// chord lengths panic.
pub fn circulant(n: usize, chords: &[usize]) -> Graph {
    let mut seen = vec![false; n / 2 + 1];
    let mut g = Graph::new(n);
    for &d in chords {
        assert!(d >= 1 && d <= n / 2, "chord length {d} out of range for n={n}");
        assert!(!seen[d], "duplicate chord length {d}");
        seen[d] = true;
        if d < n - d {
            for i in 0..n {
                g.add_edge(i as Vertex, ((i + d) % n) as Vertex);
            }
        } else {
            // d == n/2: diameters, each counted once.
            for i in 0..n / 2 {
                g.add_edge(i as Vertex, ((i + d) % n) as Vertex);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_counts() {
        for n in 0..12 {
            let g = complete(n);
            assert_eq!(g.vertex_count(), n);
            assert_eq!(g.edge_count(), if n < 2 { 0 } else { n * (n - 1) / 2 });
            assert!(g.is_simple());
            if n >= 2 {
                assert_eq!(g.min_degree(), n - 1);
                assert_eq!(g.max_degree(), n - 1);
            }
        }
    }

    #[test]
    fn lambda_complete_multiplicity() {
        let g = lambda_complete(5, 3);
        assert_eq!(g.edge_count(), 30);
        assert_eq!(g.edge_multiplicity(1, 4), 3);
        assert_eq!(g.degree(0), 12);
    }

    #[test]
    fn cycle_structure() {
        let g = cycle(7);
        assert_eq!(g.edge_count(), 7);
        assert!(g.all_degrees_even());
        assert!(g.has_edge(6, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn cycle_too_small() {
        let _ = cycle(2);
    }

    #[test]
    fn path_structure() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(0).edge_count(), 0);
    }

    #[test]
    fn circulant_equals_complete() {
        // K_7 = C_7(1,2,3); K_8 = C_8(1,2,3,4) with 4 = diameter class.
        let chords: Vec<usize> = (1..=3).collect();
        let g = circulant(7, &chords);
        assert_eq!(g.edge_count(), 21);
        assert!(g.is_simple());
        let chords: Vec<usize> = (1..=4).collect();
        let g = circulant(8, &chords);
        assert_eq!(g.edge_count(), 28);
        assert!(g.is_simple());
    }

    #[test]
    fn circulant_ring_is_cycle() {
        let g = circulant(9, &[1]);
        assert_eq!(g.edge_count(), 9);
        assert!(g.has_edge(8, 0));
    }

    #[test]
    #[should_panic(expected = "duplicate chord")]
    fn circulant_rejects_duplicates() {
        let _ = circulant(9, &[2, 2]);
    }
}
