//! Euler tours and cycle decompositions (Veblen's theorem, executable).
//!
//! Substrate fact the covering problem leans on: a graph decomposes into
//! edge-disjoint cycles iff every vertex has even degree. `K_n` for odd
//! `n` is even-regular, which is why Theorem 1's coverings can be exact
//! *partitions* into cycles; for even `n` the odd degree forces overlap —
//! the structural root of Theorem 2's `+1`-flavored slack. This module
//! makes both directions executable: [`euler_circuit`] (Hierholzer) and
//! [`cycle_decomposition`] (peel cycles greedily).

use crate::{Graph, Vertex};

/// Finds an Euler circuit of the (connected, even-degree) graph: a closed
/// walk using every edge exactly once. Returns the vertex sequence (first
/// = last omitted), or `None` if degrees are odd or the edges are not in
/// one component.
pub fn euler_circuit(g: &Graph) -> Option<Vec<Vertex>> {
    if g.edge_count() == 0 {
        return None;
    }
    if !g.all_degrees_even() {
        return None;
    }
    // Connectivity over non-isolated vertices.
    let comp = crate::connected_components(g);
    let mut active_comp = None;
    for (v, &cv) in comp.iter().enumerate() {
        if g.degree(v as Vertex) > 0 {
            match active_comp {
                None => active_comp = Some(cv),
                Some(c) if c == cv => {}
                _ => return None,
            }
        }
    }

    // Hierholzer with explicit stack and per-vertex adjacency cursors.
    let start = (0..g.vertex_count() as Vertex).find(|&v| g.degree(v) > 0)?;
    let mut used = vec![false; g.edge_count()];
    let mut cursor = vec![0usize; g.vertex_count()];
    let adj: Vec<Vec<(u32, Vertex)>> = (0..g.vertex_count() as Vertex)
        .map(|v| g.incident_edges(v).collect())
        .collect();
    let mut stack = vec![start];
    let mut circuit = Vec::with_capacity(g.edge_count());
    while let Some(&v) = stack.last() {
        let vu = v as usize;
        let mut advanced = false;
        while cursor[vu] < adj[vu].len() {
            let (eidx, w) = adj[vu][cursor[vu]];
            cursor[vu] += 1;
            if !used[eidx as usize] {
                used[eidx as usize] = true;
                stack.push(w);
                advanced = true;
                break;
            }
        }
        if !advanced {
            circuit.push(v);
            stack.pop();
        }
    }
    circuit.pop(); // drop duplicated start
    if circuit.len() == g.edge_count() {
        circuit.reverse();
        Some(circuit)
    } else {
        None
    }
}

/// Decomposes an even-degree graph into edge-disjoint simple cycles
/// (Veblen's theorem). Returns `None` if some degree is odd.
///
/// Each cycle is returned as its vertex sequence in cycle order.
pub fn cycle_decomposition(g: &Graph) -> Option<Vec<Vec<Vertex>>> {
    if !g.all_degrees_even() {
        return None;
    }
    let mut used = vec![false; g.edge_count()];
    let adj: Vec<Vec<(u32, Vertex)>> = (0..g.vertex_count() as Vertex)
        .map(|v| g.incident_edges(v).collect())
        .collect();
    let mut remaining = g.edge_count();
    let mut cycles = Vec::new();
    let mut cursor = vec![0usize; g.vertex_count()];
    while remaining > 0 {
        // Find a vertex with an unused edge.
        let start = (0..g.vertex_count())
            .find(|&v| adj[v].iter().any(|&(e, _)| !used[e as usize]))
            .expect("edges remain") as Vertex;
        // Walk until we return to a visited vertex => extract the cycle.
        let mut walk: Vec<(Vertex, Option<u32>)> = vec![(start, None)];
        let mut on_walk = vec![usize::MAX; g.vertex_count()];
        on_walk[start as usize] = 0;
        loop {
            let (v, _) = *walk.last().expect("non-empty");
            let vu = v as usize;
            // Find next unused edge from v (cursor may need reset since
            // edges get used across iterations).
            cursor[vu] = 0;
            let mut next = None;
            while cursor[vu] < adj[vu].len() {
                let (e, w) = adj[vu][cursor[vu]];
                cursor[vu] += 1;
                if !used[e as usize] {
                    next = Some((e, w));
                    break;
                }
            }
            let (e, w) = next.expect("even degrees guarantee a way out");
            used[e as usize] = true;
            remaining -= 1;
            if on_walk[w as usize] != usize::MAX {
                // Close the cycle from first occurrence of w.
                let at = on_walk[w as usize];
                let mut cyc: Vec<Vertex> = walk[at..].iter().map(|&(x, _)| x).collect();
                // Un-use edges before `at` (they stay for later cycles)…
                for &(_, eidx) in &walk[1..=at] {
                    if let Some(eidx) = eidx {
                        used[eidx as usize] = false;
                        remaining += 1;
                    }
                }
                // …but the edges in the cycle stay used.
                if cyc.len() < 2 {
                    // degenerate (multi-edge 2-cycle) — record as-is for
                    // multigraphs
                    cyc.push(w);
                }
                for (x, _) in walk.drain(..) {
                    on_walk[x as usize] = usize::MAX;
                }
                cycles.push(cyc);
                break;
            }
            on_walk[w as usize] = walk.len();
            walk.push((w, Some(e)));
        }
    }
    Some(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::Edge;

    #[test]
    fn euler_circuit_of_ring() {
        let g = builders::cycle(7);
        let tour = euler_circuit(&g).expect("ring is Eulerian");
        assert_eq!(tour.len(), 7);
    }

    #[test]
    fn euler_circuit_of_k5() {
        let g = builders::complete(5);
        let tour = euler_circuit(&g).expect("K5 is Eulerian");
        assert_eq!(tour.len(), 10);
        // Every edge used exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..tour.len() {
            let e = Edge::new(tour[i], tour[(i + 1) % tour.len()]);
            assert!(seen.insert(e), "edge {e} repeated");
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn no_euler_for_odd_degrees() {
        let g = builders::complete(4); // 3-regular
        assert!(euler_circuit(&g).is_none());
        assert!(cycle_decomposition(&g).is_none());
    }

    #[test]
    fn decomposition_covers_k7_exactly() {
        let g = builders::complete(7);
        let cycles = cycle_decomposition(&g).expect("even degrees");
        let mut count = std::collections::BTreeMap::new();
        for c in &cycles {
            assert!(c.len() >= 3);
            for i in 0..c.len() {
                let e = Edge::new(c[i], c[(i + 1) % c.len()]);
                *count.entry(e).or_insert(0) += 1;
            }
        }
        assert_eq!(count.len(), 21);
        assert!(count.values().all(|&c| c == 1), "decomposition must partition");
    }

    #[test]
    fn decomposition_of_disconnected_even_graph() {
        let mut g = Graph::new(7);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3)] {
            g.add_edge(a, b);
        }
        let cycles = cycle_decomposition(&g).expect("two disjoint cycles");
        assert_eq!(cycles.len(), 2);
    }
}
