//! # cyclecover-workload
//!
//! Traffic-instance generators. The paper analyzes the all-to-all
//! instance (`I = K_n`) and closes by naming "more general logical
//! graphs" as open; the general-instance experiments (E8/E12) need
//! realistic demand structure to exercise that machinery. Every
//! generator returns a simple logical [`Graph`] on `0..n` whose edges
//! are the (symmetric) requests, matching the paper's symmetric-demand
//! model.
//!
//! Generators are deterministic given the caller-supplied RNG, so
//! experiments are reproducible by seed.
//!
//! * [`all_to_all`] — the paper's `K_n`;
//! * [`uniform_random`] — Erdős–Rényi demands, `G(n, p)`;
//! * [`permutation`] — each node talks to exactly one partner (the
//!   classic "permutation traffic" of interconnection-network studies);
//! * [`hotspot`] — a few servers attract most demands (client–server);
//! * [`gravity`] — demand probability ∝ node-weight product, the
//!   standard telecom traffic-matrix model;
//! * [`locality`] — requests only between ring-nearby nodes (metro
//!   traffic with distance falloff).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cyclecover_graph::{builders, Graph};
use rand::seq::SliceRandom;
use rand::Rng;

/// The paper's all-to-all instance, `K_n`.
pub fn all_to_all(n: usize) -> Graph {
    builders::complete(n)
}

/// Each possible request appears independently with probability `p`.
///
/// # Panics
/// Panics unless `0.0 ≤ p ≤ 1.0`.
pub fn uniform_random(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Permutation traffic: a uniformly random perfect matching on the
/// nodes (for odd `n`, one node stays silent). Every node has degree
/// ≤ 1 — the sparsest nontrivial instance, a stress test for phantom
/// chords in the general-instance coverings.
pub fn permutation(n: usize, rng: &mut impl Rng) -> Graph {
    let mut nodes: Vec<u32> = (0..n as u32).collect();
    nodes.shuffle(rng);
    let mut g = Graph::new(n);
    for pair in nodes.chunks_exact(2) {
        g.add_edge(pair[0], pair[1]);
    }
    g
}

/// Hotspot traffic: the first `hubs` nodes are servers. Each
/// client–server pair gets a request with probability `p_hub`; each
/// client–client pair with the (much smaller) background probability
/// `p_bg`. Server–server pairs always communicate (backbone sync).
///
/// # Panics
/// Panics if `hubs > n` or a probability is out of range.
pub fn hotspot(n: usize, hubs: usize, p_hub: f64, p_bg: f64, rng: &mut impl Rng) -> Graph {
    assert!(hubs <= n, "more hubs ({hubs}) than nodes ({n})");
    assert!((0.0..=1.0).contains(&p_hub) && (0.0..=1.0).contains(&p_bg));
    let mut g = Graph::new(n);
    let h = hubs as u32;
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let p = match (u < h, v < h) {
                (true, true) => 1.0,
                (true, false) | (false, true) => p_hub,
                (false, false) => p_bg,
            };
            if p >= 1.0 || (p > 0.0 && rng.gen_bool(p)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Gravity model: node `v` has weight `weights[v]`; request `{u, v}`
/// appears with probability `min(1, scale · w_u · w_v / (Σw)²)`.
///
/// # Panics
/// Panics if `weights.len() != n`, any weight is negative, or all are 0.
pub fn gravity(n: usize, weights: &[f64], scale: f64, rng: &mut impl Rng) -> Graph {
    assert_eq!(weights.len(), n, "need one weight per node");
    assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "all weights zero");
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (scale * weights[u] * weights[v] / (total * total)).min(1.0);
            if p > 0.0 && rng.gen_bool(p) {
                g.add_edge(u as u32, v as u32);
            }
        }
    }
    g
}

/// Locality traffic on a ring of `n` nodes: every pair at ring distance
/// ≤ `max_dist` communicates (deterministic).
///
/// # Panics
/// Panics if `max_dist` is 0.
pub fn locality(n: usize, max_dist: u32) -> Graph {
    assert!(max_dist >= 1, "max_dist must be positive");
    let mut g = Graph::new(n);
    let nn = n as u32;
    for u in 0..nn {
        for v in (u + 1)..nn {
            let d = (v - u).min(nn - (v - u));
            if d <= max_dist {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2001)
    }

    #[test]
    fn all_to_all_is_complete() {
        let g = all_to_all(8);
        assert_eq!(g.edge_count(), 28);
        assert!(g.is_simple());
    }

    #[test]
    fn uniform_edge_count_concentrates() {
        let g = uniform_random(40, 0.5, &mut rng());
        let m = g.edge_count() as f64;
        let expected = 0.5 * (40.0 * 39.0 / 2.0);
        assert!((m - expected).abs() < 120.0, "m={m} vs expected {expected}");
        assert!(g.is_simple());
        assert_eq!(uniform_random(10, 0.0, &mut rng()).edge_count(), 0);
        assert_eq!(uniform_random(10, 1.0, &mut rng()).edge_count(), 45);
    }

    #[test]
    fn permutation_is_a_matching() {
        for n in [6usize, 7, 12] {
            let g = permutation(n, &mut rng());
            assert_eq!(g.edge_count(), n / 2);
            for v in 0..n as u32 {
                assert!(g.degree(v) <= 1, "node {v} over-matched");
            }
        }
    }

    #[test]
    fn permutation_is_random() {
        let a = permutation(20, &mut StdRng::seed_from_u64(1));
        let b = permutation(20, &mut StdRng::seed_from_u64(2));
        assert_ne!(
            a.edges().to_vec(),
            b.edges().to_vec(),
            "different seeds should give different matchings"
        );
    }

    #[test]
    fn hotspot_servers_dominate() {
        let g = hotspot(30, 3, 0.8, 0.02, &mut rng());
        let hub_deg: usize = (0..3u32).map(|v| g.degree(v)).sum();
        let client_deg: usize = (3..30u32).map(|v| g.degree(v)).sum();
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(1, 2));
        // Average hub degree far exceeds average client degree.
        assert!(hub_deg as f64 / 3.0 > 3.0 * client_deg as f64 / 27.0);
    }

    #[test]
    fn gravity_respects_weights() {
        let mut w = vec![1.0; 20];
        w[0] = 50.0;
        w[1] = 50.0;
        let g = gravity(20, &w, 250.0, &mut rng());
        assert!(
            g.degree(0) + g.degree(1) >= g.degree(5) + g.degree(6),
            "heavy nodes should attract demand"
        );
        assert!(g.is_simple());
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn gravity_rejects_zero_weights() {
        gravity(3, &[0.0, 0.0, 0.0], 1.0, &mut rng());
    }

    #[test]
    fn locality_counts() {
        // n=8, max_dist=2: classes d=1 (8 pairs) + d=2 (8 pairs) = 16.
        let g = locality(8, 2);
        assert_eq!(g.edge_count(), 16);
        assert!(g.is_simple());
        // Diameter class counted once: n=8, max_dist=4 → 8+8+8+4 = 28 = K8.
        let full = locality(8, 4);
        assert_eq!(full.edge_count(), 28);
        assert!(full.is_simple());
        // Odd n: no diameter halving. n=7, d≤3 → 7+7+7 = 21 = K7.
        assert_eq!(locality(7, 3).edge_count(), 21);
        // max_dist beyond diameter saturates.
        assert_eq!(locality(7, 30).edge_count(), 21);
    }
}
