//! Optimality certificates: the reproduction's verification story as a
//! first-class object.
//!
//! A [`Certificate`] bundles, for one ring size `n`: the constructed
//! covering, the independent validation verdict, the capacity lower bound,
//! the claimed `ρ(n)`, and the optimality status. `EXPERIMENTS.md` tables
//! are projections of certificates; tests assert their internal
//! consistency so a regression anywhere in the stack (constructions,
//! validation, bounds) surfaces as a broken certificate.

use crate::{construct_with_status, rho, DrcCovering, Optimality};
use cyclecover_solver::lower_bound::{capacity_lower_bound, combinatorial_lower_bound};

/// A self-contained record of what was built and what was proved for one
/// ring size.
pub struct Certificate {
    /// Ring size.
    pub n: u32,
    /// The constructed covering (validated during establishment).
    pub covering: DrcCovering,
    /// The capacity lower bound `⌈Σdist/n⌉`.
    pub capacity_bound: u64,
    /// The best combinatorial lower bound implemented.
    pub combinatorial_bound: u64,
    /// The paper's claimed optimum.
    pub claimed_rho: u64,
    /// Whether the construction meets the claim.
    pub status: Optimality,
}

impl Certificate {
    /// Builds and verifies the certificate for `n ≥ 3`.
    ///
    /// # Panics
    /// Panics if any internal consistency check fails — a certificate that
    /// cannot be established is a bug by definition.
    pub fn establish(n: u32) -> Self {
        let (covering, status) = construct_with_status(n);
        covering
            .validate()
            .unwrap_or_else(|e| panic!("certificate {n}: invalid covering: {e}"));
        let claimed_rho = rho(n);
        let capacity_bound = capacity_lower_bound(n);
        let combinatorial_bound = combinatorial_lower_bound(n);
        assert!(capacity_bound <= claimed_rho, "bound exceeds claim at n={n}");
        match status {
            Optimality::Optimal => {
                assert_eq!(covering.len() as u64, claimed_rho, "size mismatch at n={n}")
            }
            Optimality::Excess(x) => assert_eq!(
                covering.len() as u64,
                claimed_rho + x as u64,
                "excess mismatch at n={n}"
            ),
        }
        Certificate {
            n,
            covering,
            capacity_bound,
            combinatorial_bound,
            claimed_rho,
            status,
        }
    }

    /// Whether the claim is matched by the construction *and* pinched by
    /// the capacity bound (a complete optimality proof without search).
    pub fn proven_by_counting(&self) -> bool {
        matches!(self.status, Optimality::Optimal) && self.capacity_bound == self.claimed_rho
    }

    /// Whether the claim is matched but the proof needs the parity
    /// refinement (`capacity + 1`), certified by exhaustive search on
    /// small `n` (experiment E4).
    pub fn needs_parity_refinement(&self) -> bool {
        matches!(self.status, Optimality::Optimal) && self.capacity_bound + 1 == self.claimed_rho
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let verdict = match self.status {
            Optimality::Optimal if self.proven_by_counting() => "OPTIMAL (counting proof)",
            Optimality::Optimal => "OPTIMAL (parity refinement)",
            Optimality::Excess(_) => "upper bound only (documented gap)",
        };
        format!(
            "n={}: built {} cycles, rho {}, capacity LB {} — {verdict}",
            self.n,
            self.covering.len(),
            self.claimed_rho,
            self.capacity_bound
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificates_establish_across_classes() {
        for n in [3u32, 4, 7, 8, 10, 12, 16, 25, 26, 28] {
            let c = Certificate::establish(n);
            assert_eq!(c.n, n);
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn odd_certificates_are_counting_proofs() {
        for n in [5u32, 9, 15, 33, 101] {
            assert!(Certificate::establish(n).proven_by_counting(), "n={n}");
        }
    }

    #[test]
    fn even_p_even_certificates_need_refinement() {
        // n = 8: optimal, capacity + 1.
        let c = Certificate::establish(8);
        assert!(c.needs_parity_refinement());
        assert!(!c.proven_by_counting());
        // n = 12 (p = 6 even): same shape.
        let c = Certificate::establish(12);
        assert!(c.needs_parity_refinement());
    }

    #[test]
    fn even_p_odd_certificates_are_counting_proofs() {
        for n in [10u32, 14, 18, 22] {
            assert!(Certificate::establish(n).proven_by_counting(), "n={n}");
        }
    }

    #[test]
    fn gap_certificates_report_upper_bound_only() {
        let c = Certificate::establish(24);
        assert!(matches!(c.status, Optimality::Excess(1)));
        assert!(c.summary().contains("documented gap"));
    }
}
