//! # cyclecover-core
//!
//! The primary contribution of *A Note on Cycle Covering* (Bermond, Coudert,
//! Chacon & Tillerot, SPAA 2001), reproduced as a library: minimum
//! **DRC cycle coverings** of the all-to-all instance `K_n` over the ring
//! `C_n`, with constructions for every `n`, the `ρ(n)` formulas of
//! Theorems 1–2, verification machinery, and the extensions the paper
//! sketches (λ-fold instances, general logical graphs, other topologies).
//!
//! ## The problem
//!
//! Cover all `n(n−1)/2` requests of `K_n` by cycles (subnetworks), such that
//! each cycle's requests can be routed edge-disjointly on the physical ring
//! (the Disjoint Routing Constraint), minimizing the number of cycles. The
//! minimum is `ρ(n)`:
//!
//! * **Theorem 1** — `ρ(2p+1) = p(p+1)/2`, by `p` triangles and `p(p−1)/2`
//!   quadrilaterals ([`odd::construct`] builds them in closed form).
//! * **Theorem 2** — `ρ(2p) = ⌈(p²+1)/2⌉` for `p ≥ 3`
//!   ([`even::construct`] builds coverings of exactly this size).
//!
//! The paper omits all proofs; this crate re-derives constructive proofs
//! (documented in the module docs of [`odd`] and [`even`]) and verifies them
//! machine-checked: every covering is validated by [`DrcCovering::validate`]
//! and cross-checked against the exhaustive solvers of `cyclecover-solver`
//! for small `n`.
//!
//! ## Entry points
//!
//! ```
//! use cyclecover_core::{construct_optimal, rho};
//!
//! let covering = construct_optimal(13);
//! assert_eq!(covering.len() as u64, rho(13));
//! assert!(covering.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
mod covering;
pub mod even;
pub mod general;
pub mod lambda;
pub mod odd;
pub mod path;
pub mod small;

pub use certificate::Certificate;
pub use covering::{CoverError, CoveringStats, DrcCovering};
pub use even::Optimality;

use cyclecover_ring::Ring;

/// The paper's optimum `ρ(n)`: minimum number of cycles in a DRC-covering
/// of `K_n` over `C_n`.
///
/// * odd `n = 2p+1`: `p(p+1)/2` (Theorem 1);
/// * even `n = 2p`, `p ≥ 3`: `⌈(p²+1)/2⌉` (Theorem 2);
/// * `ρ(3) = 1`, `ρ(4) = 3` (the paper's worked example), `ρ(5) = 3`.
pub fn rho(n: u32) -> u64 {
    cyclecover_solver::lower_bound::rho_formula(n)
}

/// Builds a DRC-covering of `K_n` over `C_n` for any `n ≥ 3` — of size
/// exactly [`rho`]`(n)` for every `n` except `n ≡ 0 (mod 8), n ≥ 16`,
/// where the covering has `ρ(n)+1` cycles (use [`construct_with_status`]
/// to observe the distinction; see `even` module docs).
///
/// Dispatches to the closed-form odd construction, the parity-split even
/// construction, or the small-case table. The result always passes
/// [`DrcCovering::validate`]; construction is deterministic.
pub fn construct_optimal(n: u32) -> DrcCovering {
    let (covering, status) = construct_with_status(n);
    debug_assert!(covering.validate().is_ok(), "construction invalid for n={n}");
    match status {
        Optimality::Optimal => debug_assert_eq!(covering.len() as u64, rho(n)),
        Optimality::Excess(x) => debug_assert_eq!(covering.len() as u64, rho(n) + x as u64),
    }
    covering
}

/// As [`construct_optimal`], also reporting whether the covering is
/// certified minimum. The only inputs currently yielding
/// [`Optimality::Excess`] are `n ≡ 0 (mod 8)`, `n ≥ 16` — see the
/// [`even`] module docs and `EXPERIMENTS.md` E2 for the documented
/// reproduction gap.
pub fn construct_with_status(n: u32) -> (DrcCovering, Optimality) {
    assert!(n >= 3, "need n >= 3, got {n}");
    if n <= 6 {
        (small::construct(n), Optimality::Optimal)
    } else if n % 2 == 1 {
        (odd::construct(n), Optimality::Optimal)
    } else {
        even::construct_with_status(n)
    }
}

/// Convenience: the ring `C_n` used by all constructions.
pub fn ring(n: u32) -> Ring {
    Ring::new(n)
}
