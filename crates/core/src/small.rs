//! Hand-verified optimal coverings for the smallest rings (`n ≤ 6`).
//!
//! * `n = 3, 5` — Theorem 1 applies; delegate to the odd construction.
//! * `n = 4` — the paper's worked example: `ρ(4) = 3`, one C4 + two C3
//!   (`(1,2,3,4)`, `(1,2,4)`, `(1,3,4)` in the paper's 1-based labels).
//! * `n = 6` — `ρ(6) = 5 = ⌈(3²+1)/2⌉` with the Theorem-2 composition
//!   `2 C3 + 3 C4`; the explicit covering below was derived by hand in
//!   `DESIGN.md` §2.3 and is machine-verified in the tests.

use crate::{odd, DrcCovering};
use cyclecover_ring::{Ring, Tile};

/// Optimal covering for `3 ≤ n ≤ 6`.
///
/// # Panics
/// Panics for `n` outside `3..=6`.
pub fn construct(n: u32) -> DrcCovering {
    match n {
        3 | 5 => odd::construct(n),
        4 => {
            let ring = Ring::new(4);
            DrcCovering::from_tiles(
                ring,
                vec![
                    // The paper's covering, 0-based: (0,1,2,3), (0,1,3), (0,2,3).
                    Tile::from_vertices(ring, vec![0, 1, 2, 3]),
                    Tile::from_vertices(ring, vec![0, 1, 3]),
                    Tile::from_vertices(ring, vec![0, 2, 3]),
                ],
            )
        }
        6 => {
            let ring = Ring::new(6);
            DrcCovering::from_tiles(
                ring,
                vec![
                    // 2 C3 + 3 C4 (Theorem 2 composition for n = 4q+2, q=1).
                    Tile::from_vertices(ring, vec![0, 1, 3]),
                    Tile::from_vertices(ring, vec![1, 4, 5]),
                    Tile::from_vertices(ring, vec![2, 3, 4, 5]),
                    Tile::from_vertices(ring, vec![0, 2, 3, 5]),
                    Tile::from_vertices(ring, vec![0, 1, 2, 4]),
                ],
            )
        }
        _ => panic!("small-case table covers n in 3..=6, got {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_solver::lower_bound::rho_formula;

    #[test]
    fn all_small_cases_valid_and_optimal() {
        for n in 3u32..=6 {
            let cover = construct(n);
            assert_eq!(cover.len() as u64, rho_formula(n), "n={n}");
            cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn n6_matches_theorem2_composition() {
        let stats = construct(6).stats();
        assert_eq!(stats.c3, 2);
        assert_eq!(stats.c4, 3);
        // Overlap analysis from DESIGN.md: exactly p = 3 requests doubled.
        assert_eq!(stats.overlapped_requests, 3);
    }

    #[test]
    fn n4_is_paper_example() {
        let stats = construct(4).stats();
        assert_eq!(stats.c3, 2);
        assert_eq!(stats.c4, 1);
    }
}
