//! The `DrcCovering` type: a set of DRC-routable cycles covering `K_n`,
//! with full validation.

use cyclecover_graph::{CycleSubgraph, EdgeMultiset};
use cyclecover_ring::{routing, Ring, Tile};
use std::fmt;

/// A DRC cycle covering of (a subset of) the requests of `K_n` over `C_n`.
///
/// Each member cycle is stored as a winding [`Tile`] — by the winding lemma
/// this loses no generality — and the structure records nothing else:
/// wavelength assignment and capacity accounting live in `cyclecover-net`.
#[derive(Clone, PartialEq, Eq)]
pub struct DrcCovering {
    ring: Ring,
    tiles: Vec<Tile>,
}

/// Validation failure for a claimed covering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverError {
    /// Some request of `K_n` is not covered by any cycle.
    Uncovered {
        /// Number of uncovered requests.
        missing: usize,
        /// An example uncovered request `(u, v)`.
        example: (u32, u32),
    },
    /// A member cycle violates the DRC (cannot happen for tiles built via
    /// [`Tile`]; guards against hand-constructed inputs).
    NotRoutable {
        /// Index of the offending cycle.
        index: usize,
    },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::Uncovered { missing, example } => write!(
                f,
                "{missing} uncovered request(s), e.g. ({}, {})",
                example.0, example.1
            ),
            CoverError::NotRoutable { index } => {
                write!(f, "cycle #{index} violates the DRC")
            }
        }
    }
}

/// Aggregate statistics of a covering (reported by the experiment tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoveringStats {
    /// Number of cycles.
    pub cycles: usize,
    /// Number of triangles (`C3`).
    pub c3: usize,
    /// Number of quadrilaterals (`C4`).
    pub c4: usize,
    /// Cycles longer than 4.
    pub longer: usize,
    /// Requests covered more than once (the covering's overlap).
    pub overlapped_requests: usize,
    /// Total ring-edge capacity used by all routings (≤ n · cycles).
    pub total_load: u64,
    /// Sum over requests of shortest-path distance (lower bound on load).
    pub ideal_load: u64,
}

impl DrcCovering {
    /// Creates a covering from winding tiles. No validation beyond tile
    /// well-formedness (which [`Tile`] enforces); call
    /// [`DrcCovering::validate`] to check coverage.
    pub fn from_tiles(ring: Ring, tiles: Vec<Tile>) -> Self {
        DrcCovering { ring, tiles }
    }

    /// Builds a covering from explicit cycles (any cyclic vertex orders),
    /// verifying each satisfies the DRC.
    pub fn from_cycles(ring: Ring, cycles: &[CycleSubgraph]) -> Result<Self, CoverError> {
        let mut tiles = Vec::with_capacity(cycles.len());
        for (index, c) in cycles.iter().enumerate() {
            if routing::winding_routing(ring, c).is_none() {
                return Err(CoverError::NotRoutable { index });
            }
            tiles.push(Tile::from_vertices(ring, c.vertices().to_vec()));
        }
        Ok(DrcCovering { ring, tiles })
    }

    /// The ring.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// The member cycles as tiles.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether the covering has no cycles.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The member cycles as logical [`CycleSubgraph`]s.
    pub fn cycles(&self) -> Vec<CycleSubgraph> {
        self.tiles.iter().map(Tile::to_cycle).collect()
    }

    /// Coverage multiset: how often each request of `K_n` is covered.
    pub fn coverage(&self) -> EdgeMultiset {
        let mut m = EdgeMultiset::new(self.ring.n() as usize);
        for t in &self.tiles {
            for c in t.chords(self.ring) {
                m.insert(c.to_edge());
            }
        }
        m
    }

    /// Validates that every request of `K_n` is covered at least once and
    /// every cycle is DRC-routable (the latter holds by construction for
    /// tiles; re-checked against the routing oracle in debug builds).
    pub fn validate(&self) -> Result<(), CoverError> {
        for (index, t) in self.tiles.iter().enumerate() {
            debug_assert!(
                routing::route_order(self.ring, t.vertices()).is_some(),
                "tile {t:?} not routable?!"
            );
            // Tiles are winding by construction; the check that matters for
            // hand-built inputs is arity, enforced by Tile. Explicitly check
            // the invariant cheaply: gaps sum to n.
            let total: u64 = t.gaps(self.ring).iter().map(|&g| g as u64).sum();
            if total != self.ring.n() as u64 {
                return Err(CoverError::NotRoutable { index });
            }
        }
        let cov = self.coverage();
        let missing = cov.undercovered(1);
        if let Some(&(e, _)) = missing.first() {
            return Err(CoverError::Uncovered {
                missing: missing.len(),
                example: (e.u(), e.v()),
            });
        }
        Ok(())
    }

    /// Validates an exact decomposition: every request covered exactly
    /// `lambda` times (Theorem 1's odd-case coverings are exact partitions,
    /// `lambda = 1`).
    pub fn is_exact_decomposition(&self, lambda: u32) -> bool {
        self.coverage().is_exact(lambda)
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> CoveringStats {
        let cov = self.coverage();
        let mut c3 = 0;
        let mut c4 = 0;
        let mut longer = 0;
        let mut total_load = 0u64;
        for t in &self.tiles {
            match t.len() {
                3 => c3 += 1,
                4 => c4 += 1,
                _ => longer += 1,
            }
            total_load += self.ring.n() as u64; // winding tiles use all n edges
        }
        CoveringStats {
            cycles: self.tiles.len(),
            c3,
            c4,
            longer,
            overlapped_requests: cov.overcovered(1).len(),
            total_load,
            ideal_load: self.ring.total_pair_distance(),
        }
    }
}

impl fmt::Debug for DrcCovering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DrcCovering(n={}, cycles={})", self.ring.n(), self.tiles.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's valid K4 covering: C4 (0,1,2,3) + C3 (0,1,3) + C3 (0,2,3).
    #[test]
    fn paper_k4_covering_validates() {
        let ring = Ring::new(4);
        let cycles = vec![
            CycleSubgraph::new(vec![0, 1, 2, 3]),
            CycleSubgraph::new(vec![0, 1, 3]),
            CycleSubgraph::new(vec![0, 2, 3]),
        ];
        let cover = DrcCovering::from_cycles(ring, &cycles).expect("all routable");
        assert!(cover.validate().is_ok());
        let stats = cover.stats();
        assert_eq!(stats.cycles, 3);
        assert_eq!(stats.c3, 2);
        assert_eq!(stats.c4, 1);
        // 10 edge-slots for 6 requests: 4 overlapped? 3+3+4 = 10, K4 has 6:
        // overlap slots = 4 but distinct overlapped requests may be fewer.
        assert!(stats.overlapped_requests > 0);
    }

    /// The paper's *invalid* K4 covering: the crossed C4 fails construction.
    #[test]
    fn paper_k4_bad_covering_rejected() {
        let ring = Ring::new(4);
        let cycles = vec![
            CycleSubgraph::new(vec![0, 1, 2, 3]),
            CycleSubgraph::new(vec![0, 2, 3, 1]),
        ];
        let err = DrcCovering::from_cycles(ring, &cycles).unwrap_err();
        assert_eq!(err, CoverError::NotRoutable { index: 1 });
    }

    #[test]
    fn incomplete_covering_detected() {
        let ring = Ring::new(5);
        let cover = DrcCovering::from_tiles(
            ring,
            vec![Tile::from_vertices(ring, vec![0, 1, 2])],
        );
        match cover.validate() {
            Err(CoverError::Uncovered { missing, .. }) => assert_eq!(missing, 7),
            other => panic!("expected Uncovered, got {other:?}"),
        }
    }

    #[test]
    fn exactness_check() {
        let ring = Ring::new(5);
        // K5 partition: quad {0,1,2,3} + triangles {3,4,1}, {4,0,2}
        // (the worked n=5 instance of DESIGN.md §2.3).
        let cover = DrcCovering::from_tiles(
            ring,
            vec![
                Tile::from_vertices(ring, vec![0, 1, 2, 3]),
                Tile::from_vertices(ring, vec![1, 3, 4]),
                Tile::from_vertices(ring, vec![0, 2, 4]),
            ],
        );
        assert!(cover.validate().is_ok());
        assert!(cover.is_exact_decomposition(1));
        assert_eq!(cover.stats().overlapped_requests, 0);
    }
}
