//! Theorem 2: optimal DRC-coverings for even `n = 2p`, `p ≥ 3`.
//!
//! The paper states `ρ(2p) = ⌈(p²+1)/2⌉` — proof and construction omitted.
//! This module contains the constructions derived for this reproduction,
//! organised by the residue of `n` mod 8 (equivalently the parity of `p`
//! and of `q = p/2`). All of them share the **parity-split** skeleton:
//!
//! * *Within-parity* requests (even distance) live on the two sub-rings of
//!   even / odd positions, each isomorphic to `K_p` over `C_p` with all
//!   gaps doubled: cover them with two *lifted* copies of an optimal
//!   covering of `K_p` (recursively).
//! * *Cross-parity* requests (odd distance) are covered by explicit
//!   algebraic quad families.
//!
//! ## `n ≡ 2 (mod 4)` (`p` odd) — fully closed form
//!
//! Cross quads `Q(a,b)` with gap sequence `(a, p+1−a, b, p−1−b)` at offset
//! `−(a+b) mod n`, for odd `a ∈ [3, p]`, odd `b ∈ [1, p−2]`. A residue
//! computation (mod 2 × mod p, `DESIGN.md` §2.3) shows these cover every
//! odd-distance class except a *residual* of exactly `2p−1` requests:
//! a star at vertex `p`, the `(p−1)/2` "path" requests `{w, w+1}` with
//! even `w ≥ p+1`, and `(p−1)/2` diameters `{v, v+p}` with odd `v`. The
//! residual is finished by exactly `(p+1)/2` closed-form tiles:
//!
//! * `R = {1, 2, p, p+1}`,
//! * hexagons `H(u) = {u, u+1, p, p+u−2, p+u−1, p+u}` for odd `u ∈ [3, p−2]`,
//! * `Z = {0, p, 2p−2, 2p−1}`.
//!
//! Every tile carries at most one diameter (a DRC cycle cannot carry two),
//! and the star/path/diameter chords distribute perfectly. Total:
//! `2·ρ(p) + (p−1)²/4 + (p+1)/2 = ⌈(p²+1)/2⌉` — machine-verified for every
//! applicable `n ≤ ~400` by the tests and property tests.
//!
//! ## `n ≡ 4 (mod 8)` (`p ≡ 2 (mod 4)`) — fully closed form
//!
//! Cross quads `Q(a,b)` with gaps `(a, p−a, b, p−b)` at offset `−(a+b)`,
//! over all odd `a, b ∈ [1, p−1]`: exactly `q²` quads (`q = p/2`) covering
//! every cross request exactly once, no residual. Total
//! `2·ρ(p) + q² = 2q² + 1 = ⌈(p²+1)/2⌉` (using `q` odd here).
//!
//! ## `n ≡ 0 (mod 8)` (`q` even) — solver-assisted
//!
//! Here the split pays both halves' `+1` parity penalties and lands at
//! `ρ(n)+1`, and we prove in `DESIGN.md` that the natural slack-transfer
//! repairs cannot close the gap (a pentagon chain always loses a strictly
//! nested cross chord, and no short path on `C_p` carries total distance
//! ≥ `p`). For `n = 8` we ship the covering found and certified optimal by
//! the exact branch-and-bound solver. For larger `n ≡ 0 (mod 8)` the
//! library returns the parity-split covering of size `ρ(n)+1` and reports
//! the status honestly via [`Optimality`] — mirroring the note itself,
//! which asserts Theorem 2 without constructions. `EXPERIMENTS.md` E2
//! records this reproduction gap explicitly.

use crate::{odd, small, DrcCovering};
use cyclecover_ring::{Ring, Tile};

/// Whether a returned covering is certified minimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Optimality {
    /// Size equals `ρ(n)` (matches the capacity/parity lower bound).
    Optimal,
    /// Size equals `ρ(n) + excess`: the optimum exists by Theorem 2 but no
    /// constructive witness is implemented for this `n`
    /// (`n ≡ 0 (mod 8)`, `n ≥ 16`; the excess is 1 there and compounds
    /// through the parity-split recursion for `n ≡ 0 (mod 16)`).
    Excess(u32),
}

/// Builds a DRC covering of `K_n` over `C_n` for even `n ≥ 8`; size is
/// exactly `ρ(n)` whenever `n ≢ 0 (mod 8)` or `n = 8`.
///
/// # Panics
/// Panics if `n` is odd or `< 8`.
pub fn construct(n: u32) -> DrcCovering {
    construct_with_status(n).0
}

/// As [`construct`], also reporting the optimality status.
pub fn construct_with_status(n: u32) -> (DrcCovering, Optimality) {
    assert!(n >= 8 && n.is_multiple_of(2), "even construction needs even n >= 8, got {n}");
    let p = n / 2;
    if p % 2 == 1 {
        (construct_2mod4(n), Optimality::Optimal)
    } else if p % 4 == 2 {
        (construct_4mod8(n), Optimality::Optimal)
    } else {
        construct_0mod8(n)
    }
}

/// Builds the inner covering of `K_p` for the parity split.
fn inner_cover(p: u32) -> DrcCovering {
    if p <= 6 {
        small::construct(p)
    } else if p % 2 == 1 {
        odd::construct(p)
    } else {
        construct(p)
    }
}

/// Lifts a covering of `C_p` onto the even (`parity = 0`) or odd
/// (`parity = 1`) positions of `C_2p`. Winding tiles stay winding: every
/// gap doubles, and the lifted arcs tile the big ring.
fn lift(inner: &DrcCovering, big: Ring, parity: u32) -> Vec<Tile> {
    inner
        .tiles()
        .iter()
        .map(|t| {
            Tile::from_vertices(big, t.vertices().iter().map(|&v| 2 * v + parity).collect())
        })
        .collect()
}

/// `n ≡ 2 (mod 4)`: closed-form construction (see module docs).
fn construct_2mod4(n: u32) -> DrcCovering {
    let p = n / 2;
    debug_assert!(p % 2 == 1 && p >= 5);
    let big = Ring::new(n);
    let inner = inner_cover(p);
    let mut tiles = lift(&inner, big, 0);
    tiles.extend(lift(&inner, big, 1));

    // Cross family: Q(a,b) = gaps (a, p+1−a, b, p−1−b) at −(a+b).
    let mut a = 3;
    while a <= p {
        let mut b = 1;
        while b <= p - 2 {
            let s = (2 * n - a - b) % n;
            tiles.push(Tile::from_gaps(big, s, &[a, p + 1 - a, b, p - 1 - b]));
            b += 2;
        }
        a += 2;
    }

    // Residual: R, H(u), Z.
    tiles.push(Tile::from_vertices(big, vec![1, 2, p, p + 1]));
    let mut u = 3;
    while u <= p - 2 {
        tiles.push(Tile::from_vertices(
            big,
            vec![u, u + 1, p, p + u - 2, p + u - 1, p + u],
        ));
        u += 2;
    }
    tiles.push(Tile::from_vertices(big, vec![0, p, 2 * p - 2, 2 * p - 1]));

    DrcCovering::from_tiles(big, tiles)
}

/// `n ≡ 4 (mod 8)`: closed-form construction (see module docs).
fn construct_4mod8(n: u32) -> DrcCovering {
    let p = n / 2;
    debug_assert!(p % 4 == 2);
    let big = Ring::new(n);
    let inner = inner_cover(p);
    let mut tiles = lift(&inner, big, 0);
    tiles.extend(lift(&inner, big, 1));

    // Cross family: Q(a,b) = gaps (a, p−a, b, p−b) at −(a+b), odd a,b.
    let mut a = 1;
    while a < p {
        let mut b = 1;
        while b < p {
            let s = (2 * n - a - b) % n;
            tiles.push(Tile::from_gaps(big, s, &[a, p - a, b, p - b]));
            b += 2;
        }
        a += 2;
    }

    DrcCovering::from_tiles(big, tiles)
}

/// `n ≡ 0 (mod 8)`: solver-found table for `n = 8`, parity-split `+1`
/// fallback beyond.
fn construct_0mod8(n: u32) -> (DrcCovering, Optimality) {
    if n == 8 {
        // Optimal 9-cycle covering found by the exact branch & bound solver
        // (cyclecover-solver) and certified by the infeasibility proof at
        // budget 8. Re-verified by this crate's tests.
        let big = Ring::new(8);
        let tiles = [
            vec![0, 1, 2, 3, 4],
            vec![1, 5, 6, 7],
            vec![0, 2, 6],
            vec![0, 3, 7],
            vec![0, 1, 3, 5],
            vec![1, 4, 6],
            vec![2, 5, 7],
            vec![3, 4, 5, 6],
            vec![0, 1, 2, 4, 7],
        ]
        .into_iter()
        .map(|v| Tile::from_vertices(big, v))
        .collect();
        return (DrcCovering::from_tiles(big, tiles), Optimality::Optimal);
    }
    // Fallback: parity split (size ρ(n) + 1, compounding recursively).
    let p = n / 2;
    let big = Ring::new(n);
    let inner = inner_cover(p);
    let mut tiles = lift(&inner, big, 0);
    tiles.extend(lift(&inner, big, 1));
    let mut a = 1;
    while a < p {
        let mut b = 1;
        while b < p {
            let s = (2 * n - a - b) % n;
            tiles.push(Tile::from_gaps(big, s, &[a, p - a, b, p - b]));
            b += 2;
        }
        a += 2;
    }
    let rho = cyclecover_solver::lower_bound::rho_formula(n);
    let excess = (tiles.len() as u64 - rho) as u32;
    (DrcCovering::from_tiles(big, tiles), Optimality::Excess(excess))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_solver::lower_bound::rho_formula;

    #[test]
    fn theorem2_2mod4_verified() {
        for p in [5u32, 7, 9, 11, 13, 21, 35, 51, 99] {
            let n = 2 * p;
            let cover = construct(n);
            assert_eq!(cover.len() as u64, rho_formula(n), "count at n={n}");
            cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn theorem2_4mod8_verified() {
        for p in [6u32, 10, 14, 22, 26, 50, 102] {
            let n = 2 * p;
            let cover = construct(n);
            assert_eq!(cover.len() as u64, rho_formula(n), "count at n={n}");
            cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn n8_table_is_valid_and_optimal() {
        let (cover, status) = construct_with_status(8);
        assert_eq!(status, Optimality::Optimal);
        assert_eq!(cover.len() as u64, rho_formula(8));
        cover.validate().expect("n=8 covering");
    }

    #[test]
    fn mod8_fallback_excess_is_reported_exactly() {
        for (n, want_excess) in [(16u32, 1u32), (24, 1), (32, 3), (40, 1), (64, 7)] {
            let (cover, status) = construct_with_status(n);
            cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            let rho = rho_formula(n);
            match status {
                Optimality::Optimal => panic!("n={n} unexpectedly optimal"),
                Optimality::Excess(x) => {
                    assert_eq!(x, want_excess, "n={n}");
                    assert_eq!(cover.len() as u64, rho + x as u64, "n={n}");
                }
            }
        }
    }

    /// Every cycle of every even construction carries at most one diameter
    /// (the structural invariant behind Theorem 2's counting).
    #[test]
    fn at_most_one_diameter_per_cycle() {
        for n in [10u32, 12, 14, 16, 20, 24] {
            let ring = Ring::new(n);
            let (cover, _) = construct_with_status(n);
            for t in cover.tiles() {
                let diams = t
                    .chords(ring)
                    .iter()
                    .filter(|c| ring.is_diameter_class(c.distance(ring)))
                    .count();
                assert!(diams <= 1, "n={n}, tile {t:?} has {diams} diameters");
            }
        }
    }
}
