//! Theorem 1: the closed-form optimal DRC-covering for odd `n = 2p+1`.
//!
//! The paper states `ρ(2p+1) = p(p+1)/2` with a covering of `p` C3 and
//! `p(p−1)/2` C4 — proof omitted. This module contains the constructive
//! proof derived for this reproduction.
//!
//! ## Derivation
//!
//! **Rigidity.** The capacity bound gives `ρ ≥ ⌈Σ dist / n⌉ = p(p+1)/2`.
//! For a covering *meeting* the bound every inequality is tight: every cycle
//! uses all `n` ring edges, every request is routed on its (unique, `n` odd)
//! shortest path, and no request is covered twice. Consequently every cycle
//! is a winding tile all of whose gaps are ≤ `p`, and the covering is an
//! exact *partition* of `E(K_n)`: equivalently, writing the chord of
//! distance `d` starting at ring position `v` as the *interval* `(v, d)`,
//! the tiles must use every interval `(v, d)`, `v ∈ Z_n`, `d ∈ 1..=p`,
//! **exactly once**.
//!
//! **Construction.** All arithmetic is mod `n = 2p+1`. We take:
//!
//! * triangles `T(d)`, `d ∈ 1..=p`, with gap sequence `(p, d, p+1−d)`
//!   starting at offset `t(d) = p·(d−1)`;
//! * formal quads `Q(d,e)`, `(d,e) ∈ [1..p] × [1..p−1]`, with gap sequence
//!   `(d, e, p+1−d, p−e)` starting at offset `s(d,e) = p·(d+e)`.
//!
//! Rotating `Q(d,e)` by two positions yields the gap sequence of
//! `Q(p+1−d, p−e)` at offset `s(d,e)+d+e`; one checks
//! `s(p+1−d, p−e) = s(d,e)+d+e (mod n)` holds for the formula above, so the
//! formal quads collapse **in pairs** onto `p(p−1)/2` distinct tiles (the
//! pairing `(d,e) ↔ (p+1−d, p−e)` is fixed-point-free because `2d = p+1`
//! and `2e = p` cannot both hold).
//!
//! **Exactness.** Fix a distance class `c ≤ p−1` and write `u = p+1 = 2⁻¹`,
//! noting `p ≡ −u (mod n)`. The class-`c` intervals used are:
//! first-slots `s(c,e) = p·c + p·e` (`e ∈ 1..p−1`), second-slots
//! `s(d,c)+d = p·c + (p+1)d` (`d ∈ 1..p`), and the two triangle slots
//! `t(c)+p` and `t(p+1−c)−c`. The quad slots are
//! `pc + u·{−(p−1)..−1}` and `pc + u·{1..p}`, i.e. `pc + u·x` for
//! `x ∈ {−(p−1), …, p} ∖ {0}` — `2p−1` distinct values whose complement in
//! `Z_n` is `{pc, pc − up}`; the two triangle slots equal exactly these two
//! values. Class `p` is checked the same way: multiplying the used offsets
//! by `p⁻¹` yields `{0..2p−1}` from triangles and quads plus
//! `p⁻¹(p+1) ≡ 2p` from `t(1)+p+1`, covering `Z_n`. Hence every interval is
//! used exactly once, so the tiles partition `E(K_n)` and the covering is
//! optimal. ∎
//!
//! The module tests machine-check every claim for all odd `n ≤ 301` (and
//! the crate's property tests push further).

use crate::DrcCovering;
use cyclecover_ring::{Ring, Tile};

/// Builds the Theorem-1 covering of `K_n` over `C_n` for odd `n ≥ 3`:
/// exactly `p` triangles and `p(p−1)/2` quads forming an exact partition of
/// `E(K_n)`, where `p = (n−1)/2`.
///
/// Runs in `O(n²)` time — linear in the output size.
///
/// # Panics
/// Panics if `n` is even or `< 3`.
pub fn construct(n: u32) -> DrcCovering {
    assert!(n >= 3 && n % 2 == 1, "odd construction needs odd n >= 3, got {n}");
    let ring = Ring::new(n);
    let p = (n - 1) / 2;
    let mut tiles = Vec::with_capacity((p as usize * (p as usize + 1)) / 2);

    // Triangles T(d): gaps (p, d, p+1−d) at offset t(d) = p(d−1).
    for d in 1..=p {
        let t = ring.reduce(p as u64 * (d as u64 - 1));
        tiles.push(Tile::from_gaps(ring, t, &[p, d, p + 1 - d]));
    }

    // Quads Q(d,e): gaps (d, e, p+1−d, p−e) at offset s = p(d+e); generate
    // one representative per identified pair {(d,e), (p+1−d, p−e)}.
    for d in 1..=p {
        for e in 1..p {
            // Representative: the lexicographically smaller of the pair.
            let partner = (p + 1 - d, p - e);
            if (d, e) > partner {
                continue;
            }
            let s = ring.reduce(p as u64 * (d as u64 + e as u64));
            tiles.push(Tile::from_gaps(ring, s, &[d, e, p + 1 - d, p - e]));
        }
    }

    DrcCovering::from_tiles(ring, tiles)
}

/// Expected cycle counts for odd `n = 2p+1` per Theorem 1:
/// `(p C3, p(p−1)/2 C4)`.
pub fn expected_composition(n: u32) -> (u64, u64) {
    assert!(n % 2 == 1);
    let p = ((n - 1) / 2) as u64;
    (p, p * (p - 1) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_solver::lower_bound::rho_formula;

    /// The full Theorem-1 verification: for every odd n ≤ 301 the
    /// construction has exactly rho(n) cycles with the paper's composition,
    /// covers K_n, and is an exact partition.
    #[test]
    fn theorem1_verified_up_to_301() {
        for p in 1u32..=150 {
            let n = 2 * p + 1;
            let cover = construct(n);
            assert_eq!(cover.len() as u64, rho_formula(n), "count at n={n}");
            cover.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert!(cover.is_exact_decomposition(1), "n={n} not a partition");
            let stats = cover.stats();
            let (c3, c4) = expected_composition(n);
            assert_eq!(stats.c3 as u64, c3, "C3 count at n={n}");
            assert_eq!(stats.c4 as u64, c4, "C4 count at n={n}");
            assert_eq!(stats.longer, 0);
            assert_eq!(stats.overlapped_requests, 0);
        }
    }

    /// Every gap of every tile is ≤ p: all requests ride shortest paths
    /// (the rigidity property the optimality argument needs).
    #[test]
    fn all_shortest_path_routing() {
        for n in [7u32, 15, 29, 61] {
            let ring = Ring::new(n);
            let p = (n - 1) / 2;
            for t in construct(n).tiles() {
                assert!(t.max_gap(ring) <= p, "n={n}, tile {t:?}");
                assert_eq!(t.shortest_load(ring), n, "n={n}: tile must be fully loaded");
            }
        }
    }

    /// n=3: one triangle; n=5: the DESIGN.md worked example shape.
    #[test]
    fn tiny_cases() {
        let c3 = construct(3);
        assert_eq!(c3.len(), 1);
        assert_eq!(c3.tiles()[0].vertices(), &[0, 1, 2]);

        let c5 = construct(5);
        assert_eq!(c5.len(), 3);
        assert!(c5.is_exact_decomposition(1));
        let stats = c5.stats();
        assert_eq!((stats.c3, stats.c4), (2, 1));
    }

    /// The identified-pair dedup is exact: generating all formal quads
    /// yields each tile exactly twice.
    #[test]
    fn formal_quads_pair_up() {
        for n in [9u32, 13, 21] {
            let ring = Ring::new(n);
            let p = (n - 1) / 2;
            let mut all = Vec::new();
            for d in 1..=p {
                for e in 1..p {
                    let s = ring.reduce(p as u64 * (d as u64 + e as u64));
                    all.push(Tile::from_gaps(ring, s, &[d, e, p + 1 - d, p - e]));
                }
            }
            all.sort();
            assert_eq!(all.len() % 2, 0);
            for pair in all.chunks(2) {
                assert_eq!(pair[0], pair[1], "n={n}: formal quads must pair up");
            }
            all.dedup();
            assert_eq!(all.len() as u64, (p as u64) * (p as u64 - 1) / 2);
        }
    }

    #[test]
    #[should_panic(expected = "odd construction")]
    fn rejects_even() {
        let _ = construct(8);
    }

    /// Interval exactness, checked directly: every (position, distance)
    /// interval is used exactly once across all tiles.
    #[test]
    fn interval_exactness_direct() {
        for n in [11u32, 19, 31] {
            let ring = Ring::new(n);
            let p = (n - 1) / 2;
            let mut used = vec![0u32; (n * p) as usize];
            for t in construct(n).tiles() {
                for a in t.arcs(ring) {
                    assert!(a.len() <= p);
                    used[((a.len() - 1) * n + a.start()) as usize] += 1;
                }
            }
            assert!(used.iter().all(|&c| c == 1), "n={n}: interval multiplicity != 1");
        }
    }
}
