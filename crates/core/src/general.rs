//! Covering *general* logical graphs over a ring (the paper's "more
//! general logical graphs" extension).
//!
//! When the instance `I` is not the complete graph, the securization
//! problem becomes: cover the edges of `I` by DRC-routable cycles,
//! minimizing the cycle count. Two wrinkles appear:
//!
//! * an edge of `I` may not lie on any cycle *within* `I` (e.g. a bridge),
//!   so covering cycles are allowed to use *phantom* requests — chords not
//!   in `I` whose capacity is reserved purely to close the protection
//!   cycle. Phantom chords are wasted capacity, reported by
//!   [`GeneralCover::phantom_edges`].
//! * optimality is no longer given by a formula; we provide a greedy
//!   heuristic ([`greedy_cover`]) plus exact small-`n` search through
//!   `cyclecover-solver` (see experiment E8).
//!
//! The heuristic is the classical set-cover greedy over the winding-tile
//! universe, scoring tiles by *instance* edges newly covered and breaking
//! ties toward fewer phantom chords.

use crate::DrcCovering;
use cyclecover_graph::{Edge, Graph};
use cyclecover_ring::{Ring, Tile};
use cyclecover_solver::TileUniverse;

/// Result of covering a general instance.
pub struct GeneralCover {
    /// The covering itself (cycles may include phantom chords).
    pub covering: DrcCovering,
    /// Chords used by cycles that are not edges of the instance.
    pub phantom_edges: Vec<Edge>,
}

/// Greedily covers the edges of the instance graph `inst` (vertices must
/// be `0..n` of the ring) by DRC cycles of length ≤ `max_len`.
///
/// Returns `None` if `inst` has no edges (nothing to cover — an empty
/// covering would be ambiguous, so the degenerate case is explicit).
///
/// # Panics
/// Panics if the instance has more vertices than the ring.
pub fn greedy_cover(ring: Ring, inst: &Graph, max_len: usize) -> Option<GeneralCover> {
    assert!(
        inst.vertex_count() <= ring.n() as usize,
        "instance has {} vertices but ring only {}",
        inst.vertex_count(),
        ring.n()
    );
    if inst.edge_count() == 0 {
        return None;
    }
    let n = ring.n() as usize;
    let universe = TileUniverse::new(ring, max_len);

    let mut want = vec![false; n * (n - 1) / 2];
    let mut remaining = 0usize;
    for e in inst.edges() {
        let i = e.dense_index(n);
        if !want[i] {
            want[i] = true;
            remaining += 1;
        }
    }

    // Precompute tile chord indices.
    let tile_chords: Vec<Vec<u32>> = universe
        .tiles()
        .iter()
        .map(|t| {
            t.chords(ring)
                .iter()
                .map(|c| c.to_edge().dense_index(n) as u32)
                .collect()
        })
        .collect();

    let mut covered = vec![false; n * (n - 1) / 2];
    let mut chosen: Vec<Tile> = Vec::new();
    while remaining > 0 {
        let mut best: Option<(usize, usize, usize)> = None; // (idx, gain, phantom)
        for (i, chords) in tile_chords.iter().enumerate() {
            let mut gain = 0;
            let mut phantom = 0;
            for &c in chords {
                let c = c as usize;
                if want[c] && !covered[c] {
                    gain += 1;
                } else if !want[c] {
                    phantom += 1;
                }
            }
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bg, bp)) => gain > bg || (gain == bg && phantom < bp),
            };
            if better {
                best = Some((i, gain, phantom));
            }
        }
        let (i, gain, _) = best.expect("an uncovered instance edge always lies in a triangle");
        for &c in &tile_chords[i] {
            covered[c as usize] = true;
        }
        remaining -= gain;
        chosen.push(universe.tiles()[i].clone());
    }

    let mut phantom_edges = Vec::new();
    let mut seen = vec![false; n * (n - 1) / 2];
    for t in &chosen {
        for c in t.chords(ring) {
            let i = c.to_edge().dense_index(n);
            if !want[i] && !seen[i] {
                seen[i] = true;
                phantom_edges.push(c.to_edge());
            }
        }
    }
    Some(GeneralCover {
        covering: DrcCovering::from_tiles(ring, chosen),
        phantom_edges,
    })
}

/// Checks that `cover` covers every edge of `inst`.
pub fn covers_instance(cover: &DrcCovering, inst: &Graph) -> bool {
    let m = cover.coverage();
    inst.edges().iter().all(|e| m.count(*e) >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_graph::builders;

    #[test]
    fn covers_complete_instance_like_kn() {
        let ring = Ring::new(9);
        let inst = builders::complete(9);
        let got = greedy_cover(ring, &inst, 4).expect("non-empty");
        assert!(covers_instance(&got.covering, &inst));
        assert!(got.phantom_edges.is_empty(), "K_n needs no phantom chords");
        // Greedy is within 2x of the optimum on K_9.
        assert!(got.covering.len() as u64 <= 2 * crate::rho(9));
    }

    #[test]
    fn covers_ring_instance_cheaply() {
        // Instance = the ring itself: n requests, each tile covers <= its
        // length of them; the single Hamiltonian tile covers all.
        let ring = Ring::new(8);
        let inst = builders::cycle(8);
        let got = greedy_cover(ring, &inst, 8).expect("non-empty");
        assert!(covers_instance(&got.covering, &inst));
        assert_eq!(got.covering.len(), 1, "C_n is itself one DRC cycle");
    }

    #[test]
    fn star_instance_needs_phantoms() {
        // A star at vertex 0 has no cycles: phantom chords are required.
        let mut inst = Graph::new(6);
        for v in 1..6 {
            inst.add_edge(0, v);
        }
        let ring = Ring::new(6);
        let got = greedy_cover(ring, &inst, 4).expect("non-empty");
        assert!(covers_instance(&got.covering, &inst));
        assert!(
            !got.phantom_edges.is_empty(),
            "covering a star must reserve phantom capacity"
        );
    }

    #[test]
    fn empty_instance_is_none() {
        let ring = Ring::new(5);
        let inst = Graph::new(5);
        assert!(greedy_cover(ring, &inst, 4).is_none());
    }

    #[test]
    fn random_instances_covered() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for n in [7u32, 10, 13] {
            let ring = Ring::new(n);
            let mut inst = Graph::new(n as usize);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.4) {
                        inst.add_edge(u, v);
                    }
                }
            }
            if inst.edge_count() == 0 {
                continue;
            }
            let got = greedy_cover(ring, &inst, 4).expect("non-empty");
            assert!(covers_instance(&got.covering, &inst), "n={n}");
            got.covering.validate().ok(); // validate() checks K_n coverage; not required here
        }
    }
}
