//! λ-fold instances: covering `λK_n` (the paper's first listed extension).
//!
//! The note closes: *"As an extension of this problem, we are now
//! investigating cases with other communication instances such as λK_n."*
//! This module provides the natural baseline the investigation starts
//! from:
//!
//! * `ρ_λ(n) ≤ λ·ρ(n)` — concatenate `λ` copies of the optimal simple
//!   covering ([`construct`]);
//! * `ρ_λ(n) ≥ ⌈λ·Σdist/n⌉` — the capacity bound scales linearly
//!   ([`capacity_lower_bound`]).
//!
//! For odd `n` the two meet (`Σdist/n` is an integer and the simple
//! covering is a partition routed on shortest paths), so
//! `ρ_λ(2p+1) = λ·p(p+1)/2` exactly. For even `n` and even `λ` the scaled
//! capacity bound is `λ·p²/2`, one *below* `λ·ρ(n)` per copy-pair — whether
//! coverings can exploit this is exactly the open question the paper
//! gestures at; experiment E8 probes it with the exact solver on small `n`.

use crate::{construct_optimal, DrcCovering};
use cyclecover_ring::Ring;

/// Builds a DRC covering of `λK_n` (every request covered ≥ `λ` times)
/// with `λ ·ρ(n)`-ish cycles by repeating the optimal simple covering.
///
/// # Panics
/// Panics if `lambda == 0` or `n < 3`.
pub fn construct(n: u32, lambda: u32) -> DrcCovering {
    assert!(lambda >= 1, "lambda must be >= 1");
    let base = construct_optimal(n);
    let ring = base.ring();
    let mut tiles = Vec::with_capacity(base.len() * lambda as usize);
    for _ in 0..lambda {
        tiles.extend(base.tiles().iter().cloned());
    }
    DrcCovering::from_tiles(ring, tiles)
}

/// Capacity lower bound for `λK_n`: `⌈λ · Σ_{u<v} dist(u,v) / n⌉`.
pub fn capacity_lower_bound(n: u32, lambda: u32) -> u64 {
    let ring = Ring::new(n);
    (lambda as u64 * ring.total_pair_distance()).div_ceil(n as u64)
}

/// Upper bound from copy-concatenation: `λ · ρ(n)`.
pub fn upper_bound(n: u32, lambda: u32) -> u64 {
    lambda as u64 * crate::rho(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_coverings_cover_lambda_times() {
        for (n, lambda) in [(7u32, 2u32), (9, 3), (10, 2), (12, 4)] {
            let cover = construct(n, lambda);
            assert!(cover.coverage().covers_complete(lambda), "n={n} λ={lambda}");
            assert_eq!(cover.len() as u64, lambda as u64 * crate::rho(n) + bonus(n));
        }
    }

    fn bonus(_n: u32) -> u64 {
        0 // construct_optimal is exactly rho(n) on all tested n here
    }

    #[test]
    fn bounds_bracket() {
        for n in [5u32, 7, 9, 10, 12, 14] {
            for lambda in 1..=4 {
                let lb = capacity_lower_bound(n, lambda);
                let ub = upper_bound(n, lambda);
                assert!(lb <= ub, "n={n} λ={lambda}");
            }
        }
    }

    /// Odd n: bounds meet — the λ-fold problem is solved exactly.
    #[test]
    fn odd_n_tight() {
        for p in 1u64..=20 {
            let n = (2 * p + 1) as u32;
            for lambda in 1..=5u32 {
                assert_eq!(
                    capacity_lower_bound(n, lambda),
                    upper_bound(n, lambda),
                    "n={n} λ={lambda}"
                );
            }
        }
    }

    /// Even n, even λ: the scaled capacity bound dips below λ·ρ(n) —
    /// the open gap the paper's extension section points to.
    #[test]
    fn even_n_gap_exists() {
        for p in [3u64, 4, 5, 6] {
            let n = (2 * p) as u32;
            let gap = upper_bound(n, 2) as i64 - capacity_lower_bound(n, 2) as i64;
            assert!(gap >= 1, "n={n}: expected slack in λ=2 bounds");
        }
    }
}
