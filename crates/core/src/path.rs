//! Path (and tree) physical topologies — a sharp negative result.
//!
//! The paper's closing section proposes studying "other network
//! topologies, for example, trees of rings, grids or tori". The simplest
//! candidate beyond the ring — a bus/path topology `P_n` — admits a clean
//! impossibility theorem that explains *why* rings are the atomic unit of
//! cycle-based protection:
//!
//! > **Theorem (no DRC cycles on trees).** On a tree topology (in
//! > particular a path), no cycle `I_k` (k ≥ 3) admits an edge-disjoint
//! > routing: each request has a *unique* route, the tree path between its
//! > endpoints; walking around the cycle crosses every tree edge an even
//! > number of times, so if the routes were edge-disjoint every tree edge
//! > would be used 0 times — impossible since consecutive cycle vertices
//! > are distinct. ∎
//!
//! Consequently any survivable design on tree-like topologies must either
//! add physical edges to close rings ("trees of *rings*" — exactly the
//! next topology the paper names) or abandon cycle protection. This module
//! provides the machinery making the theorem executable:
//! [`route_cycle_on_path`] (the exhaustive analogue of the ring oracle —
//! trivial here because routes are unique) and tests confirming
//! infeasibility for every small cycle, plus the crossing-parity helper
//! [`crossing_count`] used in the proof.

use cyclecover_graph::CycleSubgraph;

/// Number of times the cycle's closed walk crosses the path edge between
/// positions `e` and `e+1` (i.e. how many consecutive cycle pairs have
/// endpoints on opposite sides of the cut). Always even, by the handshake
/// over the cut.
pub fn crossing_count(cycle: &CycleSubgraph, e: u32) -> usize {
    let verts = cycle.vertices();
    let k = verts.len();
    (0..k)
        .filter(|&i| {
            let a = verts[i];
            let b = verts[(i + 1) % k];
            (a <= e) != (b <= e)
        })
        .count()
}

/// Attempts to route the cycle's requests edge-disjointly on the path
/// `P_n` (vertices `0..n`, edges `{i, i+1}`). Routes are unique (the
/// interval between the endpoints), so this just checks pairwise
/// disjointness. By the theorem above it always returns `false` — kept as
/// an executable oracle so tests *demonstrate* rather than assume the
/// impossibility.
pub fn route_cycle_on_path(n: u32, cycle: &CycleSubgraph) -> bool {
    let verts = cycle.vertices();
    let k = verts.len();
    let mut used = vec![false; n.saturating_sub(1) as usize];
    for i in 0..k {
        let a = verts[i].min(verts[(i + 1) % k]);
        let b = verts[i].max(verts[(i + 1) % k]);
        for e in a..b {
            if used[e as usize] {
                return false;
            }
            used[e as usize] = true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive: no triangle or quad on P_n (n ≤ 8) is routable.
    #[test]
    fn no_cycle_routes_on_a_path() {
        for n in 3u32..=8 {
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        let t = CycleSubgraph::new(vec![a, b, c]);
                        assert!(!route_cycle_on_path(n, &t), "triangle {t:?} routed on P_{n}?!");
                        for d in (c + 1)..n {
                            for order in [[a, b, c, d], [a, c, b, d], [a, b, d, c]] {
                                let q = CycleSubgraph::new(order.to_vec());
                                assert!(!route_cycle_on_path(n, &q), "quad {q:?} on P_{n}?!");
                            }
                        }
                    }
                }
            }
        }
    }

    /// The proof's parity invariant: every cut is crossed an even number
    /// of times, and some cut is crossed ≥ 2 times.
    #[test]
    fn crossing_parity_invariant() {
        for n in 4u32..=9 {
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        let t = CycleSubgraph::new(vec![a, b, c]);
                        let mut some_positive = false;
                        for e in 0..n - 1 {
                            let x = crossing_count(&t, e);
                            assert_eq!(x % 2, 0, "odd crossing at cut {e} for {t:?}");
                            some_positive |= x >= 2;
                        }
                        assert!(some_positive, "cycle must cross some cut");
                    }
                }
            }
        }
    }
}
