//! Keeps `docs/wire-format.md` honest: every fenced ```json block in the
//! document must parse, and each document kind must survive the full
//! round trip its consumers apply (requests: parse → emit → parse to the
//! same job; solutions with coverings: DRC re-validation; solutions
//! without: the documented "no covering" rejection).

use cyclecover_io::json::{
    covering_from_solution_json, request_from_json, request_to_json, Json,
};

const DOC: &str = include_str!("../../../docs/wire-format.md");

/// Extracts the contents of every ```json fence in the document.
fn json_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match (&mut current, line.trim_end()) {
            (None, "```json") => current = Some(String::new()),
            (Some(block), "```") => {
                blocks.push(std::mem::take(block));
                current = None;
            }
            (Some(block), text) => {
                block.push_str(text);
                block.push('\n');
            }
            (None, _) => {}
        }
    }
    assert!(current.is_none(), "unterminated ```json fence");
    blocks
}

#[test]
fn every_example_parses_and_round_trips() {
    let blocks = json_blocks(DOC);
    assert!(
        blocks.len() >= 5,
        "expected the documented example set, found {}",
        blocks.len()
    );
    let mut requests = 0;
    let mut solutions_with_covering = 0;
    let mut solutions_without = 0;
    let mut streaming = 0;
    for block in &blocks {
        let doc = Json::parse(block).unwrap_or_else(|e| panic!("bad example: {e}\n{block}"));
        let version = doc.get("version").and_then(Json::as_num);
        match doc.get("format").and_then(Json::as_str) {
            Some("cyclecover-request") => {
                requests += 1;
                let job = request_from_json(block)
                    .unwrap_or_else(|e| panic!("request example rejected: {e}\n{block}"));
                // Emit → parse lands on the same job (the documented
                // round trip).
                let emitted = request_to_json(&job);
                assert_eq!(
                    request_from_json(&emitted).unwrap(),
                    job,
                    "round trip drifted for:\n{block}"
                );
            }
            Some("cyclecover-solution") => match doc.get("cycles") {
                Some(Json::Null) => {
                    solutions_without += 1;
                    let err = covering_from_solution_json(block).unwrap_err();
                    assert!(err.contains("no covering"), "{err}");
                }
                _ => {
                    solutions_with_covering += 1;
                    let covering = covering_from_solution_json(block)
                        .unwrap_or_else(|e| panic!("solution example rejected: {e}\n{block}"));
                    covering
                        .validate()
                        .unwrap_or_else(|e| panic!("example covering invalid: {e:?}\n{block}"));
                }
            },
            // Daemon-side documents: structural checks here (this crate
            // sits below the service layer); the deep round trips live
            // in `crates/service/tests/wire_docs.rs`.
            Some("cyclecover-reject") => {
                streaming += 1;
                assert_eq!(version, Some(1.0), "reject example version:\n{block}");
                let reason = doc.get("reason").and_then(Json::as_str).expect("reason");
                assert!(
                    ["parse", "oversized", "overload", "admission", "predicted_unmeetable"]
                        .contains(&reason),
                    "undocumented reject reason {reason:?}"
                );
                assert!(doc.get("detail").and_then(Json::as_str).is_some());
                if reason == "predicted_unmeetable" {
                    assert!(
                        doc.get("predicted_nodes").and_then(Json::as_num).is_some(),
                        "predictive reject must carry its evidence:\n{block}"
                    );
                }
            }
            Some("cyclecover-control") => {
                streaming += 1;
                assert_eq!(version, Some(1.0), "control example version:\n{block}");
                let op = doc.get("op").and_then(Json::as_str).expect("op");
                assert!(["stats", "shutdown"].contains(&op), "unknown op {op:?}");
            }
            Some(
                "cyclecover-daemon-stats"
                | "cyclecover-calibration"
                | "cyclecover-certificate-cache"
                | "cyclecover-engines",
            ) => {
                streaming += 1;
                assert_eq!(version, Some(1.0), "streaming example version:\n{block}");
            }
            other => panic!("example with unknown format {other:?}:\n{block}"),
        }
    }
    assert!(requests >= 3, "documented request examples went missing");
    assert!(solutions_with_covering >= 1 && solutions_without >= 1);
    assert!(
        streaming >= 5,
        "daemon protocol examples went missing, found {streaming}"
    );
}
