//! Keeps `docs/wire-format.md` honest: every fenced ```json block in the
//! document must parse, and each document kind must survive the full
//! round trip its consumers apply (requests: parse → emit → parse to the
//! same job; solutions with coverings: DRC re-validation; solutions
//! without: the documented "no covering" rejection).

use cyclecover_io::json::{
    covering_from_solution_json, request_from_json, request_to_json, Json,
};

const DOC: &str = include_str!("../../../docs/wire-format.md");

/// Extracts the contents of every ```json fence in the document.
fn json_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match (&mut current, line.trim_end()) {
            (None, "```json") => current = Some(String::new()),
            (Some(block), "```") => {
                blocks.push(std::mem::take(block));
                current = None;
            }
            (Some(block), text) => {
                block.push_str(text);
                block.push('\n');
            }
            (None, _) => {}
        }
    }
    assert!(current.is_none(), "unterminated ```json fence");
    blocks
}

#[test]
fn every_example_parses_and_round_trips() {
    let blocks = json_blocks(DOC);
    assert!(
        blocks.len() >= 5,
        "expected the documented example set, found {}",
        blocks.len()
    );
    let mut requests = 0;
    let mut solutions_with_covering = 0;
    let mut solutions_without = 0;
    for block in &blocks {
        let doc = Json::parse(block).unwrap_or_else(|e| panic!("bad example: {e}\n{block}"));
        match doc.get("format").and_then(Json::as_str) {
            Some("cyclecover-request") => {
                requests += 1;
                let job = request_from_json(block)
                    .unwrap_or_else(|e| panic!("request example rejected: {e}\n{block}"));
                // Emit → parse lands on the same job (the documented
                // round trip).
                let emitted = request_to_json(&job);
                assert_eq!(
                    request_from_json(&emitted).unwrap(),
                    job,
                    "round trip drifted for:\n{block}"
                );
            }
            Some("cyclecover-solution") => match doc.get("cycles") {
                Some(Json::Null) => {
                    solutions_without += 1;
                    let err = covering_from_solution_json(block).unwrap_err();
                    assert!(err.contains("no covering"), "{err}");
                }
                _ => {
                    solutions_with_covering += 1;
                    let covering = covering_from_solution_json(block)
                        .unwrap_or_else(|e| panic!("solution example rejected: {e}\n{block}"));
                    covering
                        .validate()
                        .unwrap_or_else(|e| panic!("example covering invalid: {e:?}\n{block}"));
                }
            },
            other => panic!("example with unknown format {other:?}:\n{block}"),
        }
    }
    assert!(requests >= 3, "documented request examples went missing");
    assert!(solutions_with_covering >= 1 && solutions_without >= 1);
}
