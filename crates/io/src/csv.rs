//! Minimal CSV table writer for experiment outputs.
//!
//! The table binaries of `cyclecover-bench` emit both human-readable
//! rows and machine-readable CSV; this module is the (dependency-free)
//! CSV side, with RFC-4180-style quoting.

use std::fmt::Write as _;

/// An in-memory table: header plus rows of stringly cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180-ish CSV (CRLF-free: plain `\n` line ends, cells
    /// quoted when they contain commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        emit_row(&mut out, &self.header);
        for r in &self.rows {
            emit_row(&mut out, r);
        }
        out
    }

    /// Renders an aligned ASCII table for terminal output.
    pub fn to_ascii(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = width[i]);
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            fmt_row(&mut out, r);
        }
        out
    }
}

fn emit_row(out: &mut String, cells: &[String]) {
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if c.contains(',') || c.contains('"') || c.contains('\n') {
            out.push('"');
            out.push_str(&c.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(c);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_basic() {
        let mut t = Table::new(["n", "rho"]);
        t.push(["5", "3"]);
        t.push(["7", "6"]);
        assert_eq!(t.to_csv(), "n,rho\n5,3\n7,6\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["a", "b"]);
        t.push(["x,y", "say \"hi\""]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn ascii_alignment() {
        let mut t = Table::new(["n", "cycles"]);
        t.push(["5", "3"]);
        t.push(["101", "1275"]);
        let a = t.to_ascii();
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cycles"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("1275"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a"]);
        t.push(["1", "2"]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["only", "header"]);
        assert!(t.is_empty());
        assert_eq!(t.to_csv(), "only,header\n");
    }
}
