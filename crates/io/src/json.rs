//! The JSON wire protocol: request and solution documents.
//!
//! This module is the normative definition of the two document kinds the
//! workspace speaks over the wire — what the batch solve service
//! (`cyclecover-service`, `cyclecover serve --batch`) consumes and what
//! every solver front-end emits. Worked examples live in
//! `docs/wire-format.md` at the repository root; an integration test
//! round-trips every example there through this parser.
//!
//! # Common rules
//!
//! * Documents are JSON objects. Every document carries a `"format"`
//!   discriminator string and an integer `"version"`.
//! * **Versioning**: a consumer MUST reject a document whose `version`
//!   exceeds the version it implements (currently `1` for both kinds),
//!   and MUST ignore object fields it does not recognize — additive
//!   fields are a compatible change, renames/removals/semantic changes
//!   require a version bump.
//! * Numbers are interchanged as JSON numbers; every field below is an
//!   unsigned integer unless stated otherwise. Parsing is std-only:
//!   [`Json`] is a minimal recursive-descent reader sufficient for this
//!   schema (and for any well-formed document without surrogate-pair
//!   escapes).
//!
//! # Request documents — `"format": "cyclecover-request"` (version 1)
//!
//! One solve job. Parsed by [`request_from_json`] into a [`SolveJob`],
//! emitted (single-line, suitable for `.jsonl` batch files) by
//! [`request_to_json`].
//!
//! | field | required | meaning |
//! |-------|----------|---------|
//! | `format` | yes | the string `"cyclecover-request"` |
//! | `version` | yes | `1` |
//! | `id` | no | job identifier: 1–64 chars from `[A-Za-z0-9._-]`; defaults to `""` (the service assigns `job-<seq>`) |
//! | `n` | yes | ring size, `≥ 3` |
//! | `max_len` | no | max tile vertex count, `3 ≤ max_len ≤ n`; default `n` |
//! | `max_gap` | no | max ring gap between consecutive tile vertices, `1 ≤ max_gap ≤ n`; default `n` (unconstrained) |
//! | `requests` | no | array of `[u, v]` vertex pairs (`u ≠ v`, both `< n`): the demand is *exactly these requests, each `lambda` times*; absent or `null` = all of `K_n` |
//! | `lambda` | no | covering multiplicity `λ ≥ 1`: every request must be covered `λ` times; default `1` (the classical cover). `λ ≤ 3` runs on the packed lane kernel; larger λ falls back to the recursive multiplicity kernel |
//! | `engine` | no | engine registry name; default `"bitset"` (validated against the registry at admission, not parse, time) |
//! | `objective` | no | `{"kind": "find_optimal"}` (default), `{"kind": "within_budget", "budget": K}`, or `{"kind": "prove_infeasible", "budget": K}` |
//! | `max_nodes` | no | search-node budget for the whole request |
//! | `deadline_ms` | no | wall-clock deadline in milliseconds, **measured from batch start**: the scheduler admits the job only while `now < start + deadline_ms`, and an admitted job runs with the remaining slice; an expired job is reported `budget_exhausted`/`deadline` without running |
//! | `symmetry` | no | `"off"`, `"root"`, or `"full"`; absent = the engine default (`root` for exact engines) |
//! | `memo` | no | boolean: enable/disable the refutation-store memo; absent or `null` = the engine default (on for exact engines) |
//! | `memo_mb` | no | refutation-store byte budget in MiB (`≥ 1`); absent = the engine default (32 MiB) |
//! | `fallback` | no | array of engine registry names forming the degradation ladder: when the primary `engine` exhausts its budget (or fails), a scheduler may re-dispatch down this chain in order, and the answer carries an honest `degraded` record; absent or `null` = no fallback |
//!
//! `(n, max_len, max_gap)` is the **universe key**: jobs agreeing on it
//! share one precomputed [`TileUniverse`](cyclecover_solver::TileUniverse)
//! (the service caches these by key under a byte budget). Everything
//! *except* `id` and `deadline_ms` forms the **coalescing key**: identical
//! jobs are solved once and fanned back out to every waiter.
//!
//! # Solution documents — `"format": "cyclecover-solution"` (version 1)
//!
//! One engine answer. Emitted by [`solution_to_json`]; the covering is
//! independently re-validated on receipt by [`covering_from_solution_json`]
//! — the same trust boundary as the v1 text format, for machines instead
//! of humans.
//!
//! | field | meaning |
//! |-------|---------|
//! | `format` | the string `"cyclecover-solution"` |
//! | `version` | `1` |
//! | `n` | ring size the problem was solved on |
//! | `engine` | registry name of the engine that answered (`"service"` when a scheduler rejected the job unrun) |
//! | `cached` | boolean: `true` when the answer was served from a persisted certificate cache — no kernel ran and the stats are all-zero; `false` for every freshly-computed answer |
//! | `optimality` | the certificate object, below |
//! | `degraded` | `null` for a direct engine answer; otherwise `{"from": E1, "to": E2, "reason": R}` — a scheduler walked the request's `fallback` ladder and engine `E2` answered instead of the requested `E1`. `R` is `"panicked"` or one of the `budget_exhausted` reason strings (why `E1` was abandoned) |
//! | `size` | number of cycles, or `null` when no covering is carried |
//! | `cycles` | array of cycles (each an array of ring vertices), or `null` |
//! | `stats` | `{nodes, pruned, dominated, sym_pruned, canon_pruned, memo_hits, shared_hits, memo_entries, partition_probes, symmetry_factor, budgets_tried, attempts, wall_ms}`; `wall_ms` is a float; `attempts` counts engine dispatches (1 = direct solve, more under a retrying/degrading scheduler, 0 = never started); `shared_hits` is the subset of `memo_hits` landing on refutations another searcher recorded (an earlier deepening probe, a parallel worker, or — under a shared store — another request); `partition_probes` is the certificate's route provenance — how many budget probes ran on the slack-budgeted partition kernel rather than branch & bound (0 = none did) |
//!
//! `optimality.kind` is one of:
//!
//! * `"optimal"` — carries `proof`, either
//!   `{"kind": "combinatorial_bound", "bound": B}` or
//!   `{"kind": "exhaustive_search", "infeasible_budget": K, "nodes": N,
//!   "symmetry_factor": F}` (`F` = order of the dihedral subgroup the
//!   refutation's root branch was reduced by, `1` = unreduced — keeps
//!   symmetry-reduced certificates auditable);
//! * `"feasible"` — a covering meeting the objective, optimality unknown;
//! * `"infeasible"` — exhaustively proved impossible within the budget;
//! * `"budget_exhausted"` — carries `reason`: `"node_budget"`,
//!   `"deadline"`, `"cancelled"`, `"shutdown"` (cancelled by a service
//!   draining for shutdown), or `"engine_limit"`;
//! * `"failed"` — a terminal failure, not a resource verdict: carries
//!   `reason`, `"panic"` (the engine panicked; caught at the service's
//!   isolation boundary) or `"internal"` (a service-internal failure
//!   prevented the solve from starting). Retrying with a bigger budget
//!   will not help.
//!
//! `cycles` (and `size`) are `null` exactly when the verdict carries no
//! covering (`infeasible`, `budget_exhausted`, `failed`).
//!
//! **Limitation (v1, normative):** a solution document does not carry
//! the demand spec it answered, so [`covering_from_solution_json`]
//! re-validates each cycle against the ring's DRC rules but full
//! *coverage* validation ([`DrcCovering::validate`]) asserts the
//! complete-`K_n` spec. Answers to partial-instance requests
//! (`requests` set) therefore re-validate only at the DRC trust
//! boundary; receivers that need coverage checked against a partial
//! spec must keep the request document alongside. Carrying the spec in
//! the solution document is a planned v2 addition.
//!
//! # Certificate-cache documents — `"format": "cyclecover-certificate-cache"` (version 1)
//!
//! The service's persisted answer store (`serve --cert-cache FILE`): a
//! repeat wire-identical request is answered from here with zero kernel
//! nodes, marked `"cached": true`. Built and parsed by
//! `cyclecover_service::CertCache`; the shape is normative here because
//! it is a wire document like the other two.
//!
//! | field | required | meaning |
//! |-------|----------|---------|
//! | `format` | yes | the string `"cyclecover-certificate-cache"` |
//! | `version` | yes | `1` |
//! | `entries` | yes | array of `{"key": K, "solution": S}` objects |
//!
//! `K` is the request's **coalescing key**: its `cyclecover-request`
//! document re-serialized with `id` and `deadline_ms` blanked (the same
//! key the batch scheduler coalesces duplicate jobs under). `S` is the
//! single-line `cyclecover-solution` document originally emitted for
//! that request. Only terminal verdicts are persisted (`optimal`,
//! `infeasible`, never degraded); on load every entry is re-validated —
//! the key must re-parse as a request, the verdict must be cacheable,
//! and an `optimal` covering must re-pass the DRC and coverage checks
//! ([`certificate_from_solution_json`]) — and entries that fail are
//! dropped individually, never trusted. Caching is sound for
//! complete-`K_n` requests only (the v1 limitation above: a solution
//! document cannot be coverage-checked against a partial spec), so the
//! service records and serves cache entries only for jobs with
//! `requests` absent.
//!
//! A round trip:
//!
//! ```
//! use cyclecover_io::json;
//! use cyclecover_solver::api::{engine_by_name, Problem, SolveRequest};
//!
//! let solution = engine_by_name("bitset")
//!     .unwrap()
//!     .solve(&Problem::complete(6), &SolveRequest::find_optimal());
//! let doc = json::solution_to_json(&solution);
//! let covering = json::covering_from_solution_json(&doc).unwrap();
//! assert_eq!(covering.len(), 5); // ρ(6), re-validated from the wire
//! ```

use cyclecover_core::DrcCovering;
use cyclecover_graph::{CycleSubgraph, Edge};
use cyclecover_ring::{routing, Ring, Tile};
use cyclecover_solver::api::{
    DegradeReason, Exhaustion, FailureKind, LowerBoundProof, Objective, Optimality, Solution,
    SolveRequest, SymmetryMode,
};
use cyclecover_solver::bnb::CoverSpec;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

/// Serializes a [`Solution`] to the JSON wire format.
pub fn solution_to_json(sol: &Solution) -> String {
    solution_json_inner(sol, None, None)
}

/// [`solution_to_json`] with the streaming correlation fields: `id`
/// echoes the request's id so responses on a shared connection can be
/// matched to their jobs, and `predicted_nodes` (when a cost model made
/// a prediction) sits next to `stats.nodes` so the calibration table is
/// auditable from the wire alone. Both are additive v1 fields —
/// consumers that don't know them ignore them (the compatibility rule
/// in the module docs), so a streamed document still validates through
/// [`covering_from_solution_json`].
pub fn solution_to_json_with_id(
    sol: &Solution,
    id: &str,
    predicted_nodes: Option<u64>,
) -> String {
    solution_json_inner(sol, Some(id), predicted_nodes)
}

/// Collapses a multi-line emitted document to a single line, for
/// newline-delimited (JSONL) streams. Safe textually: [`quote`] escapes
/// every control character, so raw newlines in emitted documents are
/// inter-token formatting only.
pub fn to_single_line(doc: &str) -> String {
    let parts: Vec<&str> = doc
        .lines()
        .map(str::trim_start)
        .filter(|l| !l.is_empty())
        .collect();
    parts.join(" ")
}

fn solution_json_inner(sol: &Solution, id: Option<&str>, predicted_nodes: Option<u64>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"format\": \"cyclecover-solution\",");
    let _ = writeln!(s, "  \"version\": 1,");
    if let Some(id) = id {
        let _ = writeln!(s, "  \"id\": {},", quote(id));
    }
    if let Some(p) = predicted_nodes {
        let _ = writeln!(s, "  \"predicted_nodes\": {p},");
    }
    let _ = writeln!(s, "  \"n\": {},", sol.ring().n());
    let _ = writeln!(s, "  \"engine\": {},", quote(sol.stats().engine));
    let _ = writeln!(s, "  \"cached\": {},", sol.cached());
    let _ = writeln!(s, "  \"optimality\": {},", optimality_json(sol.optimality()));
    match sol.degraded() {
        Some(d) => {
            let reason = match d.reason {
                DegradeReason::Panicked => "panicked",
                DegradeReason::Exhausted(e) => exhaustion_str(&e),
            };
            let _ = writeln!(
                s,
                "  \"degraded\": {{\"from\": {}, \"to\": {}, \"reason\": \"{reason}\"}},",
                quote(&d.from),
                quote(&d.to)
            );
        }
        None => {
            let _ = writeln!(s, "  \"degraded\": null,");
        }
    }
    match sol.covering() {
        Some(tiles) => {
            let _ = writeln!(s, "  \"size\": {},", tiles.len());
            s.push_str("  \"cycles\": [");
            for (i, t) in tiles.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push('[');
                for (j, v) in t.vertices().iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{v}");
                }
                s.push(']');
            }
            s.push_str("],\n");
        }
        None => {
            let _ = writeln!(s, "  \"size\": null,");
            let _ = writeln!(s, "  \"cycles\": null,");
        }
    }
    let st = sol.stats();
    let _ = writeln!(
        s,
        "  \"stats\": {{\"nodes\": {}, \"pruned\": {}, \"dominated\": {}, \
         \"sym_pruned\": {}, \"canon_pruned\": {}, \"memo_hits\": {}, \
         \"shared_hits\": {}, \"memo_entries\": {}, \"partition_probes\": {}, \
         \"symmetry_factor\": {}, \
         \"budgets_tried\": {}, \"attempts\": {}, \"wall_ms\": {:.3}}}",
        st.nodes,
        st.pruned,
        st.dominated,
        st.sym_pruned,
        st.canon_pruned,
        st.memo_hits,
        st.shared_hits,
        st.memo_entries,
        st.partition_probes,
        st.sym_factor,
        st.budgets_tried,
        st.attempts,
        st.wall.as_secs_f64() * 1e3
    );
    s.push_str("}\n");
    s
}

fn optimality_json(o: &Optimality) -> String {
    match o {
        Optimality::Optimal { lower_bound_proof } => {
            let proof = match lower_bound_proof {
                LowerBoundProof::CombinatorialBound { bound } => {
                    format!("{{\"kind\": \"combinatorial_bound\", \"bound\": {bound}}}")
                }
                LowerBoundProof::ExhaustiveSearch {
                    infeasible_budget,
                    nodes,
                    symmetry_factor,
                } => format!(
                    "{{\"kind\": \"exhaustive_search\", \"infeasible_budget\": \
                     {infeasible_budget}, \"nodes\": {nodes}, \
                     \"symmetry_factor\": {symmetry_factor}}}"
                ),
            };
            format!("{{\"kind\": \"optimal\", \"proof\": {proof}}}")
        }
        Optimality::Feasible => "{\"kind\": \"feasible\"}".to_string(),
        Optimality::Infeasible => "{\"kind\": \"infeasible\"}".to_string(),
        Optimality::BudgetExhausted { reason } => {
            let reason = exhaustion_str(reason);
            format!("{{\"kind\": \"budget_exhausted\", \"reason\": \"{reason}\"}}")
        }
        Optimality::Failed { kind } => {
            let reason = match kind {
                FailureKind::Panic => "panic",
                FailureKind::Internal => "internal",
            };
            format!("{{\"kind\": \"failed\", \"reason\": \"{reason}\"}}")
        }
    }
}

/// The wire string for an [`Exhaustion`] reason — shared by the
/// certificate block and the `degraded` record.
pub fn exhaustion_str(reason: &Exhaustion) -> &'static str {
    match reason {
        Exhaustion::NodeBudget => "node_budget",
        Exhaustion::Deadline => "deadline",
        Exhaustion::Cancelled => "cancelled",
        Exhaustion::Shutdown => "shutdown",
        Exhaustion::EngineLimit => "engine_limit",
    }
}

/// Quotes a string as a JSON string literal (escaping quotes,
/// backslashes, and control characters) — the one escaper every
/// document emitter in the workspace shares.
pub fn quote(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset of JSON this workspace speaks: no
/// surrogate-pair escapes).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; exact for the magnitudes the
    /// wire format emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| format!("invalid UTF-8: {e}"));
            }
            b'\\' => {
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        *pos += 4;
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
}

// ---------------------------------------------------------------------------
// Re-validation
// ---------------------------------------------------------------------------

/// Parses a solution document and rebuilds its covering as a validated
/// [`DrcCovering`] — the trust boundary for anything received over the
/// wire. Errors if the document is not a solution, carries no covering,
/// or any cycle fails the DRC checks.
pub fn covering_from_solution_json(text: &str) -> Result<DrcCovering, String> {
    let doc = Json::parse(text)?;
    match doc.get("format").and_then(Json::as_str) {
        Some("cyclecover-solution") => {}
        other => return Err(format!("not a cyclecover-solution document: {other:?}")),
    }
    let n_raw = doc
        .get("n")
        .and_then(Json::as_num)
        .ok_or("missing ring size 'n'")?;
    if n_raw.fract() != 0.0 || !(3.0..=u32::MAX as f64).contains(&n_raw) {
        return Err(format!("ring size {n_raw} out of range"));
    }
    let n = n_raw as i64;
    let ring = Ring::new(n as u32);
    let cycles = match doc.get("cycles") {
        Some(Json::Arr(cycles)) => cycles,
        Some(Json::Null) => return Err("solution carries no covering".into()),
        _ => return Err("missing 'cycles' array".into()),
    };
    let mut tiles = Vec::with_capacity(cycles.len());
    for (i, cyc) in cycles.iter().enumerate() {
        let raw = cyc
            .as_arr()
            .ok_or_else(|| format!("cycle {i} is not an array"))?;
        let mut verts = Vec::with_capacity(raw.len());
        for v in raw {
            let x = v
                .as_num()
                .ok_or_else(|| format!("cycle {i}: non-numeric vertex"))?;
            if x.fract() != 0.0 || !(0.0..(ring.n() as f64)).contains(&x) {
                return Err(format!("cycle {i}: vertex {x} out of range for ring {n}"));
            }
            verts.push(x as u32);
        }
        if verts.len() < 3 {
            return Err(format!("cycle {i} needs >= 3 vertices"));
        }
        let mut sorted = verts.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(format!("cycle {i} repeats a vertex"));
        }
        if routing::winding_routing(ring, &CycleSubgraph::new(verts.clone())).is_none() {
            return Err(format!("cycle {i} violates the DRC on ring {n}"));
        }
        tiles.push(Tile::from_vertices(ring, verts));
    }
    Ok(DrcCovering::from_tiles(ring, tiles))
}

/// A solution document re-validated far enough to be served as a cached
/// certificate: only terminal verdicts (`optimal`/`infeasible`) qualify,
/// and a carried covering has already passed the DRC trust boundary.
#[derive(Debug)]
pub struct ParsedCertificate {
    /// Ring size the certificate answers.
    pub n: u32,
    /// Registry name of the engine that originally produced it.
    pub engine: String,
    /// The verdict (`Optimal { .. }` or `Infeasible`, nothing else).
    pub optimality: Optimality,
    /// The re-validated covering, exactly when the verdict carries one.
    pub covering: Option<DrcCovering>,
}

/// Parses a solution document into a [`ParsedCertificate`] — the trust
/// boundary a persisted certificate cache re-crosses on every load.
/// Accepts only the two verdicts worth caching (`optimal`, `infeasible`);
/// an `optimal` entry must carry a covering, which is re-validated
/// through [`covering_from_solution_json`] (so a tampered cycle list is
/// rejected, not trusted); an `infeasible` entry must carry none.
pub fn certificate_from_solution_json(text: &str) -> Result<ParsedCertificate, String> {
    let doc = Json::parse(text)?;
    match doc.get("format").and_then(Json::as_str) {
        Some("cyclecover-solution") => {}
        other => return Err(format!("not a cyclecover-solution document: {other:?}")),
    }
    let n = opt_uint(&doc, "n", u32::MAX as u64)?.ok_or("missing ring size 'n'")? as u32;
    if n < 3 {
        return Err(format!("ring size n = {n} must be >= 3"));
    }
    let engine = doc
        .get("engine")
        .and_then(Json::as_str)
        .ok_or("missing 'engine'")?
        .to_string();
    if doc.get("degraded").is_some_and(|d| *d != Json::Null) {
        return Err("degraded answers are not cacheable certificates".into());
    }
    let opt = doc.get("optimality").ok_or("missing 'optimality'")?;
    let (optimality, covering) = match opt.get("kind").and_then(Json::as_str) {
        Some("optimal") => {
            let proof = opt.get("proof").ok_or("optimal verdict missing 'proof'")?;
            let lower_bound_proof = match proof.get("kind").and_then(Json::as_str) {
                Some("combinatorial_bound") => LowerBoundProof::CombinatorialBound {
                    bound: opt_uint(proof, "bound", u32::MAX as u64)?
                        .ok_or("combinatorial_bound proof missing 'bound'")?
                        as u32,
                },
                Some("exhaustive_search") => LowerBoundProof::ExhaustiveSearch {
                    infeasible_budget: opt_uint(proof, "infeasible_budget", u32::MAX as u64)?
                        .ok_or("exhaustive_search proof missing 'infeasible_budget'")?
                        as u32,
                    nodes: opt_uint(proof, "nodes", u64::MAX)?
                        .ok_or("exhaustive_search proof missing 'nodes'")?,
                    symmetry_factor: opt_uint(proof, "symmetry_factor", u32::MAX as u64)?
                        .ok_or("exhaustive_search proof missing 'symmetry_factor'")?
                        as u32,
                },
                other => return Err(format!("bad proof kind {other:?}")),
            };
            let covering = covering_from_solution_json(text)?;
            if covering.ring().n() != n {
                return Err("covering ring disagrees with 'n'".into());
            }
            let proof_bound = match lower_bound_proof {
                LowerBoundProof::CombinatorialBound { bound } => bound as usize,
                LowerBoundProof::ExhaustiveSearch {
                    infeasible_budget, ..
                } => infeasible_budget as usize + 1,
            };
            if covering.len() != proof_bound {
                return Err(format!(
                    "optimal covering of {} cycles disagrees with its lower-bound proof ({})",
                    covering.len(),
                    proof_bound
                ));
            }
            (
                Optimality::Optimal { lower_bound_proof },
                Some(covering),
            )
        }
        Some("infeasible") => {
            if doc.get("cycles").is_some_and(|c| *c != Json::Null) {
                return Err("infeasible verdict must not carry a covering".into());
            }
            (Optimality::Infeasible, None)
        }
        other => {
            return Err(format!(
                "verdict {other:?} is not a cacheable certificate (want optimal|infeasible)"
            ))
        }
    };
    Ok(ParsedCertificate {
        n,
        engine,
        optimality,
        covering,
    })
}

// ---------------------------------------------------------------------------
// Request documents
// ---------------------------------------------------------------------------

/// A parsed, validated `cyclecover-request` document: one solve job for
/// the batch service (see the [module docs](self) for the normative field
/// list and defaults).
#[derive(Clone, Debug, PartialEq)]
pub struct SolveJob {
    /// Job identifier (`[A-Za-z0-9._-]{1,64}`, or empty = unnamed; the
    /// service assigns `job-<seq>` to unnamed jobs).
    pub id: String,
    /// Ring size (`≥ 3`).
    pub n: u32,
    /// Maximum tile vertex count (`3 ..= n`).
    pub max_len: u32,
    /// Maximum ring gap between consecutive tile vertices (`1 ..= n`;
    /// `n` = unconstrained).
    pub max_gap: u32,
    /// `None` = cover all of `K_n`; `Some(pairs)` = cover exactly
    /// these requests (normalized `u < v`, sorted, deduplicated).
    pub requests: Option<Vec<(u32, u32)>>,
    /// Covering multiplicity: every request must be covered `lambda`
    /// times (`≥ 1`; `1` = the classical cover, `2` = a cycle double
    /// cover).
    pub lambda: u32,
    /// Engine registry name (validated against the registry at admission).
    pub engine: String,
    /// What to solve for.
    pub objective: Objective,
    /// Search-node budget for the whole request.
    pub max_nodes: Option<u64>,
    /// Wall-clock deadline in milliseconds, measured from batch start.
    pub deadline_ms: Option<u64>,
    /// Dihedral symmetry reduction; `None` = the engine default.
    pub symmetry: Option<SymmetryMode>,
    /// Refutation-store toggle; `None` = the engine default (on for
    /// exact engines).
    pub memo: Option<bool>,
    /// Refutation-store byte budget in MiB; `None` = the engine default.
    pub memo_mb: Option<u64>,
    /// Degradation ladder: engine names a scheduler may fall back to, in
    /// order, when the primary engine exhausts its budget or fails.
    /// Empty = no fallback.
    pub fallback: Vec<String>,
}

impl SolveJob {
    /// A job with the given id and ring size and every other field at its
    /// documented default (full universe, complete spec, `bitset` engine,
    /// `FindOptimal`, no limits).
    pub fn new(id: impl Into<String>, n: u32) -> Self {
        SolveJob {
            id: id.into(),
            n,
            max_len: n,
            max_gap: n,
            requests: None,
            lambda: 1,
            engine: "bitset".to_string(),
            objective: Objective::FindOptimal,
            max_nodes: None,
            deadline_ms: None,
            symmetry: None,
            memo: None,
            memo_mb: None,
            fallback: Vec::new(),
        }
    }

    /// The universe cache key: jobs agreeing on `(n, max_len, max_gap)`
    /// search the same precomputed tile enumeration.
    pub fn universe_key(&self) -> (u32, u32, u32) {
        (self.n, self.max_len, self.max_gap)
    }

    /// The demand spec this job asks to cover: the requested pairs (or
    /// all of `K_n`), each `lambda` times.
    pub fn spec(&self) -> CoverSpec {
        let mut spec = match &self.requests {
            None => CoverSpec::complete(self.n),
            Some(pairs) => {
                let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v)).collect();
                CoverSpec::subset(self.n, &edges)
            }
        };
        if self.lambda > 1 {
            for d in &mut spec.demand {
                *d *= self.lambda;
            }
        }
        spec
    }

    /// The [`SolveRequest`] this job describes — objective, node budget,
    /// and symmetry. The deadline is *not* attached here: `deadline_ms`
    /// is relative to batch start, so the scheduler converts it to the
    /// remaining slice (and attaches its cancellation token) at admission.
    pub fn to_solve_request(&self) -> SolveRequest {
        let mut request = match self.objective {
            Objective::FindOptimal => SolveRequest::find_optimal(),
            Objective::WithinBudget(k) => SolveRequest::within_budget(k),
            Objective::ProveInfeasible(k) => SolveRequest::prove_infeasible(k),
        };
        if let Some(nodes) = self.max_nodes {
            request = request.with_max_nodes(nodes);
        }
        if let Some(sym) = self.symmetry {
            request = request.with_symmetry(sym);
        }
        if let Some(memo) = self.memo {
            request = request.with_memo(memo);
        }
        if let Some(mb) = self.memo_mb {
            request = request.with_memo_budget_bytes((mb as usize) << 20);
        }
        if !self.fallback.is_empty() {
            request = request.with_fallback(self.fallback.iter().cloned());
        }
        request
    }
}

/// Serializes a [`SolveJob`] as a single-line `cyclecover-request`
/// document — the shape batch files (`.jsonl`, one request per line)
/// are made of. [`request_from_json`] parses it back; the pair round-trips.
pub fn request_to_json(job: &SolveJob) -> String {
    let mut s = String::new();
    s.push_str("{\"format\": \"cyclecover-request\", \"version\": 1");
    let _ = write!(s, ", \"id\": {}", quote(&job.id));
    let _ = write!(s, ", \"n\": {}", job.n);
    let _ = write!(s, ", \"max_len\": {}", job.max_len);
    let _ = write!(s, ", \"max_gap\": {}", job.max_gap);
    match &job.requests {
        None => s.push_str(", \"requests\": null"),
        Some(pairs) => {
            s.push_str(", \"requests\": [");
            for (i, (u, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{u}, {v}]");
            }
            s.push(']');
        }
    }
    // λ = 1 is the default and is omitted, keeping unit-cover documents
    // (and the coalescing/cert-cache keys derived from them) byte-stable
    // across the λ-fold addition.
    if job.lambda > 1 {
        let _ = write!(s, ", \"lambda\": {}", job.lambda);
    }
    let _ = write!(s, ", \"engine\": {}", quote(&job.engine));
    let objective = match job.objective {
        Objective::FindOptimal => "{\"kind\": \"find_optimal\"}".to_string(),
        Objective::WithinBudget(k) => {
            format!("{{\"kind\": \"within_budget\", \"budget\": {k}}}")
        }
        Objective::ProveInfeasible(k) => {
            format!("{{\"kind\": \"prove_infeasible\", \"budget\": {k}}}")
        }
    };
    let _ = write!(s, ", \"objective\": {objective}");
    match job.max_nodes {
        Some(nodes) => {
            let _ = write!(s, ", \"max_nodes\": {nodes}");
        }
        None => s.push_str(", \"max_nodes\": null"),
    }
    match job.deadline_ms {
        Some(ms) => {
            let _ = write!(s, ", \"deadline_ms\": {ms}");
        }
        None => s.push_str(", \"deadline_ms\": null"),
    }
    match job.symmetry {
        Some(SymmetryMode::Off) => s.push_str(", \"symmetry\": \"off\""),
        Some(SymmetryMode::Root) => s.push_str(", \"symmetry\": \"root\""),
        Some(SymmetryMode::Full) => s.push_str(", \"symmetry\": \"full\""),
        None => s.push_str(", \"symmetry\": null"),
    }
    match job.memo {
        Some(b) => {
            let _ = write!(s, ", \"memo\": {b}");
        }
        None => s.push_str(", \"memo\": null"),
    }
    match job.memo_mb {
        Some(mb) => {
            let _ = write!(s, ", \"memo_mb\": {mb}");
        }
        None => s.push_str(", \"memo_mb\": null"),
    }
    if job.fallback.is_empty() {
        s.push_str(", \"fallback\": null");
    } else {
        s.push_str(", \"fallback\": [");
        for (i, name) in job.fallback.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&quote(name));
        }
        s.push(']');
    }
    s.push('}');
    s
}

/// Reads an optional unsigned integer field: absent and `null` both mean
/// `None`; anything non-integral or out of `[0, max]` is an error.
fn opt_uint(doc: &Json, key: &str, max: u64) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let x = v.as_num().ok_or_else(|| format!("'{key}' must be a number"))?;
            if x.fract() != 0.0 || !(0.0..=max as f64).contains(&x) {
                return Err(format!("'{key}' = {x} out of range"));
            }
            Ok(Some(x as u64))
        }
    }
}

/// Parses and validates a `cyclecover-request` document into a
/// [`SolveJob`]. Enforces every constraint in the [module docs](self)
/// (ranges, id charset, request pairs); unknown fields are ignored per
/// the compatibility rules. The engine *name* is accepted unchecked —
/// registry membership is an admission-time concern.
pub fn request_from_json(text: &str) -> Result<SolveJob, String> {
    let doc = Json::parse(text)?;
    match doc.get("format").and_then(Json::as_str) {
        Some("cyclecover-request") => {}
        other => return Err(format!("not a cyclecover-request document: {other:?}")),
    }
    match opt_uint(&doc, "version", u64::MAX)? {
        Some(1) => {}
        Some(v) => return Err(format!("unsupported request version {v} (this parser speaks 1)")),
        None => return Err("missing 'version'".into()),
    }
    let n = opt_uint(&doc, "n", u32::MAX as u64)?.ok_or("missing ring size 'n'")? as u32;
    if n < 3 {
        return Err(format!("ring size n = {n} must be >= 3"));
    }
    let mut job = SolveJob::new("", n);

    if let Some(id) = doc.get("id") {
        if let Some(id) = id.as_str() {
            if !id.is_empty() {
                if id.len() > 64
                    || !id
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
                {
                    return Err(format!(
                        "bad id {id:?}: want 1-64 chars from [A-Za-z0-9._-]"
                    ));
                }
                job.id = id.to_string();
            }
        } else if *id != Json::Null {
            return Err("'id' must be a string".into());
        }
    }
    if let Some(len) = opt_uint(&doc, "max_len", u32::MAX as u64)? {
        let len = len as u32;
        if !(3..=n).contains(&len) {
            return Err(format!("max_len = {len} out of range 3..={n}"));
        }
        job.max_len = len;
    }
    if let Some(gap) = opt_uint(&doc, "max_gap", u32::MAX as u64)? {
        let gap = gap as u32;
        if !(1..=n).contains(&gap) {
            return Err(format!("max_gap = {gap} out of range 1..={n}"));
        }
        job.max_gap = gap;
    }
    match doc.get("requests") {
        None | Some(Json::Null) => {}
        Some(Json::Arr(pairs)) => {
            let mut out = Vec::with_capacity(pairs.len());
            for (i, p) in pairs.iter().enumerate() {
                let p = p
                    .as_arr()
                    .ok_or_else(|| format!("request {i} is not a [u, v] pair"))?;
                if p.len() != 2 {
                    return Err(format!("request {i} is not a [u, v] pair"));
                }
                let mut uv = [0u32; 2];
                for (slot, v) in uv.iter_mut().zip(p) {
                    let x = v
                        .as_num()
                        .ok_or_else(|| format!("request {i}: non-numeric vertex"))?;
                    if x.fract() != 0.0 || !(0.0..n as f64).contains(&x) {
                        return Err(format!("request {i}: vertex {x} out of range for n = {n}"));
                    }
                    *slot = x as u32;
                }
                if uv[0] == uv[1] {
                    return Err(format!("request {i}: self-loop [{}, {}]", uv[0], uv[1]));
                }
                out.push((uv[0].min(uv[1]), uv[0].max(uv[1])));
            }
            out.sort_unstable();
            out.dedup();
            job.requests = Some(out);
        }
        Some(_) => return Err("'requests' must be an array of [u, v] pairs or null".into()),
    }
    if let Some(lambda) = opt_uint(&doc, "lambda", u32::MAX as u64)? {
        if lambda == 0 {
            return Err("'lambda' must be >= 1".into());
        }
        job.lambda = lambda as u32;
    }
    if let Some(engine) = doc.get("engine") {
        if let Some(engine) = engine.as_str() {
            if engine.is_empty() {
                return Err("'engine' must not be empty".into());
            }
            job.engine = engine.to_string();
        } else if *engine != Json::Null {
            return Err("'engine' must be a string".into());
        }
    }
    match doc.get("objective") {
        None | Some(Json::Null) => {}
        Some(obj) => {
            let budget = || -> Result<u32, String> {
                Ok(opt_uint(obj, "budget", u32::MAX as u64)?
                    .ok_or("objective needs a 'budget'")? as u32)
            };
            job.objective = match obj.get("kind").and_then(Json::as_str) {
                Some("find_optimal") => Objective::FindOptimal,
                Some("within_budget") => Objective::WithinBudget(budget()?),
                Some("prove_infeasible") => Objective::ProveInfeasible(budget()?),
                other => {
                    return Err(format!(
                        "bad objective kind {other:?} (want find_optimal|within_budget|prove_infeasible)"
                    ))
                }
            };
        }
    }
    job.max_nodes = opt_uint(&doc, "max_nodes", u64::MAX)?;
    job.deadline_ms = opt_uint(&doc, "deadline_ms", u64::MAX)?;
    match doc.get("symmetry") {
        None | Some(Json::Null) => {}
        Some(sym) => {
            job.symmetry = Some(match sym.as_str() {
                Some("off") => SymmetryMode::Off,
                Some("root") => SymmetryMode::Root,
                Some("full") => SymmetryMode::Full,
                other => return Err(format!("bad symmetry {other:?} (want off|root|full)")),
            });
        }
    }
    match doc.get("memo") {
        None | Some(Json::Null) => {}
        Some(Json::Bool(b)) => job.memo = Some(*b),
        Some(_) => return Err("'memo' must be a boolean or null".into()),
    }
    if let Some(mb) = opt_uint(&doc, "memo_mb", u64::MAX >> 21)? {
        if mb == 0 {
            return Err("'memo_mb' must be >= 1".into());
        }
        job.memo_mb = Some(mb);
    }
    match doc.get("fallback") {
        None | Some(Json::Null) => {}
        Some(Json::Arr(names)) => {
            let mut chain = Vec::with_capacity(names.len());
            for (i, name) in names.iter().enumerate() {
                let name = name
                    .as_str()
                    .ok_or_else(|| format!("fallback {i} is not an engine name string"))?;
                if name.is_empty() {
                    return Err(format!("fallback {i} must not be empty"));
                }
                chain.push(name.to_string());
            }
            job.fallback = chain;
        }
        Some(_) => return Err("'fallback' must be an array of engine names or null".into()),
    }
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_solver::api::{engine_by_name, Problem, SolveRequest};

    fn solve(n: u32, req: &SolveRequest) -> Solution {
        engine_by_name("bitset")
            .unwrap()
            .solve(&Problem::complete(n), req)
    }

    #[test]
    fn optimal_solution_round_trips_and_validates() {
        let sol = solve(6, &SolveRequest::find_optimal());
        let text = solution_to_json(&sol);
        let doc = Json::parse(&text).expect("emitted JSON parses");
        assert_eq!(doc.get("n").and_then(Json::as_num), Some(6.0));
        assert_eq!(doc.get("engine").and_then(Json::as_str), Some("bitset"));
        assert_eq!(
            doc.get("optimality").and_then(|o| o.get("kind")).and_then(Json::as_str),
            Some("optimal")
        );
        let cover = covering_from_solution_json(&text).expect("covering validates");
        assert_eq!(cover.len(), sol.size().unwrap());
        assert!(cover.validate().is_ok());
    }

    #[test]
    fn certificate_block_carries_symmetry_factor() {
        // n = 8 needs the budget-8 refutation. Under the default
        // SymmetryMode::Root the parity bound proves it in one node
        // (factor 1 in the proof block), while the witness search's root
        // was reduced by the order-4 diameter-chord stabilizer of D_8
        // (factor 4 in the stats block). The document must carry both.
        let sol = solve(8, &SolveRequest::find_optimal());
        let text = solution_to_json(&sol);
        let doc = Json::parse(&text).expect("emitted JSON parses");
        let proof = doc
            .get("optimality")
            .and_then(|o| o.get("proof"))
            .expect("optimal certificate has a proof");
        assert_eq!(
            proof.get("kind").and_then(Json::as_str),
            Some("exhaustive_search")
        );
        assert_eq!(proof.get("nodes").and_then(Json::as_num), Some(1.0), "{text}");
        assert_eq!(
            proof.get("symmetry_factor").and_then(Json::as_num),
            Some(1.0),
            "{text}"
        );
        let stats = doc.get("stats").expect("stats block");
        assert_eq!(
            stats.get("symmetry_factor").and_then(Json::as_num),
            Some(4.0)
        );
        assert!(stats.get("sym_pruned").and_then(Json::as_num).unwrap() > 0.0);
    }

    #[test]
    fn infeasible_solution_has_null_cycles() {
        let sol = solve(6, &SolveRequest::prove_infeasible(4));
        let text = solution_to_json(&sol);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("cycles"), Some(&Json::Null));
        assert_eq!(
            doc.get("optimality").and_then(|o| o.get("kind")).and_then(Json::as_str),
            Some("infeasible")
        );
        let err = covering_from_solution_json(&text).unwrap_err();
        assert!(err.contains("no covering"), "{err}");
    }

    #[test]
    fn parser_handles_the_value_zoo() {
        let doc = Json::parse(
            r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": [true, false]},
                "s": "q\"\\\nA"}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(1000.0));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"\\\nA"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]x",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn revalidation_rejects_fractional_ring_size() {
        let sol = solve(6, &SolveRequest::find_optimal());
        let tampered = solution_to_json(&sol).replace("\"n\": 6", "\"n\": 6.9");
        let err = covering_from_solution_json(&tampered).unwrap_err();
        assert!(err.contains("ring size"), "{err}");
    }

    #[test]
    fn request_round_trips_through_emit_and_parse() {
        let mut job = SolveJob::new("mixed-42", 10);
        job.max_len = 6;
        job.max_gap = 4;
        job.requests = Some(vec![(0, 3), (1, 5), (2, 7)]);
        job.engine = "bitset-parallel".to_string();
        job.objective = Objective::WithinBudget(9);
        job.max_nodes = Some(1_000_000);
        job.deadline_ms = Some(250);
        job.symmetry = Some(SymmetryMode::Full);
        job.fallback = vec!["greedy-improve".to_string(), "greedy".to_string()];
        let text = request_to_json(&job);
        assert!(!text.contains('\n'), "requests must be single-line: {text}");
        assert_eq!(request_from_json(&text).unwrap(), job);
        // Defaults round-trip too — and the default λ = 1 is omitted
        // from the wire so pre-λ documents (and the coalescing keys and
        // cert-cache keys derived from them) stay byte-identical.
        let plain = SolveJob::new("", 6);
        let text = request_to_json(&plain);
        assert!(!text.contains("lambda"), "default λ must stay off the wire: {text}");
        assert_eq!(request_from_json(&text).unwrap(), plain);
        // A λ-fold job emits and round-trips its multiplicity.
        let mut double = SolveJob::new("cdc", 6);
        double.lambda = 2;
        let text = request_to_json(&double);
        assert!(text.contains("\"lambda\": 2"), "{text}");
        assert_eq!(request_from_json(&text).unwrap(), double);
    }

    #[test]
    fn lambda_scales_the_demand_spec() {
        // Complete spec: every request demanded λ times.
        let job = request_from_json(
            r#"{"format": "cyclecover-request", "version": 1, "n": 6, "lambda": 2}"#,
        )
        .unwrap();
        assert_eq!(job.lambda, 2);
        assert!(!job.spec().is_unit());
        assert_eq!(job.spec().max_demand(), 2);
        assert!(job.spec().demand.iter().all(|&d| d == 2));
        // Partial spec: only the requested pairs, each λ times.
        let job = request_from_json(
            r#"{"format": "cyclecover-request", "version": 1, "n": 6, "lambda": 3,
                "requests": [[0, 2], [1, 4]]}"#,
        )
        .unwrap();
        let spec = job.spec();
        assert_eq!(spec.max_demand(), 3);
        assert_eq!(spec.demand.iter().sum::<u32>(), 6);
        // λ = 0 is rejected; λ = 1 is the explicit default.
        let err = request_from_json(
            r#"{"format": "cyclecover-request", "version": 1, "n": 6, "lambda": 0}"#,
        )
        .unwrap_err();
        assert!(err.contains("'lambda' must be >= 1"), "{err}");
        let job = request_from_json(
            r#"{"format": "cyclecover-request", "version": 1, "n": 6, "lambda": 1}"#,
        )
        .unwrap();
        assert_eq!(job, SolveJob::new("", 6));
    }

    #[test]
    fn request_defaults_fill_in() {
        let job = request_from_json(
            r#"{"format": "cyclecover-request", "version": 1, "n": 8}"#,
        )
        .unwrap();
        assert_eq!(job, SolveJob::new("", 8));
        assert_eq!(job.universe_key(), (8, 8, 8));
        assert!(job.spec().is_unit());
        assert_eq!(job.to_solve_request().objective(), Objective::FindOptimal);
        // Unknown fields are ignored (compat rule)…
        let job = request_from_json(
            r#"{"format": "cyclecover-request", "version": 1, "n": 8,
                "some_future_field": {"x": 1}}"#,
        )
        .unwrap();
        assert_eq!(job.n, 8);
        // …but a future version is rejected.
        let err = request_from_json(
            r#"{"format": "cyclecover-request", "version": 2, "n": 8}"#,
        )
        .unwrap_err();
        assert!(err.contains("version 2"), "{err}");
    }

    #[test]
    fn request_normalizes_and_validates_pairs() {
        let job = request_from_json(
            r#"{"format": "cyclecover-request", "version": 1, "n": 6,
                "requests": [[4, 1], [1, 4], [0, 2]]}"#,
        )
        .unwrap();
        assert_eq!(job.requests, Some(vec![(0, 2), (1, 4)]));
        assert!(!job.spec().is_unit() || job.spec().demand.iter().sum::<u32>() == 2);
        for (bad, want) in [
            (r#"{"format": "cyclecover-request", "version": 1}"#, "missing ring size"),
            (r#"{"format": "cyclecover-solution", "version": 1, "n": 6}"#, "not a cyclecover-request"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 2}"#, ">= 3"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "max_len": 2}"#, "max_len"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "max_gap": 0}"#, "max_gap"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "requests": [[1, 1]]}"#, "self-loop"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "requests": [[0, 6]]}"#, "out of range"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "id": "a/b"}"#, "bad id"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "objective": {"kind": "levitate"}}"#, "objective kind"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "objective": {"kind": "within_budget"}}"#, "budget"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "symmetry": "sideways"}"#, "symmetry"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "deadline_ms": -1}"#, "out of range"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "fallback": "greedy"}"#, "fallback"),
            (r#"{"format": "cyclecover-request", "version": 1, "n": 6, "fallback": [""]}"#, "fallback 0"),
        ] {
            let err = request_from_json(bad).unwrap_err();
            assert!(err.contains(want), "{bad}: {err}");
        }
    }

    #[test]
    fn request_solves_end_to_end() {
        // A parsed request document drives an engine directly.
        let job = request_from_json(
            r#"{"format": "cyclecover-request", "version": 1, "n": 6,
                "objective": {"kind": "prove_infeasible", "budget": 4},
                "symmetry": "off"}"#,
        )
        .unwrap();
        let problem = Problem::new(
            cyclecover_solver::TileUniverse::with_max_gap(
                Ring::new(job.n),
                job.max_len as usize,
                job.max_gap,
            ),
            job.spec(),
        );
        let sol = engine_by_name(&job.engine)
            .unwrap()
            .solve(&problem, &job.to_solve_request());
        assert_eq!(*sol.optimality(), Optimality::Infeasible);
    }

    #[test]
    fn failed_solution_emits_terminal_certificate() {
        use cyclecover_ring::Ring;
        let sol = Solution::failed(Ring::new(7), FailureKind::Panic, "service", 3);
        let text = solution_to_json(&sol);
        let doc = Json::parse(&text).expect("emitted JSON parses");
        let opt = doc.get("optimality").expect("certificate");
        assert_eq!(opt.get("kind").and_then(Json::as_str), Some("failed"));
        assert_eq!(opt.get("reason").and_then(Json::as_str), Some("panic"));
        assert_eq!(doc.get("cycles"), Some(&Json::Null));
        assert_eq!(doc.get("degraded"), Some(&Json::Null));
        assert_eq!(
            doc.get("stats").and_then(|s| s.get("attempts")).and_then(Json::as_num),
            Some(3.0)
        );
        let err = covering_from_solution_json(&text).unwrap_err();
        assert!(err.contains("no covering"), "{err}");
    }

    #[test]
    fn degraded_solution_carries_provenance() {
        use cyclecover_solver::api::Degradation;
        let mut sol = engine_by_name("greedy")
            .unwrap()
            .solve(&Problem::complete(6), &SolveRequest::find_optimal());
        sol.set_degradation(Degradation {
            from: "bitset".to_string(),
            to: "greedy".to_string(),
            reason: DegradeReason::Exhausted(Exhaustion::Deadline),
        });
        sol.set_attempts(2);
        let text = solution_to_json(&sol);
        let doc = Json::parse(&text).expect("emitted JSON parses");
        let deg = doc.get("degraded").expect("degraded block");
        assert_eq!(deg.get("from").and_then(Json::as_str), Some("bitset"));
        assert_eq!(deg.get("to").and_then(Json::as_str), Some("greedy"));
        assert_eq!(deg.get("reason").and_then(Json::as_str), Some("deadline"));
        assert_eq!(
            doc.get("stats").and_then(|s| s.get("attempts")).and_then(Json::as_num),
            Some(2.0)
        );
        // Degradation never weakens the trust boundary: the covering
        // still re-validates from the wire.
        let covering = covering_from_solution_json(&text).expect("covering validates");
        assert!(covering.validate().is_ok());
    }

    #[test]
    fn revalidation_rejects_tampered_coverings() {
        let sol = solve(5, &SolveRequest::find_optimal());
        let good = solution_to_json(&sol);
        // Remove one cycle: coverage breaks but the document stays valid
        // JSON — from_tiles accepts it, validate() must catch it. Here we
        // tamper harder: a non-DRC cycle must be rejected at parse time.
        let tampered = good.replace("\"cycles\": [[", "\"cycles\": [[0, 2, 4, 1], [[");
        match covering_from_solution_json(&tampered) {
            Err(e) => assert!(e.contains("DRC") || e.contains("expected"), "{e}"),
            Ok(c) => assert!(c.validate().is_err(), "tampered covering validated"),
        }
    }
}
