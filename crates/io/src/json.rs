//! The JSON wire format for solver [`Solution`]s.
//!
//! A service front-end needs one parseable artifact per solve: what was
//! asked, what was found, what was *proved*, and what it cost. This module
//! serializes [`Solution`] to a stable, self-contained JSON document and
//! parses it back far enough to independently re-validate the covering —
//! the same trust boundary as the v1 text format, for machines instead of
//! humans:
//!
//! ```json
//! {
//!   "format": "cyclecover-solution",
//!   "version": 1,
//!   "n": 4,
//!   "engine": "bitset",
//!   "optimality": {"kind": "optimal",
//!                  "proof": {"kind": "exhaustive_search",
//!                            "infeasible_budget": 2, "nodes": 9,
//!                            "symmetry_factor": 1}},
//!   "size": 3,
//!   "cycles": [[0, 1, 2], [0, 2, 3], [0, 1, 3]],
//!   "stats": {"nodes": 42, "pruned": 7, "dominated": 3, "sym_pruned": 0,
//!             "symmetry_factor": 1, "budgets_tried": 2, "wall_ms": 0.1}
//! }
//! ```
//!
//! `symmetry_factor` in an `exhaustive_search` proof is the order of the
//! dihedral subgroup the refutation's root branch was reduced by (1 =
//! unreduced), keeping symmetry-reduced certificates auditable.
//!
//! `cycles` (and `size`) are `null` when the solution carries no covering
//! (an infeasibility proof, or an exhausted budget). Everything is std
//! only, per the workspace's offline-crate policy: [`Json`] is a minimal
//! recursive-descent JSON reader sufficient for this schema (and for any
//! well-formed document without exotic escapes).

use cyclecover_core::DrcCovering;
use cyclecover_graph::CycleSubgraph;
use cyclecover_ring::{routing, Ring, Tile};
use cyclecover_solver::api::{Exhaustion, LowerBoundProof, Optimality, Solution};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

/// Serializes a [`Solution`] to the JSON wire format.
pub fn solution_to_json(sol: &Solution) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"format\": \"cyclecover-solution\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"n\": {},", sol.ring().n());
    let _ = writeln!(s, "  \"engine\": {},", quote(sol.stats().engine));
    let _ = writeln!(s, "  \"optimality\": {},", optimality_json(sol.optimality()));
    match sol.covering() {
        Some(tiles) => {
            let _ = writeln!(s, "  \"size\": {},", tiles.len());
            s.push_str("  \"cycles\": [");
            for (i, t) in tiles.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push('[');
                for (j, v) in t.vertices().iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{v}");
                }
                s.push(']');
            }
            s.push_str("],\n");
        }
        None => {
            let _ = writeln!(s, "  \"size\": null,");
            let _ = writeln!(s, "  \"cycles\": null,");
        }
    }
    let st = sol.stats();
    let _ = writeln!(
        s,
        "  \"stats\": {{\"nodes\": {}, \"pruned\": {}, \"dominated\": {}, \
         \"sym_pruned\": {}, \"symmetry_factor\": {}, \
         \"budgets_tried\": {}, \"wall_ms\": {:.3}}}",
        st.nodes,
        st.pruned,
        st.dominated,
        st.sym_pruned,
        st.sym_factor,
        st.budgets_tried,
        st.wall.as_secs_f64() * 1e3
    );
    s.push_str("}\n");
    s
}

fn optimality_json(o: &Optimality) -> String {
    match o {
        Optimality::Optimal { lower_bound_proof } => {
            let proof = match lower_bound_proof {
                LowerBoundProof::CombinatorialBound { bound } => {
                    format!("{{\"kind\": \"combinatorial_bound\", \"bound\": {bound}}}")
                }
                LowerBoundProof::ExhaustiveSearch {
                    infeasible_budget,
                    nodes,
                    symmetry_factor,
                } => format!(
                    "{{\"kind\": \"exhaustive_search\", \"infeasible_budget\": \
                     {infeasible_budget}, \"nodes\": {nodes}, \
                     \"symmetry_factor\": {symmetry_factor}}}"
                ),
            };
            format!("{{\"kind\": \"optimal\", \"proof\": {proof}}}")
        }
        Optimality::Feasible => "{\"kind\": \"feasible\"}".to_string(),
        Optimality::Infeasible => "{\"kind\": \"infeasible\"}".to_string(),
        Optimality::BudgetExhausted { reason } => {
            let reason = match reason {
                Exhaustion::NodeBudget => "node_budget",
                Exhaustion::Deadline => "deadline",
                Exhaustion::Cancelled => "cancelled",
                Exhaustion::EngineLimit => "engine_limit",
            };
            format!("{{\"kind\": \"budget_exhausted\", \"reason\": \"{reason}\"}}")
        }
    }
}

fn quote(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset of JSON this workspace speaks: no
/// surrogate-pair escapes).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; exact for the magnitudes the
    /// wire format emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| format!("invalid UTF-8: {e}"));
            }
            b'\\' => {
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        *pos += 4;
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
}

// ---------------------------------------------------------------------------
// Re-validation
// ---------------------------------------------------------------------------

/// Parses a solution document and rebuilds its covering as a validated
/// [`DrcCovering`] — the trust boundary for anything received over the
/// wire. Errors if the document is not a solution, carries no covering,
/// or any cycle fails the DRC checks.
pub fn covering_from_solution_json(text: &str) -> Result<DrcCovering, String> {
    let doc = Json::parse(text)?;
    match doc.get("format").and_then(Json::as_str) {
        Some("cyclecover-solution") => {}
        other => return Err(format!("not a cyclecover-solution document: {other:?}")),
    }
    let n_raw = doc
        .get("n")
        .and_then(Json::as_num)
        .ok_or("missing ring size 'n'")?;
    if n_raw.fract() != 0.0 || !(3.0..=u32::MAX as f64).contains(&n_raw) {
        return Err(format!("ring size {n_raw} out of range"));
    }
    let n = n_raw as i64;
    let ring = Ring::new(n as u32);
    let cycles = match doc.get("cycles") {
        Some(Json::Arr(cycles)) => cycles,
        Some(Json::Null) => return Err("solution carries no covering".into()),
        _ => return Err("missing 'cycles' array".into()),
    };
    let mut tiles = Vec::with_capacity(cycles.len());
    for (i, cyc) in cycles.iter().enumerate() {
        let raw = cyc
            .as_arr()
            .ok_or_else(|| format!("cycle {i} is not an array"))?;
        let mut verts = Vec::with_capacity(raw.len());
        for v in raw {
            let x = v
                .as_num()
                .ok_or_else(|| format!("cycle {i}: non-numeric vertex"))?;
            if x.fract() != 0.0 || !(0.0..(ring.n() as f64)).contains(&x) {
                return Err(format!("cycle {i}: vertex {x} out of range for ring {n}"));
            }
            verts.push(x as u32);
        }
        if verts.len() < 3 {
            return Err(format!("cycle {i} needs >= 3 vertices"));
        }
        let mut sorted = verts.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(format!("cycle {i} repeats a vertex"));
        }
        if routing::winding_routing(ring, &CycleSubgraph::new(verts.clone())).is_none() {
            return Err(format!("cycle {i} violates the DRC on ring {n}"));
        }
        tiles.push(Tile::from_vertices(ring, verts));
    }
    Ok(DrcCovering::from_tiles(ring, tiles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_solver::api::{engine_by_name, Problem, SolveRequest};

    fn solve(n: u32, req: &SolveRequest) -> Solution {
        engine_by_name("bitset")
            .unwrap()
            .solve(&Problem::complete(n), req)
    }

    #[test]
    fn optimal_solution_round_trips_and_validates() {
        let sol = solve(6, &SolveRequest::find_optimal());
        let text = solution_to_json(&sol);
        let doc = Json::parse(&text).expect("emitted JSON parses");
        assert_eq!(doc.get("n").and_then(Json::as_num), Some(6.0));
        assert_eq!(doc.get("engine").and_then(Json::as_str), Some("bitset"));
        assert_eq!(
            doc.get("optimality").and_then(|o| o.get("kind")).and_then(Json::as_str),
            Some("optimal")
        );
        let cover = covering_from_solution_json(&text).expect("covering validates");
        assert_eq!(cover.len(), sol.size().unwrap());
        assert!(cover.validate().is_ok());
    }

    #[test]
    fn certificate_block_carries_symmetry_factor() {
        // n = 8 needs the budget-8 refutation. Under the default
        // SymmetryMode::Root the parity bound proves it in one node
        // (factor 1 in the proof block), while the witness search's root
        // was reduced by the order-4 diameter-chord stabilizer of D_8
        // (factor 4 in the stats block). The document must carry both.
        let sol = solve(8, &SolveRequest::find_optimal());
        let text = solution_to_json(&sol);
        let doc = Json::parse(&text).expect("emitted JSON parses");
        let proof = doc
            .get("optimality")
            .and_then(|o| o.get("proof"))
            .expect("optimal certificate has a proof");
        assert_eq!(
            proof.get("kind").and_then(Json::as_str),
            Some("exhaustive_search")
        );
        assert_eq!(proof.get("nodes").and_then(Json::as_num), Some(1.0), "{text}");
        assert_eq!(
            proof.get("symmetry_factor").and_then(Json::as_num),
            Some(1.0),
            "{text}"
        );
        let stats = doc.get("stats").expect("stats block");
        assert_eq!(
            stats.get("symmetry_factor").and_then(Json::as_num),
            Some(4.0)
        );
        assert!(stats.get("sym_pruned").and_then(Json::as_num).unwrap() > 0.0);
    }

    #[test]
    fn infeasible_solution_has_null_cycles() {
        let sol = solve(6, &SolveRequest::prove_infeasible(4));
        let text = solution_to_json(&sol);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("cycles"), Some(&Json::Null));
        assert_eq!(
            doc.get("optimality").and_then(|o| o.get("kind")).and_then(Json::as_str),
            Some("infeasible")
        );
        let err = covering_from_solution_json(&text).unwrap_err();
        assert!(err.contains("no covering"), "{err}");
    }

    #[test]
    fn parser_handles_the_value_zoo() {
        let doc = Json::parse(
            r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": [true, false]},
                "s": "q\"\\\nA"}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(1000.0));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"\\\nA"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]x",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn revalidation_rejects_fractional_ring_size() {
        let sol = solve(6, &SolveRequest::find_optimal());
        let tampered = solution_to_json(&sol).replace("\"n\": 6", "\"n\": 6.9");
        let err = covering_from_solution_json(&tampered).unwrap_err();
        assert!(err.contains("ring size"), "{err}");
    }

    #[test]
    fn revalidation_rejects_tampered_coverings() {
        let sol = solve(5, &SolveRequest::find_optimal());
        let good = solution_to_json(&sol);
        // Remove one cycle: coverage breaks but the document stays valid
        // JSON — from_tiles accepts it, validate() must catch it. Here we
        // tamper harder: a non-DRC cycle must be rejected at parse time.
        let tampered = good.replace("\"cycles\": [[", "\"cycles\": [[0, 2, 4, 1], [[");
        match covering_from_solution_json(&tampered) {
            Err(e) => assert!(e.contains("DRC") || e.contains("expected"), "{e}"),
            Ok(c) => assert!(c.validate().is_err(), "tampered covering validated"),
        }
    }
}
