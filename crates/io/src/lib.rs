//! # cyclecover-io
//!
//! Persistence and presentation for the cycle-covering workspace:
//!
//! * [`format`](mod@format) — the v1 line-oriented text format for
//!   [`DrcCovering`](cyclecover_core::DrcCovering)s (serialize, parse,
//!   re-validate);
//! * [`json`] — the JSON wire format for solver
//!   [`Solution`](cyclecover_solver::api::Solution)s (emit, parse,
//!   re-validate) — the service layer's request/response artifact;
//! * [`csv`] — a small RFC-4180-style CSV/ASCII table writer for the
//!   experiment binaries;
//! * [`svg`] — standalone SVG rendering of ring coverings.
//!
//! Everything is dependency-free (std only) per the workspace's
//! offline-crate policy.
//!
//! ```
//! use cyclecover_core::construct_optimal;
//! use cyclecover_io::format::{from_text, to_text};
//!
//! let cover = construct_optimal(9);
//! let text = to_text(&cover);
//! let back = from_text(&text).unwrap();
//! assert_eq!(back.len(), cover.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod format;
pub mod json;
pub mod svg;
