//! A line-oriented text format for DRC coverings.
//!
//! A deployment needs to persist the design artifact (which cycles, on
//! which ring) and reload it for provisioning and audit. The format is
//! deliberately trivial — diffable, versionable, greppable:
//!
//! ```text
//! # cyclecover v1
//! ring 9
//! cycle 0 3 6
//! cycle 0 1 4 5
//! ```
//!
//! Blank lines and `#` comments are ignored. Cycle vertices are the
//! logical cycle in routing order; parsing re-validates every line
//! (range, arity, DRC-routability via the winding check), so a loaded
//! covering is as trustworthy as a constructed one.

use cyclecover_core::DrcCovering;
use cyclecover_graph::CycleSubgraph;
use cyclecover_ring::{routing, Ring, Tile};
use std::fmt::Write as _;

/// Parse failure, with the 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input (0 for structural errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a covering to the v1 text format.
pub fn to_text(cover: &DrcCovering) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# cyclecover v1");
    let _ = writeln!(s, "ring {}", cover.ring().n());
    for tile in cover.tiles() {
        s.push_str("cycle");
        for v in tile.vertices() {
            let _ = write!(s, " {v}");
        }
        s.push('\n');
    }
    s
}

/// Parses the v1 text format back into a covering. Every cycle line is
/// checked: vertices in range, distinct, at least 3, and DRC-routable on
/// the declared ring.
pub fn from_text(text: &str) -> Result<DrcCovering, ParseError> {
    let mut ring: Option<Ring> = None;
    let mut tiles = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut words = trimmed.split_whitespace();
        match words.next() {
            Some("ring") => {
                if ring.is_some() {
                    return Err(ParseError {
                        line,
                        message: "duplicate ring declaration".into(),
                    });
                }
                let n: u32 = words
                    .next()
                    .ok_or_else(|| ParseError {
                        line,
                        message: "ring needs a size".into(),
                    })?
                    .parse()
                    .map_err(|e| ParseError {
                        line,
                        message: format!("bad ring size: {e}"),
                    })?;
                if n < 3 {
                    return Err(ParseError {
                        line,
                        message: format!("ring size {n} < 3"),
                    });
                }
                if words.next().is_some() {
                    return Err(ParseError {
                        line,
                        message: "trailing tokens after ring size".into(),
                    });
                }
                ring = Some(Ring::new(n));
            }
            Some("cycle") => {
                let ring = ring.ok_or_else(|| ParseError {
                    line,
                    message: "cycle before ring declaration".into(),
                })?;
                let verts: Vec<u32> = words
                    .map(|w| {
                        w.parse().map_err(|e| ParseError {
                            line,
                            message: format!("bad vertex '{w}': {e}"),
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if verts.len() < 3 {
                    return Err(ParseError {
                        line,
                        message: format!("cycle needs >= 3 vertices, got {}", verts.len()),
                    });
                }
                let mut sorted = verts.clone();
                sorted.sort_unstable();
                if sorted.windows(2).any(|w| w[0] == w[1]) {
                    return Err(ParseError {
                        line,
                        message: "repeated vertex in cycle".into(),
                    });
                }
                if let Some(&v) = verts.iter().find(|&&v| v >= ring.n()) {
                    return Err(ParseError {
                        line,
                        message: format!("vertex {v} out of range for ring {}", ring.n()),
                    });
                }
                let cyc = CycleSubgraph::new(verts.clone());
                if routing::winding_routing(ring, &cyc).is_none() {
                    return Err(ParseError {
                        line,
                        message: "cycle violates the DRC on the declared ring".into(),
                    });
                }
                tiles.push(Tile::from_vertices(ring, verts));
            }
            Some(other) => {
                return Err(ParseError {
                    line,
                    message: format!("unknown directive '{other}'"),
                });
            }
            None => unreachable!("blank lines filtered above"),
        }
    }
    let ring = ring.ok_or(ParseError {
        line: 0,
        message: "missing ring declaration".into(),
    })?;
    Ok(DrcCovering::from_tiles(ring, tiles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_core::construct_optimal;

    #[test]
    fn round_trips_constructed_coverings() {
        for n in [5u32, 8, 9, 12, 13, 16, 21] {
            let cover = construct_optimal(n);
            let text = to_text(&cover);
            let back = from_text(&text).expect("round trip parses");
            assert_eq!(back.ring().n(), n);
            assert_eq!(back.len(), cover.len(), "n={n}");
            assert!(back.validate().is_ok(), "n={n}");
            // Idempotence: serialize again, identical text.
            assert_eq!(to_text(&back), text, "n={n}");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nring 5\n# mid\ncycle 0 1 2\n\n";
        let cover = from_text(text).unwrap();
        assert_eq!(cover.len(), 1);
    }

    fn err(text: &str) -> ParseError {
        from_text(text).unwrap_err()
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(err("").message.contains("missing ring"));
        assert!(err("cycle 0 1 2").message.contains("before ring"));
        assert!(err("ring").message.contains("needs a size"));
        assert!(err("ring 2").message.contains("< 3"));
        assert!(err("ring five").message.contains("bad ring size"));
        assert!(err("ring 5 7").message.contains("trailing"));
        assert!(err("ring 5\nring 6").message.contains("duplicate"));
        assert!(err("ring 5\nwavelength 3").message.contains("unknown directive"));
        assert!(err("ring 5\ncycle 0 1").message.contains(">= 3"));
        assert!(err("ring 5\ncycle 0 1 9").message.contains("out of range"));
        assert!(err("ring 5\ncycle 0 1 1").message.contains("repeated"));
        assert!(err("ring 5\ncycle 0 x 2").message.contains("bad vertex"));
    }

    #[test]
    fn rejects_non_drc_cycle() {
        // The paper's crossed quad on C4.
        let e = err("ring 4\ncycle 0 2 3 1");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("DRC"));
    }

    #[test]
    fn error_lines_are_accurate() {
        let e = err("# c\nring 6\n# c\ncycle 0 2 4\ncycle 0 2 1 3");
        assert_eq!(e.line, 5);
    }
}
