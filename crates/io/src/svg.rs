//! SVG rendering of ring coverings (dependency-free).
//!
//! A covering is a visual object: `n` switches on a circle, each
//! covering cycle a closed polygon of chords. [`render_covering`] draws
//! exactly that — one `<polygon>` per cycle in a rotating palette, nodes
//! as labelled circles — producing a standalone SVG document usable in
//! docs, papers, and design reviews.

use cyclecover_core::DrcCovering;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Canvas side, in px.
    pub size: u32,
    /// Node circle radius, in px.
    pub node_radius: f64,
    /// Stroke width of cycle polygons.
    pub stroke_width: f64,
    /// Whether to label nodes with their index.
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            size: 480,
            node_radius: 9.0,
            stroke_width: 1.6,
            labels: true,
        }
    }
}

/// A qualitative 10-color palette (ColorBrewer-style), cycled.
const PALETTE: [&str; 10] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf",
];

/// Position of vertex `v` of `n` on the canvas circle (vertex 0 at the
/// top, clockwise).
fn position(v: u32, n: u32, opts: &SvgOptions) -> (f64, f64) {
    let c = opts.size as f64 / 2.0;
    let r = c - opts.node_radius - 14.0;
    let theta = std::f64::consts::TAU * (v as f64) / (n as f64) - std::f64::consts::FRAC_PI_2;
    (c + r * theta.cos(), c + r * theta.sin())
}

/// Renders the covering as a standalone SVG document.
pub fn render_covering(cover: &DrcCovering, opts: &SvgOptions) -> String {
    let n = cover.ring().n();
    let mut s = String::new();
    let size = opts.size;
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" viewBox="0 0 {size} {size}">"#
    );
    let _ = writeln!(s, r#"  <rect width="100%" height="100%" fill="white"/>"#);

    // Physical ring: a light circle through the node positions.
    let c = size as f64 / 2.0;
    let rr = c - opts.node_radius - 14.0;
    let _ = writeln!(
        s,
        r##"  <circle cx="{c:.1}" cy="{c:.1}" r="{rr:.1}" fill="none" stroke="#cccccc" stroke-width="{:.1}"/>"##,
        opts.stroke_width * 2.0
    );

    // One polygon per covering cycle.
    for (i, tile) in cover.tiles().iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut points = String::new();
        for &v in tile.vertices() {
            let (x, y) = position(v, n, opts);
            let _ = write!(points, "{x:.1},{y:.1} ");
        }
        let _ = writeln!(
            s,
            r#"  <polygon points="{}" fill="none" stroke="{color}" stroke-width="{:.1}" opacity="0.8"/>"#,
            points.trim_end(),
            opts.stroke_width
        );
    }

    // Nodes on top.
    for v in 0..n {
        let (x, y) = position(v, n, opts);
        let _ = writeln!(
            s,
            r##"  <circle cx="{x:.1}" cy="{y:.1}" r="{:.1}" fill="#333333"/>"##,
            opts.node_radius
        );
        if opts.labels {
            let _ = writeln!(
                s,
                r#"  <text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="{:.0}" fill="white" text-anchor="middle">{v}</text>"#,
                y + opts.node_radius * 0.38,
                opts.node_radius * 1.1
            );
        }
    }
    s.push_str("</svg>\n");
    s
}

/// Position of mesh vertex `(r, c)` on a `rows × cols` canvas grid.
fn mesh_position(r: u32, c: u32, opts: &SvgOptions) -> (f64, f64) {
    let margin = opts.node_radius + 14.0;
    (
        margin + c as f64 * (3.2 * opts.node_radius + 26.0),
        margin + r as f64 * (3.2 * opts.node_radius + 26.0),
    )
}

/// Renders a covering of a `rows × cols` mesh (grid or torus layout) as
/// a standalone SVG document: nodes on a lattice, one closed polygon per
/// covering cycle (cycles are given as vertex lists in row-major ids,
/// the convention of `cyclecover-topo`). Wrap edges are not drawn —
/// the lattice shows structure, the polygons show the logical cycles.
pub fn render_mesh_covering(
    rows: u32,
    cols: u32,
    cycles: &[Vec<u32>],
    opts: &SvgOptions,
) -> String {
    assert!(rows >= 1 && cols >= 1, "degenerate mesh");
    let coords = |v: u32| -> (f64, f64) { mesh_position(v / cols, v % cols, opts) };
    let (w, _) = mesh_position(0, cols, opts);
    let (_, h) = mesh_position(rows, 0, opts);
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
    );
    let _ = writeln!(s, r#"  <rect width="100%" height="100%" fill="white"/>"#);
    // Lattice edges (no wrap).
    for r in 0..rows {
        for c in 0..cols {
            let (x, y) = mesh_position(r, c, opts);
            if c + 1 < cols {
                let (x2, y2) = mesh_position(r, c + 1, opts);
                let _ = writeln!(
                    s,
                    r##"  <line x1="{x:.1}" y1="{y:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#dddddd" stroke-width="2"/>"##
                );
            }
            if r + 1 < rows {
                let (x2, y2) = mesh_position(r + 1, c, opts);
                let _ = writeln!(
                    s,
                    r##"  <line x1="{x:.1}" y1="{y:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#dddddd" stroke-width="2"/>"##
                );
            }
        }
    }
    for (i, cyc) in cycles.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut points = String::new();
        for &v in cyc {
            assert!(v < rows * cols, "cycle vertex {v} outside the mesh");
            let (x, y) = coords(v);
            let _ = write!(points, "{x:.1},{y:.1} ");
        }
        let _ = writeln!(
            s,
            r#"  <polygon points="{}" fill="none" stroke="{color}" stroke-width="{:.1}" opacity="0.75"/>"#,
            points.trim_end(),
            opts.stroke_width
        );
    }
    for r in 0..rows {
        for c in 0..cols {
            let (x, y) = mesh_position(r, c, opts);
            let _ = writeln!(
                s,
                r##"  <circle cx="{x:.1}" cy="{y:.1}" r="{:.1}" fill="#333333"/>"##,
                opts.node_radius
            );
            if opts.labels {
                let _ = writeln!(
                    s,
                    r#"  <text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="{:.0}" fill="white" text-anchor="middle">{}</text>"#,
                    y + opts.node_radius * 0.38,
                    opts.node_radius * 1.1,
                    r * cols + c
                );
            }
        }
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_core::construct_optimal;

    #[test]
    fn renders_wellformed_svg() {
        let cover = construct_optimal(9);
        let svg = render_covering(&cover, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One polygon per cycle, one node circle per vertex (+1 ring circle).
        assert_eq!(svg.matches("<polygon").count(), cover.len());
        assert_eq!(svg.matches("<circle").count(), 9 + 1);
        assert_eq!(svg.matches("<text").count(), 9);
    }

    #[test]
    fn labels_can_be_disabled() {
        let cover = construct_optimal(5);
        let svg = render_covering(
            &cover,
            &SvgOptions {
                labels: false,
                ..SvgOptions::default()
            },
        );
        assert_eq!(svg.matches("<text").count(), 0);
    }

    #[test]
    fn positions_are_on_canvas() {
        let opts = SvgOptions::default();
        for v in 0..12 {
            let (x, y) = position(v, 12, &opts);
            assert!(x >= 0.0 && x <= opts.size as f64);
            assert!(y >= 0.0 && y <= opts.size as f64);
        }
    }

    #[test]
    fn mesh_rendering_wellformed() {
        let cycles = vec![vec![0u32, 1, 5, 4], vec![0, 5, 1, 4]];
        let svg = render_mesh_covering(3, 4, &cycles, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polygon").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 12);
        // Lattice edges: 3*3 horizontal + 2*4 vertical = 17.
        assert_eq!(svg.matches("<line").count(), 17);
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn mesh_rendering_rejects_out_of_range() {
        render_mesh_covering(2, 2, &[vec![0, 1, 99]], &SvgOptions::default());
    }

    #[test]
    fn distinct_cycles_get_distinct_colors_within_palette() {
        let cover = construct_optimal(7); // 6 cycles ≤ palette size
        let svg = render_covering(&cover, &SvgOptions::default());
        for (i, color) in PALETTE.iter().take(cover.len()).enumerate() {
            assert!(svg.contains(color), "palette color {i} unused");
        }
    }
}
