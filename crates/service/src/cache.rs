//! The universe cache: LRU over `(n, max_len, max_gap)` under a byte
//! budget.
//!
//! [`TileUniverse`] construction is the expensive, spec-independent part
//! of a solve — enumerating every DRC-routable tile and precomputing the
//! chord tables the kernels branch on. Jobs in a batch overwhelmingly
//! repeat a few ring shapes, so the service deduplicates construction
//! behind this cache: entries are shared out as [`Arc`]s (a solve keeps
//! its universe alive even if the cache evicts it mid-flight), charged at
//! [`TileUniverse::approx_bytes`], and evicted least-recently-used when
//! the resident total exceeds the configured budget.

use cyclecover_ring::Ring;
use cyclecover_solver::TileUniverse;
use std::sync::Arc;

/// The cache key: ring size, maximum tile length, maximum vertex gap —
/// exactly the parameters of
/// [`TileUniverse::with_max_gap`], and nothing
/// else: the demand spec deliberately does not participate, so distinct
/// specs over one ring shape share one enumeration.
pub type UniverseKey = (u32, u32, u32);

/// Cumulative cache counters (monotone except `bytes`, the resident
/// total).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to build a universe.
    pub misses: u64,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub bytes: usize,
    /// High-water mark of `bytes` (sampled after each insertion, before
    /// eviction brings the total back under budget).
    pub peak_bytes: usize,
}

impl CacheStats {
    /// Hits over lookups, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    key: UniverseKey,
    universe: Arc<TileUniverse>,
    bytes: usize,
    last_used: u64,
}

/// An LRU cache of [`TileUniverse`]s under a byte budget. Not
/// thread-safe by itself — the service wraps it in a `Mutex`, which also
/// guarantees a universe is never built twice concurrently.
pub struct UniverseCache {
    budget: usize,
    tick: u64,
    entries: Vec<Entry>,
    stats: CacheStats,
}

impl UniverseCache {
    /// A cache that keeps at most `budget_bytes` of universes resident.
    /// A budget of 0 disables retention (every lookup builds).
    pub fn new(budget_bytes: usize) -> Self {
        UniverseCache {
            budget: budget_bytes,
            tick: 0,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `key` is resident right now (no LRU touch, no counter
    /// bump) — lets the service decide, under the cache lock, whether a
    /// lookup would construct (the fault-injection probe point).
    pub fn contains(&self, key: UniverseKey) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// Returns the universe for `key`, building (and charging) it on a
    /// miss. The boolean is `true` on a hit. The returned [`Arc`] is the
    /// caller's to keep: eviction only drops the cache's reference.
    pub fn get_or_build(&mut self, key: UniverseKey) -> (Arc<TileUniverse>, bool) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = self.tick;
            self.stats.hits += 1;
            return (e.universe.clone(), true);
        }
        let (n, max_len, max_gap) = key;
        let universe = Arc::new(TileUniverse::with_max_gap(
            Ring::new(n),
            max_len as usize,
            max_gap,
        ));
        let bytes = universe.approx_bytes();
        self.stats.misses += 1;
        self.stats.bytes += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes);
        self.entries.push(Entry {
            key,
            universe: universe.clone(),
            bytes,
            last_used: self.tick,
        });
        // Evict LRU-first until back under budget. The fresh entry has
        // the newest stamp, so it goes last — and does go, if it alone
        // exceeds the budget (the caller's Arc keeps it alive regardless).
        while self.stats.bytes > self.budget && !self.entries.is_empty() {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            let evicted = self.entries.swap_remove(lru);
            self.stats.bytes -= evicted.bytes;
            self.stats.evictions += 1;
        }
        (universe, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_bytes(key: UniverseKey) -> usize {
        TileUniverse::with_max_gap(Ring::new(key.0), key.1 as usize, key.2).approx_bytes()
    }

    #[test]
    fn hit_returns_the_same_allocation() {
        let mut cache = UniverseCache::new(usize::MAX);
        let (a, hit_a) = cache.get_or_build((8, 8, 8));
        let (b, hit_b) = cache.get_or_build((8, 8, 8));
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_universes() {
        let mut cache = UniverseCache::new(usize::MAX);
        let (full, _) = cache.get_or_build((8, 8, 8));
        let (short, _) = cache.get_or_build((8, 4, 8));
        let (gapped, _) = cache.get_or_build((8, 8, 2));
        assert!(!Arc::ptr_eq(&full, &short));
        assert!(short.len() < full.len());
        assert!(gapped.len() < full.len());
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().bytes, cache.stats().peak_bytes);
    }

    #[test]
    fn eviction_is_lru_under_the_byte_budget() {
        // Budget sized to hold the two smaller universes but not three.
        let small = key_bytes((6, 6, 6));
        let mid = key_bytes((7, 7, 7));
        let big = key_bytes((8, 8, 8));
        let mut cache = UniverseCache::new(mid + big + small / 2);
        cache.get_or_build((6, 6, 6));
        cache.get_or_build((7, 7, 7));
        // Touch n=6 so n=7 becomes the LRU.
        cache.get_or_build((6, 6, 6));
        cache.get_or_build((8, 8, 8));
        assert_eq!(cache.stats().evictions, 1);
        let keys: Vec<UniverseKey> = cache.entries.iter().map(|e| e.key).collect();
        assert!(keys.contains(&(6, 6, 6)), "recently-used entry evicted: {keys:?}");
        assert!(keys.contains(&(8, 8, 8)), "fresh entry evicted: {keys:?}");
        assert!(!keys.contains(&(7, 7, 7)), "LRU entry survived: {keys:?}");
        assert!(cache.stats().bytes <= cache.budget());
        // Rebuilding the evicted key is a miss again.
        let (_, hit) = cache.get_or_build((7, 7, 7));
        assert!(!hit);
    }

    #[test]
    fn zero_budget_retains_nothing_but_still_serves() {
        let mut cache = UniverseCache::new(0);
        let (u, hit) = cache.get_or_build((6, 6, 6));
        assert!(!hit);
        assert_eq!(u.ring().n(), 6);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().peak_bytes > 0);
        let (_, hit) = cache.get_or_build((6, 6, 6));
        assert!(!hit, "nothing resident to hit");
    }
}
