//! The batching solve service: submit [`SolveJob`]s, drain a batch.
//!
//! Scheduling model, in order of application:
//!
//! 1. **Admission (EDF)** — jobs are ordered earliest-absolute-deadline
//!    first (`deadline_ms` is measured from the moment [`SolveService::drain`]
//!    begins; jobs without a deadline run after all deadlined jobs, in
//!    submission order). A job whose deadline has already passed when a
//!    worker picks it up is *rejected without running*: it reports
//!    `budget_exhausted`/`deadline` with zero nodes, attributed to the
//!    pseudo-engine `"service"`.
//! 2. **Coalescing** — jobs identical up to `id` and `deadline_ms` form
//!    one group; the group is solved once (under the EDF position of its
//!    earliest member) and the solution is fanned back out to every
//!    waiter. The solve runs under the *most permissive* deadline among
//!    the group's admitted waiters, so a shared answer is never cut
//!    shorter than its latest waiter allows.
//! 3. **Universe reuse** — each group's `(n, max_len, max_gap)` key is
//!    resolved through the byte-budgeted LRU [`UniverseCache`];
//!    construction happens at most once per key per residency.
//! 4. **Cancellation tree** — every kernel runs under a child of the
//!    service's root [`CancelToken`]: [`SolveService::cancel_all`] aborts
//!    every in-flight and future kernel of the batch within ~4096 nodes
//!    per worker, without touching tokens owned by other batches.
//!
//! Layered on top, the **fault-tolerance model** (see `docs/robustness.md`):
//!
//! 5. **Panic isolation** — every engine dispatch runs under
//!    `catch_unwind`; a panic becomes a terminal `Failed`/`panic` answer
//!    fanned to every coalesced waiter, the worker thread survives, and
//!    the request's coalescing key is **quarantined** so a poison
//!    instance cannot re-panic later batches.
//! 6. **Retry with backoff** — transient outcomes (a panic with attempts
//!    left; a deadline exhaustion while the job's real deadline still has
//!    slack) are retried up to [`ServiceConfig::max_attempts`] per ladder
//!    rung, sleeping a deterministic seeded jittered exponential backoff
//!    between attempts.
//! 7. **Degradation ladder** — when a rung exhausts its budget (or
//!    panics persistently), the service re-dispatches down the request's
//!    `fallback` chain; any answer from a fallback rung carries an honest
//!    [`Degradation`] record.
//! 8. **Fault injection** — every dispatch and universe build consults
//!    the installed [`FaultPlan`](crate::FaultPlan) (no-op by default),
//!    so chaos tests drive the exact production paths deterministically.
//! 9. **Graceful drain** — [`SolveService::shutdown`] cancels the root
//!    token with [`CancelReason::Shutdown`]: in-flight kernels stop
//!    within ~4096 nodes and report `budget_exhausted`/`shutdown`;
//!    not-yet-started groups are reported unstarted without running.
//!
//! `workers > 1` drains the group list on that many OS threads (engines
//! are `Sync`; the EDF order is preserved by having workers pull group
//! indices from a shared counter).

use crate::cache::{CacheStats, UniverseCache, UniverseKey};
use crate::certs::CertCache;
use crate::fault::{FaultInjector, FaultKind};
use crate::predict::{CostModel, Prediction};
use cyclecover_io::json::{self, quote as json_escape, SolveJob};
use cyclecover_ring::Ring;
use cyclecover_solver::api::{
    engine_by_name, engines, CancelReason, CancelToken, Degradation, DegradeReason, Exhaustion,
    FailureKind, Optimality, Problem, Solution,
};
use cyclecover_solver::bnb::MemoStore;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the batch (`≥ 1`; clamped up to 1).
    pub workers: usize,
    /// Byte budget for the universe cache.
    pub cache_bytes: usize,
    /// Dispatch attempts per ladder rung (`≥ 1`; clamped up to 1):
    /// `max_attempts - 1` retries after a transient failure.
    pub max_attempts: u32,
    /// Base backoff between retry attempts, in milliseconds (attempt `k`
    /// sleeps a jittered `backoff_base_ms · 2^(k-1)`; 0 disables the
    /// sleep but not the retry).
    pub backoff_base_ms: u64,
    /// Seeds the backoff jitter (an installed
    /// [`FaultPlan`](crate::FaultPlan)'s `seed` takes precedence).
    pub retry_seed: u64,
    /// Share one refutation store per universe key across every group
    /// of a batch (and across batches, for a long-lived service):
    /// near-duplicate traffic then reuses exhausted-subtree proofs
    /// instead of rederiving them, surfacing as `shared_hits`. Off by
    /// default — sharing changes (improves) node counts, so callers
    /// gating on calibrated cold-memo baselines opt in explicitly.
    pub shared_memo: bool,
}

impl Default for ServiceConfig {
    /// One worker, 64 MiB of universe cache, one retry per rung with a
    /// 25 ms backoff base.
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            cache_bytes: 64 << 20,
            max_attempts: 2,
            backoff_base_ms: 25,
            retry_seed: 0,
            shared_memo: false,
        }
    }
}

struct Pending {
    seq: u64,
    job: SolveJob,
    submitted: Instant,
}

/// One job's outcome within a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Submission sequence number (reports are returned in this order).
    pub seq: u64,
    /// Job id (as submitted, or the assigned `job-<seq>`).
    pub id: String,
    /// The engine the job requested.
    pub engine: String,
    /// Position of the job's group in the admission (EDF) order.
    pub admit_order: usize,
    /// Satisfied by another job's solve (same coalescing key).
    pub coalesced: bool,
    /// The group's universe lookup hit the cache (recorded on the
    /// group's primary job only; coalesced waiters never looked).
    pub cache_hit: bool,
    /// Rejected at admission: the deadline had already passed.
    pub expired: bool,
    /// Rejected at admission by the installed [`CostModel`]: the
    /// calibrated curve says the deadline cannot be met (see
    /// [`CostModel::unmeetable`]). Mutually exclusive with `expired`
    /// (expiry is checked first).
    pub predicted_reject: bool,
    /// What the installed cost model predicted for this job (`None`
    /// when no model is installed or the model had nothing defensible
    /// to say) — reported next to the actual node count so the
    /// calibration table stays auditable.
    pub predicted: Option<Prediction>,
    /// Reported without running because the service was shutting down
    /// when the job's group came up.
    pub unstarted: bool,
    /// Admission error (unsupported engine/problem pair); `solution` is
    /// `None` exactly when this is `Some`.
    pub error: Option<String>,
    /// Terminal-failure detail (the caught panic message, the injected
    /// build failure, or the quarantine notice) when the solution is
    /// `Failed`; `None` otherwise.
    pub failure: Option<String>,
    /// Time from submission to admission.
    pub queue_wait: Duration,
    /// The engine's answer (shared across a coalesced group), or the
    /// `unstarted` rejection document for expired/drained jobs.
    pub solution: Option<Solution>,
}

/// Per-engine work accounting for one batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineTotal {
    /// Engine registry name.
    pub name: String,
    /// Kernel runs (coalesced groups count once).
    pub solves: u64,
    /// Jobs served, including coalesced waiters.
    pub jobs: u64,
    /// Search nodes expanded (summed over kernel runs).
    pub nodes: u64,
}

/// Batch-level statistics.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Jobs drained from the queue.
    pub submitted: usize,
    /// Jobs that received an engine answer (including coalesced waiters).
    pub solved: usize,
    /// Jobs rejected at admission because their deadline had passed.
    pub expired: usize,
    /// Jobs rejected at admission by the installed cost model
    /// (predicted-unmeetable deadline). Always 0 without a model.
    pub predicted_rejected: usize,
    /// Jobs satisfied by another job's solve.
    pub coalesced: usize,
    /// Jobs rejected with an admission error.
    pub errors: usize,
    /// Jobs whose final status is terminal `Failed` (panic, internal).
    pub failed: usize,
    /// Jobs answered by a fallback rung (carry a [`Degradation`] record).
    pub degraded: usize,
    /// Extra dispatches beyond the first, summed over kernel runs
    /// (retries and ladder descents both count).
    pub retries: u64,
    /// Jobs reported unstarted because the service was shutting down.
    pub unstarted: usize,
    /// Faults the installed plan fired during this drain.
    pub faults_injected: u64,
    /// Coalescing keys quarantined after this drain (cumulative over the
    /// service's lifetime — quarantine persists across drains).
    pub quarantined: usize,
    /// Refutation-store hits summed over this batch's kernel runs
    /// (coalesced waiters share their primary's run and don't re-count).
    pub memo_hits: u64,
    /// The subset of `memo_hits` landing on refutations another searcher
    /// recorded — an earlier deepening probe, a parallel worker, or
    /// (with [`ServiceConfig::shared_memo`]) another request.
    pub shared_hits: u64,
    /// Jobs answered from the persisted certificate cache with zero
    /// kernel nodes (coalesced waiters of a cached group count too —
    /// each was a job the cache absorbed).
    pub cert_cache_hits: usize,
    /// Universe-cache counters at drain end.
    pub cache: CacheStats,
    /// Per-engine totals, sorted by name.
    pub engines: Vec<EngineTotal>,
    /// Mean time from submission to admission.
    pub mean_queue_wait: Duration,
    /// Wall-clock time for the whole drain.
    pub wall: Duration,
}

/// Everything a [`SolveService::drain`] call produced: one report per
/// submitted job (in submission order) plus batch statistics.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobReport>,
    /// Batch statistics.
    pub stats: BatchStats,
}

/// The batching solve service — EDF admission, request coalescing,
/// cached universes, and the fault-tolerance layer (both models are
/// spelled out at the top of this source file); the [`crate`] docs hold
/// a worked example.
pub struct SolveService {
    config: ServiceConfig,
    cache: Mutex<UniverseCache>,
    queue: Vec<Pending>,
    root: CancelToken,
    fault: FaultInjector,
    quarantine: Mutex<HashSet<String>>,
    model: Option<CostModel>,
    next_seq: u64,
    /// One shared refutation store per universe key, created lazily when
    /// [`ServiceConfig::shared_memo`] is set; persists across drains so
    /// a long-lived daemon keeps its warmth between generations.
    memo_stores: Mutex<HashMap<UniverseKey, Arc<MemoStore>>>,
    /// The persisted certificate cache, when one is installed.
    cert_cache: Option<Mutex<CertCache>>,
}

impl SolveService {
    /// A service with the given configuration, an empty queue, and no
    /// fault plan.
    pub fn new(config: ServiceConfig) -> Self {
        SolveService {
            cache: Mutex::new(UniverseCache::new(config.cache_bytes)),
            config,
            queue: Vec::new(),
            root: CancelToken::new(),
            fault: FaultInjector::default(),
            quarantine: Mutex::new(HashSet::new()),
            model: None,
            next_seq: 0,
            memo_stores: Mutex::new(HashMap::new()),
            cert_cache: None,
        }
    }

    /// Installs a certificate cache (replacing any previous one): from
    /// now on a group whose coalescing key the cache holds is answered
    /// with the persisted certificate — zero kernel nodes, wire-marked
    /// `cached: true` — and every qualifying fresh terminal answer is
    /// recorded back into it. Retrieve the grown cache for persistence
    /// with [`SolveService::cert_cache_json`].
    pub fn set_cert_cache(&mut self, cache: CertCache) {
        self.cert_cache = Some(Mutex::new(cache));
    }

    /// Serializes the installed certificate cache (its current, grown
    /// state) as the `cyclecover-certificate-cache` wire document;
    /// `None` when no cache is installed.
    pub fn cert_cache_json(&self) -> Option<String> {
        self.cert_cache
            .as_ref()
            .map(|c| c.lock().expect("cert cache poisoned").to_json())
    }

    /// `(entries, hits, rejected_on_load)` of the installed certificate
    /// cache; `None` when no cache is installed.
    pub fn cert_cache_stats(&self) -> Option<(usize, u64, u64)> {
        self.cert_cache.as_ref().map(|c| {
            let c = c.lock().expect("cert cache poisoned");
            (c.len(), c.hits(), c.rejected_on_load())
        })
    }

    /// Installs a calibrated cost model: deadline-carrying jobs the
    /// model is confident cannot finish in time are rejected at
    /// admission (`predicted_reject`), and every job's prediction is
    /// reported next to its actual node count. Without a model (the
    /// default) admission behaviour is unchanged and the predictive
    /// counters stay at zero.
    pub fn set_cost_model(&mut self, model: CostModel) {
        self.model = Some(model);
    }

    /// The installed cost model, if any.
    pub fn cost_model(&self) -> Option<&CostModel> {
        self.model.as_ref()
    }

    /// Whether the universe for `key` is currently resident in the
    /// cache — a lookup that touches neither the LRU order nor the
    /// hit/miss counters. The daemon uses this to count warm starts
    /// across serving generations.
    pub fn universe_resident(&self, key: UniverseKey) -> bool {
        self.cache.lock().expect("cache poisoned").contains(key)
    }

    /// Installs a fault plan (replacing any previous one and resetting
    /// its counters). The empty plan restores the no-op default.
    pub fn set_fault_plan(&mut self, plan: crate::FaultPlan) {
        self.fault = FaultInjector::new(plan);
    }

    /// The installed fault injector (counters included).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Enqueues a job; returns its id (assigning `job-<seq>` when the
    /// job came unnamed). Rejects unknown engine names (primary and
    /// fallback) and ids already queued — everything else waits for
    /// admission.
    pub fn submit(&mut self, mut job: SolveJob) -> Result<String, String> {
        for name in std::iter::once(&job.engine).chain(job.fallback.iter()) {
            if engine_by_name(name).is_none() {
                let names: Vec<&str> = engines().iter().map(|e| e.name()).collect();
                return Err(format!(
                    "unknown engine '{}' (have: {})",
                    name,
                    names.join(", ")
                ));
            }
        }
        if job.id.is_empty() {
            // Skip over ids the user already took ("job-3" is a legal
            // explicit id): an unnamed job must never be rejected as a
            // duplicate of a name it didn't choose.
            let mut bump = self.next_seq;
            let mut candidate = format!("job-{bump}");
            while self.queue.iter().any(|p| p.job.id == candidate) {
                bump += 1;
                candidate = format!("job-{bump}");
            }
            job.id = candidate;
        }
        if self.queue.iter().any(|p| p.job.id == job.id) {
            return Err(format!("duplicate job id '{}' in batch", job.id));
        }
        let id = job.id.clone();
        self.queue.push(Pending {
            seq: self.next_seq,
            job,
            submitted: Instant::now(),
        });
        self.next_seq += 1;
        Ok(id)
    }

    /// Number of queued jobs.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The batch's root cancellation token (clone it to keep a handle).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.root
    }

    /// Cancels every in-flight and future kernel of this batch: each
    /// solve runs under a child of the root token, so this stops all
    /// workers within ~4096 expanded nodes.
    pub fn cancel_all(&self) {
        self.root.cancel();
    }

    /// Begins a graceful drain: like [`SolveService::cancel_all`] but
    /// with [`CancelReason::Shutdown`], so in-flight kernels report
    /// `budget_exhausted`/`shutdown` and groups not yet started are
    /// reported unstarted without running. Call from any thread holding
    /// a clone of [`SolveService::cancel_token`] (or this service).
    pub fn shutdown(&self) {
        self.root.cancel_with(CancelReason::Shutdown);
    }

    /// Processes the whole queue — EDF admission, coalescing, cached
    /// universes, panic isolation, retry, the degradation ladder — and
    /// returns one report per job in submission order. The batch clock
    /// (the origin `deadline_ms` is measured from) starts now.
    pub fn drain(&mut self) -> BatchReport {
        let epoch = Instant::now();
        let faults_before = self.fault.injected();
        let submitted = self.queue.len();
        let mut pending = std::mem::take(&mut self.queue);
        // EDF: by deadline, no-deadline last, submission order as the tie
        // break. Sorting happens before grouping so each group's first
        // member is its earliest-deadline waiter.
        pending.sort_by_key(|p| (p.job.deadline_ms.is_none(), p.job.deadline_ms, p.seq));

        struct Group {
            members: Vec<Pending>,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        for p in pending {
            let key = coalesce_key(&p.job);
            match by_key.get(&key) {
                Some(&g) => groups[g].members.push(p),
                None => {
                    by_key.insert(key, groups.len());
                    groups.push(Group { members: vec![p] });
                }
            }
        }

        let ctx = DrainCtx {
            epoch,
            cache: &self.cache,
            root: &self.root,
            fault: &self.fault,
            quarantine: &self.quarantine,
            model: self.model.as_ref(),
            max_attempts: self.config.max_attempts.max(1),
            backoff_base_ms: self.config.backoff_base_ms,
            // An installed plan's seed pins the whole chaos run; the
            // config seed drives production jitter otherwise.
            retry_seed: if self.fault.plan().is_empty() {
                self.config.retry_seed
            } else {
                self.fault.plan().seed
            },
            shared_memo: self.config.shared_memo,
            memo_stores: &self.memo_stores,
            cert_cache: self.cert_cache.as_ref(),
        };
        let next = AtomicUsize::new(0);
        let reports: Mutex<Vec<JobReport>> = Mutex::new(Vec::with_capacity(submitted));
        let workers = self.config.workers.max(1).min(groups.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let g = next.fetch_add(1, Ordering::SeqCst);
                    if g >= groups.len() {
                        break;
                    }
                    let out = process_group(g, &groups[g].members, &ctx);
                    reports.lock().expect("report sink poisoned").extend(out);
                });
            }
        });

        let mut jobs = reports.into_inner().expect("report sink poisoned");
        jobs.sort_by_key(|r| r.seq);

        let mut stats = BatchStats {
            submitted,
            solved: 0,
            expired: 0,
            predicted_rejected: 0,
            coalesced: 0,
            errors: 0,
            failed: 0,
            degraded: 0,
            retries: 0,
            unstarted: 0,
            faults_injected: self.fault.injected() - faults_before,
            quarantined: self.quarantine.lock().expect("quarantine poisoned").len(),
            memo_hits: 0,
            shared_hits: 0,
            cert_cache_hits: 0,
            cache: self.cache.lock().expect("cache poisoned").stats(),
            engines: Vec::new(),
            mean_queue_wait: Duration::ZERO,
            wall: Duration::ZERO,
        };
        let mut per_engine: HashMap<String, EngineTotal> = HashMap::new();
        let mut total_wait = Duration::ZERO;
        for r in &jobs {
            total_wait += r.queue_wait;
            if r.expired {
                stats.expired += 1;
                continue;
            }
            if r.predicted_reject {
                stats.predicted_rejected += 1;
                continue;
            }
            if r.unstarted {
                stats.unstarted += 1;
                continue;
            }
            if r.error.is_some() {
                stats.errors += 1;
                continue;
            }
            let sol = r.solution.as_ref();
            if sol.is_some_and(Solution::cached) {
                stats.cert_cache_hits += 1;
            }
            if !r.coalesced {
                if let Some(sol) = sol {
                    stats.retries += u64::from(sol.stats().attempts.saturating_sub(1));
                    stats.memo_hits += sol.stats().memo_hits;
                    stats.shared_hits += sol.stats().shared_hits;
                }
            }
            if matches!(
                sol.map(Solution::optimality),
                Some(Optimality::Failed { .. })
            ) {
                stats.failed += 1;
                continue;
            }
            stats.solved += 1;
            if r.coalesced {
                stats.coalesced += 1;
            }
            if sol.is_some_and(|s| s.degraded().is_some()) {
                stats.degraded += 1;
            }
            // Work is charged to the engine that answered (the fallback
            // rung, for a degraded job), not the one requested.
            let name = r
                .solution
                .as_ref()
                .map_or_else(|| r.engine.clone(), |s| s.stats().engine.to_string());
            let entry = per_engine
                .entry(name.clone())
                .or_insert_with(|| EngineTotal {
                    name,
                    ..EngineTotal::default()
                });
            entry.jobs += 1;
            if !r.coalesced {
                entry.solves += 1;
                if let Some(sol) = &r.solution {
                    entry.nodes += sol.stats().nodes;
                }
            }
        }
        stats.engines = per_engine.into_values().collect();
        stats.engines.sort_by(|a, b| a.name.cmp(&b.name));
        if !jobs.is_empty() {
            stats.mean_queue_wait = total_wait / jobs.len() as u32;
        }
        stats.wall = epoch.elapsed();
        BatchReport { jobs, stats }
    }
}

/// The coalescing key: the request document with `id` and `deadline_ms`
/// blanked — two jobs coalesce iff they are wire-identical otherwise.
fn coalesce_key(job: &SolveJob) -> String {
    let mut key = job.clone();
    key.id = String::new();
    key.deadline_ms = None;
    json::request_to_json(&key)
}

/// Everything a worker needs to process one group.
struct DrainCtx<'a> {
    epoch: Instant,
    cache: &'a Mutex<UniverseCache>,
    root: &'a CancelToken,
    fault: &'a FaultInjector,
    quarantine: &'a Mutex<HashSet<String>>,
    model: Option<&'a CostModel>,
    max_attempts: u32,
    backoff_base_ms: u64,
    retry_seed: u64,
    shared_memo: bool,
    memo_stores: &'a Mutex<HashMap<UniverseKey, Arc<MemoStore>>>,
    cert_cache: Option<&'a Mutex<CertCache>>,
}

/// The deterministic retry backoff: attempt `k` (1-based, counted per
/// solve) sleeps a jittered `base · 2^(k-1)` ms, jitter drawn from an
/// RNG seeded by `(seed, group, attempt)` so a rerun of the same batch
/// sleeps the same schedule.
fn backoff(seed: u64, group_seq: u64, attempt: u32, base_ms: u64) {
    if base_ms == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(
        seed ^ group_seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt) << 32,
    );
    let exp = base_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(6));
    // Uniform in [exp/2, exp]: capped exponential with 50% jitter.
    let sleep = exp / 2 + rng.gen_range(0..=exp - exp / 2);
    std::thread::sleep(Duration::from_millis(sleep));
}

/// The caught panic payload as a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn process_group(admit_order: usize, members: &[Pending], ctx: &DrainCtx) -> Vec<JobReport> {
    let now = Instant::now();
    let mut out = Vec::with_capacity(members.len());
    let mut survivors: Vec<(&Pending, Option<Instant>)> = Vec::new();
    // The coalescing key doubles as the certificate-cache key; probing
    // it first lets a held certificate waive the predictive-admission
    // check below (the answer costs a lookup, not a predicted kernel).
    let key = coalesce_key(&members[0].job);
    let cert_hit = ctx
        .cert_cache
        .and_then(|cc| cc.lock().expect("cert cache poisoned").lookup(&key));
    let report = |p: &Pending| JobReport {
        seq: p.seq,
        id: p.job.id.clone(),
        engine: p.job.engine.clone(),
        admit_order,
        coalesced: false,
        cache_hit: false,
        expired: false,
        predicted_reject: false,
        predicted: None,
        unstarted: false,
        error: None,
        failure: None,
        queue_wait: now.saturating_duration_since(p.submitted),
        solution: None,
    };
    for p in members {
        let abs = p.job.deadline_ms.map(|ms| ctx.epoch + Duration::from_millis(ms));
        if let Some(abs) = abs {
            if now >= abs {
                out.push(JobReport {
                    expired: true,
                    solution: Some(Solution::unstarted(
                        Ring::new(p.job.n),
                        Exhaustion::Deadline,
                        "service",
                    )),
                    ..report(p)
                });
                continue;
            }
            // Predictive admission (only with a model installed, and
            // only after the plain expiry check so an already-dead
            // deadline keeps its established `expired` status): refuse
            // a live deadline the calibrated curve says cannot be met.
            if let Some(model) = ctx.model.filter(|_| cert_hit.is_none()) {
                let remaining = abs.saturating_duration_since(now).as_millis() as u64;
                if let Some(prediction) = model.unmeetable(&p.job, remaining) {
                    out.push(JobReport {
                        predicted_reject: true,
                        predicted: Some(prediction),
                        solution: Some(Solution::unstarted(
                            Ring::new(p.job.n),
                            Exhaustion::Deadline,
                            "service",
                        )),
                        ..report(p)
                    });
                    continue;
                }
            }
        }
        survivors.push((p, abs));
    }
    let Some(&(primary, _)) = survivors.first() else {
        return out;
    };
    let ring = Ring::new(primary.job.n);
    // The audit trail: what the model expected this group to cost
    // (shared by every waiter — prediction inputs are part of the
    // coalescing key). `None` without a model or outside its confidence.
    let predicted = ctx.model.and_then(|m| m.predict(&primary.job));

    // Graceful drain: a cancelled root means this group never starts —
    // report every waiter unstarted with the token's reason (shutdown
    // vs. plain cancel stays distinguishable on the wire).
    if let Some(reason) = ctx.root.cancel_reason() {
        for (p, _) in survivors {
            out.push(JobReport {
                unstarted: reason == CancelReason::Shutdown,
                solution: Some(Solution::unstarted(ring, reason.as_exhaustion(), "service")),
                ..report(p)
            });
        }
        return out;
    }

    // Quarantine: a key that already panicked terminally is refused
    // outright — a poison instance must not re-panic the batch through
    // coalescing or resubmission.
    if ctx.quarantine.lock().expect("quarantine poisoned").contains(&key) {
        for (p, _) in survivors {
            out.push(JobReport {
                failure: Some("quarantined: an earlier dispatch of this request panicked".into()),
                solution: Some(Solution::failed(ring, FailureKind::Panic, "service", 0)),
                ..report(p)
            });
        }
        return out;
    }

    // Certificate-cache hit: the persisted terminal answer is fanned to
    // every admitted waiter with zero kernel nodes. `predicted` stays
    // unset — no kernel ran, so there is nothing for the calibration
    // audit trail to compare against.
    if let Some(sol) = cert_hit {
        for (i, (p, _)) in survivors.iter().enumerate() {
            out.push(JobReport {
                coalesced: i > 0,
                solution: Some(sol.clone()),
                ..report(p)
            });
        }
        return out;
    }

    // Universe lookup, with injected construction failure on a miss.
    let universe_key = primary.job.universe_key();
    let built = {
        let mut cache = ctx.cache.lock().expect("cache poisoned");
        if !cache.contains(universe_key) && ctx.fault.before_build() {
            None
        } else {
            Some(cache.get_or_build(universe_key))
        }
    };
    let Some((universe, cache_hit)) = built else {
        for (p, _) in survivors {
            out.push(JobReport {
                failure: Some("injected fault: universe construction failed".into()),
                solution: Some(Solution::failed(ring, FailureKind::Internal, "service", 0)),
                ..report(p)
            });
        }
        return out;
    };
    let problem = Problem::shared(universe, primary.job.spec());
    let base_request = primary.job.to_solve_request();
    let primary_engine = engine_by_name(&primary.job.engine).expect("engine validated at submit");
    if !primary_engine.supports(&problem, &base_request) {
        for (p, _) in survivors {
            out.push(JobReport {
                error: Some(format!(
                    "engine '{}' does not support this problem/request",
                    p.job.engine
                )),
                ..report(p)
            });
        }
        return out;
    }
    // The solve's deadline is the most permissive among the admitted
    // waiters: a waiter without a deadline lifts it entirely.
    let group_deadline = if survivors.iter().any(|(_, abs)| abs.is_none()) {
        None
    } else {
        survivors.iter().filter_map(|(_, abs)| *abs).max()
    };

    // Ring-two sharing: one refutation store per universe key, shared
    // by every group of the batch (and kept across batches), created
    // lazily under the first group's memo budget. `None` when sharing
    // is off, the request disabled its memo, or the universe is too
    // wide for exact residual keys.
    let shared_store: Option<Arc<MemoStore>> = if ctx.shared_memo && base_request.memo_enabled() {
        let mut stores = ctx.memo_stores.lock().expect("memo stores poisoned");
        match stores.get(&universe_key) {
            Some(s) => Some(Arc::clone(s)),
            None => MemoStore::new(problem.universe(), base_request.memo_budget_bytes()).map(|s| {
                let s = Arc::new(s);
                stores.insert(universe_key, Arc::clone(&s));
                s
            }),
        }
    } else {
        None
    };

    // The degradation ladder: the primary engine, then the request's
    // fallback chain. Each rung gets up to `max_attempts` dispatches;
    // transient failures retry the rung, persistent ones descend.
    let ladder: Vec<&str> = std::iter::once(primary.job.engine.as_str())
        .chain(base_request.fallback().iter().map(String::as_str))
        .collect();
    let mut total_attempts: u32 = 0;
    let mut first_descent: Option<DegradeReason> = None;
    let mut last_exhausted: Option<Solution> = None;
    let mut failure_msg: Option<String> = None;
    let mut answer: Option<Solution> = None;
    'ladder: for name in &ladder {
        let engine = engine_by_name(name).expect("ladder validated at submit");
        if !engine.supports(&problem, &base_request) {
            // An unsupported fallback rung is skipped, not an error: the
            // primary was support-checked above.
            continue;
        }
        let mut rung_attempts: u32 = 0;
        loop {
            rung_attempts += 1;
            total_attempts += 1;
            let mut request = primary.job.to_solve_request();
            if let Some(store) = &shared_store {
                request = request.with_memo_store(Arc::clone(store));
            }
            if let Some(abs) = group_deadline {
                request = request.with_deadline(abs.saturating_duration_since(Instant::now()));
            }
            request = request.with_cancel_token(ctx.root.child());
            let fault = ctx.fault.before_solve(&primary.job.id);
            if fault == Some(FaultKind::Deadline) {
                // Forced exhaustion: the dispatch runs with no wall-clock
                // budget while the job's real deadline keeps its slack —
                // the retry path recovers, deterministically.
                request = request.with_deadline(Duration::ZERO);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                match fault {
                    Some(FaultKind::Panic) => panic!("injected fault: panic on dispatch"),
                    Some(FaultKind::Stall(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                    _ => {}
                }
                engine.solve(&problem, &request)
            }));
            match outcome {
                Err(payload) => {
                    failure_msg = Some(panic_message(payload));
                    if rung_attempts < ctx.max_attempts {
                        backoff(ctx.retry_seed, primary.seq, rung_attempts, ctx.backoff_base_ms);
                        continue;
                    }
                    first_descent.get_or_insert(DegradeReason::Panicked);
                    continue 'ladder;
                }
                Ok(sol) => match *sol.optimality() {
                    Optimality::BudgetExhausted {
                        reason: reason @ (Exhaustion::Cancelled | Exhaustion::Shutdown),
                    } => {
                        // Externally stopped: neither retrying nor
                        // descending would be honest work.
                        let _ = reason;
                        answer = Some(sol);
                        break 'ladder;
                    }
                    Optimality::BudgetExhausted { reason } => {
                        // "Deadline-adjacent": the engine ran out of its
                        // slice but the group's real deadline still has
                        // slack (always true for an injected zero
                        // deadline on an undeadlined job) — transient.
                        let slack_left = reason == Exhaustion::Deadline
                            && group_deadline.is_none_or(|abs| Instant::now() < abs);
                        if slack_left && rung_attempts < ctx.max_attempts {
                            backoff(
                                ctx.retry_seed,
                                primary.seq,
                                rung_attempts,
                                ctx.backoff_base_ms,
                            );
                            continue;
                        }
                        first_descent.get_or_insert(DegradeReason::Exhausted(reason));
                        last_exhausted = Some(sol);
                        continue 'ladder;
                    }
                    _ => {
                        answer = Some(sol);
                        break 'ladder;
                    }
                },
            }
        }
    }

    let mut solution = match answer.or(last_exhausted) {
        Some(sol) => sol,
        // Every rung panicked (or none ran): terminal failure, and the
        // key goes on the quarantine list.
        None => {
            ctx.quarantine
                .lock()
                .expect("quarantine poisoned")
                .insert(key.clone());
            Solution::failed(ring, FailureKind::Panic, "service", total_attempts)
        }
    };
    solution.set_attempts(total_attempts);
    let failed = matches!(solution.optimality(), Optimality::Failed { .. });
    if !failed {
        failure_msg = None;
        if solution.stats().engine != primary.job.engine {
            if let Some(reason) = first_descent {
                solution.set_degradation(Degradation {
                    from: primary.job.engine.clone(),
                    to: solution.stats().engine.to_string(),
                    reason,
                });
            }
        }
    }
    // Ring three: a qualifying fresh terminal answer grows the
    // certificate cache (the cache itself refuses anything degraded,
    // non-terminal, or partial-spec).
    if let Some(cc) = ctx.cert_cache {
        cc.lock()
            .expect("cert cache poisoned")
            .record(&primary.job, &key, &solution);
    }
    for (i, (p, _)) in survivors.iter().enumerate() {
        out.push(JobReport {
            coalesced: i > 0,
            cache_hit: i == 0 && cache_hit,
            predicted,
            failure: failure_msg.clone(),
            solution: Some(solution.clone()),
            ..report(p)
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Batch summary JSON
// ---------------------------------------------------------------------------

/// One job's status line for the summary: the optimality kind, plus the
/// exhaustion/failure reason where applicable.
fn status_of(report: &JobReport) -> (&'static str, Option<&'static str>) {
    if report.error.is_some() {
        return ("error", None);
    }
    match report.solution.as_ref().map(Solution::optimality) {
        Some(Optimality::Optimal { .. }) => ("optimal", None),
        Some(Optimality::Feasible) => ("feasible", None),
        Some(Optimality::Infeasible) => ("infeasible", None),
        Some(Optimality::BudgetExhausted { reason }) => {
            ("budget_exhausted", Some(json::exhaustion_str(reason)))
        }
        Some(Optimality::Failed { kind }) => (
            "failed",
            Some(match kind {
                FailureKind::Panic => "panic",
                FailureKind::Internal => "internal",
            }),
        ),
        None => ("error", None),
    }
}

/// Serializes a [`BatchReport`] as the `cyclecover-batch-summary` JSON
/// document (version 1): one `jobs[]` entry per submitted job plus the
/// batch `stats` block — what `cyclecover serve --batch` prints.
pub fn batch_summary_json(report: &BatchReport) -> String {
    batch_summary_json_with_rejects(report, &[])
}

/// [`batch_summary_json`] with per-line admission rejects: lines of the
/// batch file that failed to parse or submit, reported as
/// `rejected[] = {line, error}` instead of aborting the batch.
pub fn batch_summary_json_with_rejects(
    report: &BatchReport,
    rejects: &[(usize, String)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"format\": \"cyclecover-batch-summary\",\n  \"version\": 1,\n");
    s.push_str("  \"jobs\": [\n");
    for (i, r) in report.jobs.iter().enumerate() {
        let (status, reason) = status_of(r);
        let degraded = r
            .solution
            .as_ref()
            .and_then(Solution::degraded)
            .map_or("null".to_string(), |d| {
                let reason = match d.reason {
                    DegradeReason::Panicked => "panicked",
                    DegradeReason::Exhausted(e) => json::exhaustion_str(&e),
                };
                format!(
                    "{{\"from\": {}, \"to\": {}, \"reason\": \"{reason}\"}}",
                    json_escape(&d.from),
                    json_escape(&d.to)
                )
            });
        let _ = write!(
            s,
            "    {{\"id\": {}, \"engine\": {}, \"status\": {}, \"reason\": {}, \
             \"size\": {}, \"nodes\": {}, \"wall_ms\": {}, \"admit_order\": {}, \
             \"cache_hit\": {}, \"cached\": {}, \"coalesced\": {}, \"expired\": {}, \
             \"unstarted\": {}, \"attempts\": {}, \"degraded\": {degraded}, \"failure\": {}, \
             \"queue_wait_ms\": {:.3}, \"predicted_nodes\": {}, \"predicted_reject\": {}}}",
            json_escape(&r.id),
            json_escape(&r.engine),
            json_escape(status),
            reason.map_or("null".to_string(), json_escape),
            r.solution
                .as_ref()
                .and_then(Solution::size)
                .map_or("null".to_string(), |n| n.to_string()),
            r.solution.as_ref().map_or(0, |sol| sol.stats().nodes),
            r.solution.as_ref().map_or("null".to_string(), |sol| format!(
                "{:.3}",
                sol.stats().wall.as_secs_f64() * 1e3
            )),
            r.admit_order,
            r.cache_hit,
            r.solution.as_ref().is_some_and(Solution::cached),
            r.coalesced,
            r.expired,
            r.unstarted,
            r.solution.as_ref().map_or(0, |sol| sol.stats().attempts),
            r.failure.as_deref().map_or("null".to_string(), json_escape),
            r.queue_wait.as_secs_f64() * 1e3,
            r.predicted
                .map_or("null".to_string(), |p| p.nodes.to_string()),
            r.predicted_reject,
        );
        s.push_str(if i + 1 < report.jobs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"rejected\": [");
    for (i, (line, error)) in rejects.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{{\"line\": {line}, \"error\": {}}}", json_escape(error));
    }
    s.push_str("],\n");
    let st = &report.stats;
    let _ = writeln!(
        s,
        "  \"stats\": {{\n    \"submitted\": {}, \"solved\": {}, \"expired\": {}, \
         \"coalesced\": {}, \"errors\": {}, \"rejected\": {},",
        st.submitted,
        st.solved,
        st.expired,
        st.coalesced,
        st.errors,
        rejects.len()
    );
    let _ = writeln!(
        s,
        "    \"failed\": {}, \"degraded\": {}, \"retries\": {}, \"unstarted\": {}, \
         \"faults_injected\": {}, \"quarantined\": {},",
        st.failed, st.degraded, st.retries, st.unstarted, st.faults_injected, st.quarantined
    );
    let _ = writeln!(s, "    \"predicted_rejected\": {},", st.predicted_rejected);
    let _ = writeln!(
        s,
        "    \"memo\": {{\"hits\": {}, \"shared_hits\": {}, \"cert_cache_hits\": {}}},",
        st.memo_hits, st.shared_hits, st.cert_cache_hits
    );
    let _ = writeln!(
        s,
        "    \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"bytes\": {}, \"peak_bytes\": {}, \"hit_rate\": {:.3}}},",
        st.cache.hits,
        st.cache.misses,
        st.cache.evictions,
        st.cache.bytes,
        st.cache.peak_bytes,
        st.cache.hit_rate()
    );
    s.push_str("    \"engines\": {");
    for (i, e) in st.engines.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{}: {{\"solves\": {}, \"jobs\": {}, \"nodes\": {}}}",
            json_escape(&e.name),
            e.solves,
            e.jobs,
            e.nodes
        );
    }
    s.push_str("},\n");
    let _ = writeln!(
        s,
        "    \"mean_queue_wait_ms\": {:.3}, \"wall_ms\": {:.3}\n  }}",
        st.mean_queue_wait.as_secs_f64() * 1e3,
        st.wall.as_secs_f64() * 1e3
    );
    s.push_str("}\n");
    s
}
