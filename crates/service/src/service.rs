//! The batching solve service: submit [`SolveJob`]s, drain a batch.
//!
//! Scheduling model, in order of application:
//!
//! 1. **Admission (EDF)** — jobs are ordered earliest-absolute-deadline
//!    first (`deadline_ms` is measured from the moment [`SolveService::drain`]
//!    begins; jobs without a deadline run after all deadlined jobs, in
//!    submission order). A job whose deadline has already passed when a
//!    worker picks it up is *rejected without running*: it reports
//!    `budget_exhausted`/`deadline` with zero nodes, attributed to the
//!    pseudo-engine `"service"`.
//! 2. **Coalescing** — jobs identical up to `id` and `deadline_ms` form
//!    one group; the group is solved once (under the EDF position of its
//!    earliest member) and the solution is fanned back out to every
//!    waiter. The solve runs under the *most permissive* deadline among
//!    the group's admitted waiters, so a shared answer is never cut
//!    shorter than its latest waiter allows.
//! 3. **Universe reuse** — each group's `(n, max_len, max_gap)` key is
//!    resolved through the byte-budgeted LRU [`UniverseCache`];
//!    construction happens at most once per key per residency.
//! 4. **Cancellation tree** — every kernel runs under a child of the
//!    service's root [`CancelToken`]: [`SolveService::cancel_all`] aborts
//!    every in-flight and future kernel of the batch within ~4096 nodes
//!    per worker, without touching tokens owned by other batches.
//!
//! `workers > 1` drains the group list on that many OS threads (engines
//! are `Sync`; the EDF order is preserved by having workers pull group
//! indices from a shared counter).

use crate::cache::{CacheStats, UniverseCache};
use cyclecover_io::json::{self, quote as json_escape, SolveJob};
use cyclecover_ring::Ring;
use cyclecover_solver::api::{
    engine_by_name, engines, Exhaustion, Optimality, Problem, Solution,
};
use cyclecover_solver::api::CancelToken;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the batch (`≥ 1`; clamped up to 1).
    pub workers: usize,
    /// Byte budget for the universe cache.
    pub cache_bytes: usize,
}

impl Default for ServiceConfig {
    /// One worker, 64 MiB of universe cache.
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            cache_bytes: 64 << 20,
        }
    }
}

struct Pending {
    seq: u64,
    job: SolveJob,
    submitted: Instant,
}

/// One job's outcome within a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Submission sequence number (reports are returned in this order).
    pub seq: u64,
    /// Job id (as submitted, or the assigned `job-<seq>`).
    pub id: String,
    /// The engine the job requested.
    pub engine: String,
    /// Position of the job's group in the admission (EDF) order.
    pub admit_order: usize,
    /// Satisfied by another job's solve (same coalescing key).
    pub coalesced: bool,
    /// The group's universe lookup hit the cache (recorded on the
    /// group's primary job only; coalesced waiters never looked).
    pub cache_hit: bool,
    /// Rejected at admission: the deadline had already passed.
    pub expired: bool,
    /// Admission error (unsupported engine/problem pair); `solution` is
    /// `None` exactly when this is `Some`.
    pub error: Option<String>,
    /// Time from submission to admission.
    pub queue_wait: Duration,
    /// The engine's answer (shared across a coalesced group), or the
    /// `unstarted` rejection document for expired jobs.
    pub solution: Option<Solution>,
}

/// Per-engine work accounting for one batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineTotal {
    /// Engine registry name.
    pub name: String,
    /// Kernel runs (coalesced groups count once).
    pub solves: u64,
    /// Jobs served, including coalesced waiters.
    pub jobs: u64,
    /// Search nodes expanded (summed over kernel runs).
    pub nodes: u64,
}

/// Batch-level statistics.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Jobs drained from the queue.
    pub submitted: usize,
    /// Jobs that received an engine answer (including coalesced waiters).
    pub solved: usize,
    /// Jobs rejected at admission because their deadline had passed.
    pub expired: usize,
    /// Jobs satisfied by another job's solve.
    pub coalesced: usize,
    /// Jobs rejected with an admission error.
    pub errors: usize,
    /// Universe-cache counters at drain end.
    pub cache: CacheStats,
    /// Per-engine totals, sorted by name.
    pub engines: Vec<EngineTotal>,
    /// Mean time from submission to admission.
    pub mean_queue_wait: Duration,
    /// Wall-clock time for the whole drain.
    pub wall: Duration,
}

/// Everything a [`SolveService::drain`] call produced: one report per
/// submitted job (in submission order) plus batch statistics.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobReport>,
    /// Batch statistics.
    pub stats: BatchStats,
}

/// The batching solve service — EDF admission, request coalescing,
/// cached universes (the scheduling model is spelled out at the top of
/// this source file); the [`crate`] docs hold a worked example.
pub struct SolveService {
    config: ServiceConfig,
    cache: Mutex<UniverseCache>,
    queue: Vec<Pending>,
    root: CancelToken,
    next_seq: u64,
}

impl SolveService {
    /// A service with the given configuration and an empty queue.
    pub fn new(config: ServiceConfig) -> Self {
        SolveService {
            cache: Mutex::new(UniverseCache::new(config.cache_bytes)),
            config,
            queue: Vec::new(),
            root: CancelToken::new(),
            next_seq: 0,
        }
    }

    /// Enqueues a job; returns its id (assigning `job-<seq>` when the
    /// job came unnamed). Rejects unknown engine names and ids already
    /// queued — everything else waits for admission.
    pub fn submit(&mut self, mut job: SolveJob) -> Result<String, String> {
        if engine_by_name(&job.engine).is_none() {
            let names: Vec<&str> = engines().iter().map(|e| e.name()).collect();
            return Err(format!(
                "unknown engine '{}' (have: {})",
                job.engine,
                names.join(", ")
            ));
        }
        if job.id.is_empty() {
            // Skip over ids the user already took ("job-3" is a legal
            // explicit id): an unnamed job must never be rejected as a
            // duplicate of a name it didn't choose.
            let mut bump = self.next_seq;
            let mut candidate = format!("job-{bump}");
            while self.queue.iter().any(|p| p.job.id == candidate) {
                bump += 1;
                candidate = format!("job-{bump}");
            }
            job.id = candidate;
        }
        if self.queue.iter().any(|p| p.job.id == job.id) {
            return Err(format!("duplicate job id '{}' in batch", job.id));
        }
        let id = job.id.clone();
        self.queue.push(Pending {
            seq: self.next_seq,
            job,
            submitted: Instant::now(),
        });
        self.next_seq += 1;
        Ok(id)
    }

    /// Number of queued jobs.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The batch's root cancellation token (clone it to keep a handle).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.root
    }

    /// Cancels every in-flight and future kernel of this batch: each
    /// solve runs under a child of the root token, so this stops all
    /// workers within ~4096 expanded nodes.
    pub fn cancel_all(&self) {
        self.root.cancel();
    }

    /// Processes the whole queue — EDF admission, coalescing, cached
    /// universes — and returns one report per job in submission order.
    /// The batch clock (the origin `deadline_ms` is measured from) starts
    /// now.
    pub fn drain(&mut self) -> BatchReport {
        let epoch = Instant::now();
        let submitted = self.queue.len();
        let mut pending = std::mem::take(&mut self.queue);
        // EDF: by deadline, no-deadline last, submission order as the tie
        // break. Sorting happens before grouping so each group's first
        // member is its earliest-deadline waiter.
        pending.sort_by_key(|p| (p.job.deadline_ms.is_none(), p.job.deadline_ms, p.seq));

        struct Group {
            members: Vec<Pending>,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        for p in pending {
            let key = coalesce_key(&p.job);
            match by_key.get(&key) {
                Some(&g) => groups[g].members.push(p),
                None => {
                    by_key.insert(key, groups.len());
                    groups.push(Group { members: vec![p] });
                }
            }
        }

        let next = AtomicUsize::new(0);
        let reports: Mutex<Vec<JobReport>> = Mutex::new(Vec::with_capacity(submitted));
        let cache = &self.cache;
        let root = &self.root;
        let workers = self.config.workers.max(1).min(groups.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let g = next.fetch_add(1, Ordering::SeqCst);
                    if g >= groups.len() {
                        break;
                    }
                    let out = process_group(g, &groups[g].members, epoch, cache, root);
                    reports.lock().expect("report sink poisoned").extend(out);
                });
            }
        });

        let mut jobs = reports.into_inner().expect("report sink poisoned");
        jobs.sort_by_key(|r| r.seq);

        let mut stats = BatchStats {
            submitted,
            solved: 0,
            expired: 0,
            coalesced: 0,
            errors: 0,
            cache: cache.lock().expect("cache poisoned").stats(),
            engines: Vec::new(),
            mean_queue_wait: Duration::ZERO,
            wall: Duration::ZERO,
        };
        let mut per_engine: HashMap<String, EngineTotal> = HashMap::new();
        let mut total_wait = Duration::ZERO;
        for r in &jobs {
            total_wait += r.queue_wait;
            if r.expired {
                stats.expired += 1;
                continue;
            }
            if r.error.is_some() {
                stats.errors += 1;
                continue;
            }
            stats.solved += 1;
            if r.coalesced {
                stats.coalesced += 1;
            }
            let entry = per_engine
                .entry(r.engine.clone())
                .or_insert_with(|| EngineTotal {
                    name: r.engine.clone(),
                    ..EngineTotal::default()
                });
            entry.jobs += 1;
            if !r.coalesced {
                entry.solves += 1;
                if let Some(sol) = &r.solution {
                    entry.nodes += sol.stats().nodes;
                }
            }
        }
        stats.engines = per_engine.into_values().collect();
        stats.engines.sort_by(|a, b| a.name.cmp(&b.name));
        if !jobs.is_empty() {
            stats.mean_queue_wait = total_wait / jobs.len() as u32;
        }
        stats.wall = epoch.elapsed();
        BatchReport { jobs, stats }
    }
}

/// The coalescing key: the request document with `id` and `deadline_ms`
/// blanked — two jobs coalesce iff they are wire-identical otherwise.
fn coalesce_key(job: &SolveJob) -> String {
    let mut key = job.clone();
    key.id = String::new();
    key.deadline_ms = None;
    json::request_to_json(&key)
}

fn process_group(
    admit_order: usize,
    members: &[Pending],
    epoch: Instant,
    cache: &Mutex<UniverseCache>,
    root: &CancelToken,
) -> Vec<JobReport> {
    let now = Instant::now();
    let mut out = Vec::with_capacity(members.len());
    let mut survivors: Vec<(&Pending, Option<Instant>)> = Vec::new();
    for p in members {
        let abs = p.job.deadline_ms.map(|ms| epoch + Duration::from_millis(ms));
        if let Some(abs) = abs {
            if now >= abs {
                out.push(JobReport {
                    seq: p.seq,
                    id: p.job.id.clone(),
                    engine: p.job.engine.clone(),
                    admit_order,
                    coalesced: false,
                    cache_hit: false,
                    expired: true,
                    error: None,
                    queue_wait: now.saturating_duration_since(p.submitted),
                    solution: Some(Solution::unstarted(
                        Ring::new(p.job.n),
                        Exhaustion::Deadline,
                        "service",
                    )),
                });
                continue;
            }
        }
        survivors.push((p, abs));
    }
    let Some(&(primary, _)) = survivors.first() else {
        return out;
    };

    let engine = engine_by_name(&primary.job.engine).expect("engine validated at submit");
    let (universe, cache_hit) = cache
        .lock()
        .expect("cache poisoned")
        .get_or_build(primary.job.universe_key());
    let problem = Problem::shared(universe, primary.job.spec());
    let mut request = primary.job.to_solve_request();
    if !engine.supports(&problem, &request) {
        for (p, _) in survivors {
            out.push(JobReport {
                seq: p.seq,
                id: p.job.id.clone(),
                engine: p.job.engine.clone(),
                admit_order,
                coalesced: false,
                cache_hit: false,
                expired: false,
                error: Some(format!(
                    "engine '{}' does not support this problem/request",
                    p.job.engine
                )),
                queue_wait: now.saturating_duration_since(p.submitted),
                solution: None,
            });
        }
        return out;
    }
    // The solve's deadline is the most permissive among the admitted
    // waiters: a waiter without a deadline lifts it entirely.
    let group_deadline = if survivors.iter().any(|(_, abs)| abs.is_none()) {
        None
    } else {
        survivors.iter().filter_map(|(_, abs)| *abs).max()
    };
    if let Some(abs) = group_deadline {
        request = request.with_deadline(abs.saturating_duration_since(Instant::now()));
    }
    request = request.with_cancel_token(root.child());
    let solution = engine.solve(&problem, &request);
    for (i, (p, _)) in survivors.iter().enumerate() {
        out.push(JobReport {
            seq: p.seq,
            id: p.job.id.clone(),
            engine: p.job.engine.clone(),
            admit_order,
            coalesced: i > 0,
            cache_hit: i == 0 && cache_hit,
            expired: false,
            error: None,
            queue_wait: now.saturating_duration_since(p.submitted),
            solution: Some(solution.clone()),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Batch summary JSON
// ---------------------------------------------------------------------------

/// One job's status line for the summary: the optimality kind, plus the
/// exhaustion reason where applicable.
fn status_of(report: &JobReport) -> (&'static str, Option<&'static str>) {
    if report.error.is_some() {
        return ("error", None);
    }
    match report.solution.as_ref().map(Solution::optimality) {
        Some(Optimality::Optimal { .. }) => ("optimal", None),
        Some(Optimality::Feasible) => ("feasible", None),
        Some(Optimality::Infeasible) => ("infeasible", None),
        Some(Optimality::BudgetExhausted { reason }) => (
            "budget_exhausted",
            Some(match reason {
                Exhaustion::NodeBudget => "node_budget",
                Exhaustion::Deadline => "deadline",
                Exhaustion::Cancelled => "cancelled",
                Exhaustion::EngineLimit => "engine_limit",
            }),
        ),
        None => ("error", None),
    }
}

/// Serializes a [`BatchReport`] as the `cyclecover-batch-summary` JSON
/// document (version 1): one `jobs[]` entry per submitted job plus the
/// batch `stats` block — what `cyclecover serve --batch` prints.
pub fn batch_summary_json(report: &BatchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"format\": \"cyclecover-batch-summary\",\n  \"version\": 1,\n");
    s.push_str("  \"jobs\": [\n");
    for (i, r) in report.jobs.iter().enumerate() {
        let (status, reason) = status_of(r);
        let _ = write!(
            s,
            "    {{\"id\": {}, \"engine\": {}, \"status\": {}, \"reason\": {}, \
             \"size\": {}, \"nodes\": {}, \"wall_ms\": {}, \"admit_order\": {}, \
             \"cache_hit\": {}, \"coalesced\": {}, \"expired\": {}, \"queue_wait_ms\": {:.3}}}",
            json_escape(&r.id),
            json_escape(&r.engine),
            json_escape(status),
            reason.map_or("null".to_string(), json_escape),
            r.solution
                .as_ref()
                .and_then(Solution::size)
                .map_or("null".to_string(), |n| n.to_string()),
            r.solution.as_ref().map_or(0, |sol| sol.stats().nodes),
            r.solution.as_ref().map_or("null".to_string(), |sol| format!(
                "{:.3}",
                sol.stats().wall.as_secs_f64() * 1e3
            )),
            r.admit_order,
            r.cache_hit,
            r.coalesced,
            r.expired,
            r.queue_wait.as_secs_f64() * 1e3,
        );
        s.push_str(if i + 1 < report.jobs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let st = &report.stats;
    let _ = writeln!(
        s,
        "  \"stats\": {{\n    \"submitted\": {}, \"solved\": {}, \"expired\": {}, \
         \"coalesced\": {}, \"errors\": {},",
        st.submitted, st.solved, st.expired, st.coalesced, st.errors
    );
    let _ = writeln!(
        s,
        "    \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"bytes\": {}, \"peak_bytes\": {}, \"hit_rate\": {:.3}}},",
        st.cache.hits,
        st.cache.misses,
        st.cache.evictions,
        st.cache.bytes,
        st.cache.peak_bytes,
        st.cache.hit_rate()
    );
    s.push_str("    \"engines\": {");
    for (i, e) in st.engines.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{}: {{\"solves\": {}, \"jobs\": {}, \"nodes\": {}}}",
            json_escape(&e.name),
            e.solves,
            e.jobs,
            e.nodes
        );
    }
    s.push_str("},\n");
    let _ = writeln!(
        s,
        "    \"mean_queue_wait_ms\": {:.3}, \"wall_ms\": {:.3}\n  }}",
        st.mean_queue_wait.as_secs_f64() * 1e3,
        st.wall.as_secs_f64() * 1e3
    );
    s.push_str("}\n");
    s
}
