//! # cyclecover-service
//!
//! The batching solve service over the
//! [`cyclecover_solver::api`] engine registry — the subsystem that turns
//! the per-instance solver into something that serves *traffic*. The
//! paper's covering designs provision survivable WDM rings, so the real
//! workload is many `(n, spec, budget)` questions arriving together;
//! this crate accepts a queue of wire-format requests
//! ([`cyclecover_io::json::SolveJob`]) and answers all of them with:
//!
//! * a **universe cache** ([`UniverseCache`]): `TileUniverse`
//!   construction deduplicated by `(n, max_len, max_gap)` behind a
//!   byte-budgeted LRU — the expensive, spec-independent work is done
//!   once per ring shape per residency;
//! * **deadline-aware scheduling** ([`SolveService`]): earliest-deadline-
//!   first admission, per-job limits, already-expired jobs rejected
//!   without burning a single search node;
//! * **request coalescing**: wire-identical jobs are solved once and the
//!   answer fanned back out to every waiter;
//! * a **cancellation-token tree**: one root token per batch, one child
//!   per kernel, so [`SolveService::cancel_all`] aborts the whole batch
//!   without disturbing anything else (and [`SolveService::shutdown`]
//!   drains it gracefully, reporting unstarted work as such);
//! * a **fault-tolerance layer**: every dispatch runs under
//!   `catch_unwind` (a panic is a terminal `failed` answer and the key is
//!   quarantined, never a dead worker), transient failures retry with
//!   deterministic seeded backoff, budget exhaustion walks the request's
//!   `fallback` engine ladder with an honest `Degraded` certificate, and
//!   a seeded [`FaultPlan`] injects all of the above deterministically
//!   for chaos tests (`docs/robustness.md` has the full model).
//!
//! The CLI front-end is `cyclecover serve --batch jobs.jsonl`; the wire
//! protocol is defined normatively in [`cyclecover_io::json`] and by
//! example in `docs/wire-format.md`.
//!
//! ```
//! use cyclecover_io::json::{request_from_json, SolveJob};
//! use cyclecover_service::{ServiceConfig, SolveService};
//!
//! let mut service = SolveService::new(ServiceConfig::default());
//! // Two identical jobs and a third sharing the ring shape: one
//! // universe build, one kernel run for the twins.
//! service.submit(SolveJob::new("a", 6)).unwrap();
//! service.submit(SolveJob::new("b", 6)).unwrap();
//! let from_wire = request_from_json(
//!     r#"{"format": "cyclecover-request", "version": 1, "n": 6,
//!         "objective": {"kind": "within_budget", "budget": 6}}"#,
//! )
//! .unwrap();
//! service.submit(from_wire).unwrap();
//!
//! let report = service.drain();
//! assert_eq!(report.stats.submitted, 3);
//! assert_eq!(report.stats.solved, 3);
//! assert_eq!(report.stats.coalesced, 1);         // "b" rode along with "a"
//! assert_eq!(report.stats.cache.misses, 1);      // one universe build…
//! assert!(report.stats.cache.hits >= 1);         // …then shared
//! assert_eq!(report.jobs[0].solution.as_ref().unwrap().size(), Some(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod certs;
mod daemon;
mod fault;
mod predict;
mod service;

pub use cache::{CacheStats, UniverseCache, UniverseKey};
pub use certs::CertCache;
pub use daemon::{
    daemon_stats_json, reject_json, Daemon, DaemonConfig, DaemonStats, FramedLine, Ingest,
    IngestAction, LineFramer,
};
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use predict::{CalibrationRow, CostModel, Prediction, SAFETY_FACTOR};
pub use service::{
    batch_summary_json, batch_summary_json_with_rejects, BatchReport, BatchStats, EngineTotal,
    JobReport, ServiceConfig, SolveService,
};
