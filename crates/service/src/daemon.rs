//! The always-on solve daemon: streaming JSONL serving over
//! [`SolveService`].
//!
//! ```text
//!             ┌───────────────────────── event-loop thread ──────────────┐
//!  clients ──▶│ accept → LineFramer → Ingest ──┬─ reject doc ──▶ outbox  │
//!             │     ▲ backpressure: reading    └─ admit ──▶ pending queue│
//!             │     │ pauses when a conn's     (bounded; overload reject │
//!             │     │ outbox is full            when full)               │
//!             └─────┼───────────────────────────────▲────────────────────┘
//!                   │ solution / reject docs        │ micro-batches
//!             ┌─────┴─────────────── dispatcher thread ──────────────────┐
//!             │ long-lived SolveService: EDF, coalescing, warm universe  │
//!             │ cache + quarantine across generations, cost-model audit  │
//!             └──────────────────────────────────────────────────────────┘
//! ```
//!
//! One TCP connection carries newline-delimited documents:
//! `cyclecover-request` and `cyclecover-control` in;
//! `cyclecover-solution` (with the streaming `id` field),
//! `cyclecover-reject`, and `cyclecover-daemon-stats` out — all single
//! lines. Framing, admission, and the stats document are specified in
//! `docs/wire-format.md`.
//!
//! **Backpressure** has two bounded queues. The *global* admission
//! queue (capacity [`DaemonConfig::queue_depth`]) refuses further jobs
//! with a wire-visible `overload` reject when full — the client learns
//! immediately and can resubmit. Each *connection's* response outbox
//! (same capacity) instead pauses reading that connection when full:
//! responses are never dropped, the peer's TCP window absorbs the
//! stall, and the `stalls` counter in the stats document records every
//! pause so CI can assert the mechanism engages.
//!
//! **Predictive admission** consults the committed calibration table
//! ([`CostModel`]) at ingest: a deadline the curves say cannot be met
//! (by ≥ [`SAFETY_FACTOR`]×) is refused with reason
//! `predicted_unmeetable` before it ever occupies a worker. The model
//! never rejects a job the table says is feasible — see
//! [`CostModel::unmeetable`] for the confidence rules.
//!
//! **Graceful drain**: a `{"op": "shutdown"}` control document closes
//! admission, cancels the service root token with
//! [`CancelReason::Shutdown`](cyclecover_solver::api::CancelReason) so
//! in-flight kernels stop within ~4096 nodes and report
//! `budget_exhausted`/`shutdown`, lets the dispatcher answer everything
//! still queued (unstarted groups are reported as such), flushes every
//! connection, answers the requester with a final
//! `cyclecover-daemon-stats` document, and returns. (Pure-std builds
//! cannot install a SIGTERM handler without `unsafe`; the control
//! document is the supported shutdown path and what
//! `cyclecover client --shutdown` sends.)

use crate::certs::CertCache;
use crate::predict::{CostModel, Prediction, SAFETY_FACTOR};
use crate::service::{ServiceConfig, SolveService};
use cyclecover_io::json::{
    quote as json_escape, request_from_json, solution_to_json_with_id, to_single_line, Json,
    SolveJob,
};
use mio::net::{TcpListener, TcpStream};
use mio::{Events, Interest, Poll, Token};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------------

/// One framed unit out of [`LineFramer::push`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramedLine {
    /// A complete line (without its newline; a trailing `\r` is
    /// stripped). Bytes are decoded lossily — a malformed UTF-8 line
    /// becomes a parse reject downstream, not a dead connection.
    Line(String),
    /// A complete line that exceeded the size bound. The line was
    /// discarded wholesale (`bytes` is its full length); framing
    /// resynchronizes at the next newline, so one hostile line costs
    /// one reject, not the connection.
    Oversized {
        /// Length of the discarded line, in bytes.
        bytes: usize,
    },
}

/// Incremental newline framing over arbitrary read chunks.
///
/// Feed it whatever the socket returns — partial lines, many documents
/// per read, split multi-byte sequences — and it yields each complete
/// line exactly once, in order, regardless of how the byte stream was
/// chunked (the framing proptests pin this). Lines longer than the
/// bound are dropped per-line with an [`FramedLine::Oversized`] marker.
#[derive(Debug)]
pub struct LineFramer {
    max_line: usize,
    buf: Vec<u8>,
    /// Inside an oversized line, discarding until the next newline.
    discarding: bool,
    dropped: usize,
}

impl LineFramer {
    /// A framer enforcing `max_line` bytes per line (newline excluded).
    pub fn new(max_line: usize) -> Self {
        LineFramer {
            max_line: max_line.max(1),
            buf: Vec::new(),
            discarding: false,
            dropped: 0,
        }
    }

    /// Consumes one read chunk; returns every line it completed.
    pub fn push(&mut self, chunk: &[u8]) -> Vec<FramedLine> {
        let mut out = Vec::new();
        let mut rest = chunk;
        while !rest.is_empty() {
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let (seg, tail) = rest.split_at(pos);
                    rest = &tail[1..];
                    if self.discarding {
                        out.push(FramedLine::Oversized {
                            bytes: self.dropped + seg.len(),
                        });
                        self.discarding = false;
                        self.dropped = 0;
                    } else {
                        self.buf.extend_from_slice(seg);
                        if self.buf.len() > self.max_line {
                            out.push(FramedLine::Oversized {
                                bytes: self.buf.len(),
                            });
                        } else {
                            let mut line = std::mem::take(&mut self.buf);
                            if line.last() == Some(&b'\r') {
                                line.pop();
                            }
                            out.push(FramedLine::Line(
                                String::from_utf8_lossy(&line).into_owned(),
                            ));
                        }
                        self.buf.clear();
                    }
                }
                None => {
                    if self.discarding {
                        self.dropped += rest.len();
                    } else {
                        self.buf.extend_from_slice(rest);
                        if self.buf.len() > self.max_line {
                            self.discarding = true;
                            self.dropped = self.buf.len();
                            self.buf.clear();
                        }
                    }
                    rest = &[];
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Ingest admission
// ---------------------------------------------------------------------------

/// What the admission layer decided about one framed line.
#[derive(Debug)]
pub enum IngestAction {
    /// Nothing on the wire: a blank line or a `#` comment.
    Ignore,
    /// Admit the job into the next dispatch generation, with the
    /// model's audit prediction when it has one.
    Submit(Box<SolveJob>, Option<Prediction>),
    /// Refuse the line with a wire-visible `cyclecover-reject`.
    Reject {
        /// The request's id, when one could be recovered.
        id: Option<String>,
        /// Machine-readable reason: `parse`, `overload`, or
        /// `predicted_unmeetable` from this layer (`oversized` and
        /// `admission` are produced by the framing and dispatch layers).
        reason: &'static str,
        /// Human-readable detail.
        detail: String,
        /// The prediction behind a `predicted_unmeetable` refusal.
        prediction: Option<Prediction>,
    },
    /// `cyclecover-control` `op: "shutdown"` — begin the graceful drain.
    Shutdown,
    /// `cyclecover-control` `op: "stats"` — answer with a
    /// `cyclecover-daemon-stats` document.
    Stats,
}

/// The pure admission state machine: parses one line and decides,
/// given the current global queue occupancy. Holds no I/O, so the
/// framing proptests can drive it directly.
#[derive(Debug, Default)]
pub struct Ingest {
    model: Option<CostModel>,
    queue_depth: usize,
}

impl Ingest {
    /// Admission with the given cost model (predictive refusal off when
    /// `None`) and global queue bound.
    pub fn new(model: Option<CostModel>, queue_depth: usize) -> Self {
        Ingest {
            model,
            queue_depth: queue_depth.max(1),
        }
    }

    /// Decides one framed line; `queued` is the global admission
    /// queue's current occupancy.
    pub fn admit(&self, line: &str, queued: usize) -> IngestAction {
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            return IngestAction::Ignore;
        }
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => {
                return IngestAction::Reject {
                    id: None,
                    reason: "parse",
                    detail: e,
                    prediction: None,
                }
            }
        };
        let id_hint = || doc.get("id").and_then(Json::as_str).map(str::to_string);
        if doc.get("format").and_then(Json::as_str) == Some("cyclecover-control") {
            match doc.get("version").and_then(Json::as_num) {
                None | Some(1.0) => {}
                Some(v) => {
                    return IngestAction::Reject {
                        id: id_hint(),
                        reason: "parse",
                        detail: format!("unsupported control version {v}"),
                        prediction: None,
                    }
                }
            }
            return match doc.get("op").and_then(Json::as_str) {
                Some("shutdown") => IngestAction::Shutdown,
                Some("stats") => IngestAction::Stats,
                other => IngestAction::Reject {
                    id: id_hint(),
                    reason: "parse",
                    detail: format!("unknown control op {other:?} (want shutdown|stats)"),
                    prediction: None,
                },
            };
        }
        let job = match request_from_json(text) {
            Ok(job) => job,
            Err(e) => {
                return IngestAction::Reject {
                    id: id_hint(),
                    reason: "parse",
                    detail: e,
                    prediction: None,
                }
            }
        };
        if queued >= self.queue_depth {
            return IngestAction::Reject {
                id: Some(job.id).filter(|s| !s.is_empty()),
                reason: "overload",
                detail: format!("admission queue full ({queued} queued)"),
                prediction: None,
            };
        }
        if let (Some(model), Some(deadline_ms)) = (&self.model, job.deadline_ms) {
            if let Some(prediction) = model.unmeetable(&job, deadline_ms) {
                return IngestAction::Reject {
                    id: Some(job.id).filter(|s| !s.is_empty()),
                    reason: "predicted_unmeetable",
                    detail: format!(
                        "predicted {:.1} ms >= {SAFETY_FACTOR}x deadline {deadline_ms} ms",
                        prediction.wall_ms
                    ),
                    prediction: Some(prediction),
                };
            }
        }
        let prediction = self.model.as_ref().and_then(|m| m.predict(&job));
        IngestAction::Submit(Box::new(job), prediction)
    }
}

/// Serializes one `cyclecover-reject` v1 document (single line, no
/// trailing newline). The `predicted_*` fields are present exactly when
/// a cost-model prediction backed the refusal.
pub fn reject_json(
    id: Option<&str>,
    reason: &str,
    detail: &str,
    prediction: Option<Prediction>,
) -> String {
    let mut s = format!(
        "{{\"format\": \"cyclecover-reject\", \"version\": 1, \"id\": {}, \"reason\": {}, \"detail\": {}",
        id.map_or("null".to_string(), json_escape),
        json_escape(reason),
        json_escape(detail),
    );
    if let Some(p) = prediction {
        use std::fmt::Write as _;
        let _ = write!(
            s,
            ", \"predicted_nodes\": {}, \"predicted_wall_ms\": {:.3}",
            p.nodes, p.wall_ms
        );
    }
    s.push('}');
    s
}

// ---------------------------------------------------------------------------
// Daemon stats
// ---------------------------------------------------------------------------

/// Cumulative daemon counters — the payload of the
/// `cyclecover-daemon-stats` v1 document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DaemonStats {
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections refused at accept (connection limit).
    pub connections_refused: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections closed (by either side).
    pub connections_closed: u64,
    /// Well-formed jobs admitted into the pending queue.
    pub jobs_received: u64,
    /// Terminal per-job documents emitted from dispatch (solutions,
    /// including expired/unstarted verdicts).
    pub jobs_answered: u64,
    /// Jobs reported unstarted by a graceful drain.
    pub unstarted: u64,
    /// Lines refused: malformed JSON / unknown document.
    pub rejected_parse: u64,
    /// Lines refused: over the per-line size bound.
    pub rejected_oversized: u64,
    /// Jobs refused: global admission queue full.
    pub rejected_overload: u64,
    /// Jobs refused at dispatch submit (duplicate id in a generation,
    /// unknown engine, unsupported engine/problem pair) or after a
    /// shutdown closed admission.
    pub rejected_admission: u64,
    /// Jobs refused by the cost model: predicted-unmeetable deadline.
    pub rejected_predicted: u64,
    /// Backpressure pauses: times a connection's reading was stopped
    /// because its response outbox was full.
    pub stalls: u64,
    /// Dispatch generations (micro-batches) drained.
    pub generations: u64,
    /// Universe keys looked up by generations after the first.
    pub warm_universe_lookups: u64,
    /// Of those, keys already resident from an earlier generation.
    pub warm_universe_hits: u64,
    /// Answered jobs that carried a model prediction.
    pub predicted_jobs: u64,
    /// Total predicted nodes over those jobs.
    pub predicted_nodes: u64,
    /// Total actual nodes over those jobs (compare with
    /// `predicted_nodes` to audit the calibration table).
    pub actual_nodes: u64,
    /// Refutation-store hits summed over every generation's kernel runs.
    pub memo_hits: u64,
    /// The subset of `memo_hits` landing on refutations another searcher
    /// recorded (cross-probe, cross-worker, or — with `--shared-memo` —
    /// cross-request).
    pub shared_hits: u64,
    /// Jobs answered from the persisted certificate cache with zero
    /// kernel nodes.
    pub cert_cache_hits: u64,
    /// Certificates currently held by the cache (0 without
    /// `--cert-cache`).
    pub cert_cache_entries: u64,
    /// Daemon uptime at the snapshot.
    pub wall: Duration,
}

impl DaemonStats {
    /// Parses a `cyclecover-daemon-stats` v1 document (the inverse of
    /// [`daemon_stats_json`]; the wire-format doc examples round-trip
    /// through this).
    pub fn from_json(text: &str) -> Result<DaemonStats, String> {
        let doc = Json::parse(text)?;
        match doc.get("format").and_then(Json::as_str) {
            Some("cyclecover-daemon-stats") => {}
            other => return Err(format!("bad stats format {other:?}")),
        }
        match doc.get("version").and_then(Json::as_num) {
            Some(1.0) => {}
            other => return Err(format!("unsupported stats version {other:?}")),
        }
        let num = |path: &[&str]| -> Result<u64, String> {
            let mut node = &doc;
            for key in path {
                node = node
                    .get(key)
                    .ok_or_else(|| format!("missing {}", path.join(".")))?;
            }
            node.as_num()
                .map(|v| v as u64)
                .ok_or_else(|| format!("{} is not a number", path.join(".")))
        };
        Ok(DaemonStats {
            connections_accepted: num(&["connections", "accepted"])?,
            connections_refused: num(&["connections", "refused"])?,
            connections_open: num(&["connections", "open"])?,
            connections_closed: num(&["connections", "closed"])?,
            jobs_received: num(&["jobs", "received"])?,
            jobs_answered: num(&["jobs", "answered"])?,
            unstarted: num(&["jobs", "unstarted"])?,
            rejected_parse: num(&["rejected", "parse"])?,
            rejected_oversized: num(&["rejected", "oversized"])?,
            rejected_overload: num(&["rejected", "overload"])?,
            rejected_admission: num(&["rejected", "admission"])?,
            rejected_predicted: num(&["rejected", "predicted_unmeetable"])?,
            stalls: num(&["backpressure", "stalls"])?,
            generations: num(&["generations"])?,
            warm_universe_lookups: num(&["warm_universe", "lookups"])?,
            warm_universe_hits: num(&["warm_universe", "hits"])?,
            predicted_jobs: num(&["predicted", "jobs"])?,
            predicted_nodes: num(&["predicted", "nodes"])?,
            actual_nodes: num(&["predicted", "actual_nodes"])?,
            memo_hits: num(&["memo", "hits"])?,
            shared_hits: num(&["memo", "shared_hits"])?,
            cert_cache_hits: num(&["memo", "cert_cache_hits"])?,
            cert_cache_entries: num(&["memo", "cert_cache_entries"])?,
            wall: Duration::from_secs_f64(
                doc.get("wall_ms")
                    .and_then(Json::as_num)
                    .ok_or("missing wall_ms")?
                    / 1e3,
            ),
        })
    }
}

/// Serializes the `cyclecover-daemon-stats` v1 document (single line,
/// no trailing newline).
pub fn daemon_stats_json(stats: &DaemonStats) -> String {
    format!(
        "{{\"format\": \"cyclecover-daemon-stats\", \"version\": 1, \
         \"connections\": {{\"accepted\": {}, \"refused\": {}, \"open\": {}, \"closed\": {}}}, \
         \"jobs\": {{\"received\": {}, \"answered\": {}, \"unstarted\": {}}}, \
         \"rejected\": {{\"parse\": {}, \"oversized\": {}, \"overload\": {}, \
         \"admission\": {}, \"predicted_unmeetable\": {}}}, \
         \"backpressure\": {{\"stalls\": {}}}, \
         \"generations\": {}, \
         \"warm_universe\": {{\"lookups\": {}, \"hits\": {}}}, \
         \"predicted\": {{\"jobs\": {}, \"nodes\": {}, \"actual_nodes\": {}}}, \
         \"memo\": {{\"hits\": {}, \"shared_hits\": {}, \"cert_cache_hits\": {}, \
         \"cert_cache_entries\": {}}}, \
         \"wall_ms\": {:.3}}}",
        stats.connections_accepted,
        stats.connections_refused,
        stats.connections_open,
        stats.connections_closed,
        stats.jobs_received,
        stats.jobs_answered,
        stats.unstarted,
        stats.rejected_parse,
        stats.rejected_oversized,
        stats.rejected_overload,
        stats.rejected_admission,
        stats.rejected_predicted,
        stats.stalls,
        stats.generations,
        stats.warm_universe_lookups,
        stats.warm_universe_hits,
        stats.predicted_jobs,
        stats.predicted_nodes,
        stats.actual_nodes,
        stats.memo_hits,
        stats.shared_hits,
        stats.cert_cache_hits,
        stats.cert_cache_entries,
        stats.wall.as_secs_f64() * 1e3,
    )
}

// ---------------------------------------------------------------------------
// The daemon proper
// ---------------------------------------------------------------------------

/// Daemon tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Worker threads per dispatch generation (forwarded to
    /// [`ServiceConfig::workers`]).
    pub workers: usize,
    /// Universe-cache byte budget (forwarded to
    /// [`ServiceConfig::cache_bytes`]); the cache lives as long as the
    /// daemon, so later generations start warm.
    pub cache_bytes: usize,
    /// Connection limit; further peers are answered with an `overload`
    /// reject and closed.
    pub max_conns: usize,
    /// Capacity of the global admission queue *and* of each
    /// connection's response outbox (the two backpressure bounds).
    pub queue_depth: usize,
    /// Per-line byte bound; longer lines are rejected per-line.
    pub max_line_bytes: usize,
    /// Event-loop tick and dispatcher micro-batch gather window.
    pub tick: Duration,
}

impl Default for DaemonConfig {
    /// One worker, 64 MiB cache, 64 connections, depth-64 queues, 1 MiB
    /// lines, 1 ms tick.
    fn default() -> Self {
        DaemonConfig {
            workers: 1,
            cache_bytes: 64 << 20,
            max_conns: 64,
            queue_depth: 64,
            max_line_bytes: 1 << 20,
            tick: Duration::from_millis(1),
        }
    }
}

/// Shared state between the event loop and the dispatcher.
#[derive(Default)]
struct SharedState {
    /// Global admission queue: `(connection id, job)`.
    pending: VecDeque<(u64, SolveJob)>,
    /// Finished documents awaiting routing: `(connection id, line)`.
    responses: Vec<(u64, String)>,
    draining: bool,
    dispatcher_done: bool,
    stats: DaemonStats,
}

type Shared = Arc<(Mutex<SharedState>, Condvar)>;

fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, SharedState> {
    shared.0.lock().expect("daemon state poisoned")
}

/// One live connection's event-loop state.
struct Conn {
    id: u64,
    stream: TcpStream,
    framer: LineFramer,
    /// Framed lines read but not yet admitted (left over when
    /// backpressure paused processing mid-burst).
    lines: VecDeque<FramedLine>,
    /// Response documents not yet handed to the socket.
    outbox: VecDeque<String>,
    /// Partially-written current line.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Jobs admitted from this connection whose terminal document has
    /// not been routed back yet. An EOF connection (a client that
    /// half-closed after streaming its jobs) is kept alive until this
    /// reaches zero — closing the write side must not drop answers.
    outstanding: u64,
    paused: bool,
    eof: bool,
    dead: bool,
}

impl Conn {
    /// Pushes buffered output to the socket until it would block.
    fn flush(&mut self) {
        loop {
            if self.wpos == self.wbuf.len() {
                match self.outbox.pop_front() {
                    Some(line) => {
                        self.wbuf = line.into_bytes();
                        self.wbuf.push(b'\n');
                        self.wpos = 0;
                    }
                    None => return,
                }
            }
            match (&self.stream).write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(k) => self.wpos += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    fn flushed(&self) -> bool {
        self.outbox.is_empty() && self.wpos == self.wbuf.len()
    }
}

/// The always-on solve daemon. [`Daemon::bind`], then [`Daemon::run`]
/// (which blocks until a `shutdown` control document completes the
/// graceful drain) — the module docs describe the full lifecycle.
pub struct Daemon {
    config: DaemonConfig,
    listener: TcpListener,
    model: Option<CostModel>,
    shared_memo: bool,
    cert_cache: Option<CertCache>,
    cert_save_path: Option<PathBuf>,
}

impl Daemon {
    /// Binds the listening socket (predictive admission on, using the
    /// committed calibration table).
    pub fn bind(addr: SocketAddr, config: DaemonConfig) -> io::Result<Daemon> {
        Ok(Daemon {
            config,
            listener: TcpListener::bind(addr)?,
            model: Some(CostModel::builtin().clone()),
            shared_memo: false,
            cert_cache: None,
            cert_save_path: None,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Replaces the cost model (`None` disables predictive admission).
    pub fn set_cost_model(&mut self, model: Option<CostModel>) {
        self.model = model;
    }

    /// Turns on cross-request refutation-store sharing
    /// ([`ServiceConfig::shared_memo`]) for the daemon's long-lived
    /// service. Off by default: sharing improves node counts, which
    /// breaks exact-reproduction gates on the calibrated cold baseline.
    pub fn set_shared_memo(&mut self, on: bool) {
        self.shared_memo = on;
    }

    /// Installs a certificate cache ([`CertCache`]) for the daemon's
    /// service; with `save_path` set, the grown cache is written back
    /// (whole-file, best-effort) after every dispatch generation, so
    /// certificates survive the process.
    pub fn set_cert_cache(&mut self, cache: CertCache, save_path: Option<PathBuf>) {
        self.cert_cache = Some(cache);
        self.cert_save_path = save_path;
    }

    /// Serves until a graceful drain completes; returns the final
    /// counters (the same snapshot the drain's stats document carries).
    pub fn run(mut self) -> DaemonStats {
        let started = Instant::now();
        let cfg = self.config;
        let shared: Shared = Arc::new((Mutex::new(SharedState::default()), Condvar::new()));
        let ingest = Ingest::new(self.model.clone(), cfg.queue_depth);

        // The service outlives every connection: its universe cache and
        // quarantine are the cross-generation warm state. Built here so
        // the event loop can hold a cancel handle for the drain.
        let mut service = SolveService::new(ServiceConfig {
            workers: cfg.workers,
            cache_bytes: cfg.cache_bytes,
            shared_memo: self.shared_memo,
            ..ServiceConfig::default()
        });
        if let Some(model) = self.model.clone() {
            service.set_cost_model(model);
        }
        if let Some(cache) = self.cert_cache.take() {
            service.set_cert_cache(cache);
        }
        let cert_save = self.cert_save_path.take();
        let cancel = service.cancel_token().clone();

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatcher_loop(service, &shared, cfg, cert_save))
        };

        let mut poll = Poll::new().expect("poll creation");
        let mut events = Events::with_capacity(cfg.max_conns + 8);
        poll.registry()
            .register(&mut self.listener, Token(0), Interest::READABLE)
            .expect("listener registration");

        let mut conns: HashMap<usize, Conn> = HashMap::new();
        let mut next_conn_id: u64 = 0;
        let mut next_slot: usize = 1;
        let mut draining = false;
        let mut drain_requester: Option<u64> = None;
        let mut final_stats_sent = false;
        let mut drain_flush_started: Option<Instant> = None;

        loop {
            poll.poll(&mut events, Some(cfg.tick)).expect("poll");

            // Accept — the shim reports the listener ready every tick;
            // WouldBlock settles the truth.
            if !draining {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            if conns.len() >= cfg.max_conns {
                                // Refuse loudly: one reject line, then
                                // close. Best-effort — the peer may not
                                // read it.
                                let mut s = stream;
                                let doc = reject_json(
                                    None,
                                    "overload",
                                    &format!("connection limit {} reached", cfg.max_conns),
                                    None,
                                );
                                let _ = s.write(format!("{doc}\n").as_bytes());
                                lock(&shared).stats.connections_refused += 1;
                                continue;
                            }
                            let slot = next_slot;
                            next_slot += 1;
                            let mut conn = Conn {
                                id: next_conn_id,
                                stream,
                                framer: LineFramer::new(cfg.max_line_bytes),
                                lines: VecDeque::new(),
                                outbox: VecDeque::new(),
                                wbuf: Vec::new(),
                                wpos: 0,
                                outstanding: 0,
                                paused: false,
                                eof: false,
                                dead: false,
                            };
                            next_conn_id += 1;
                            poll.registry()
                                .register(
                                    &mut conn.stream,
                                    Token(slot),
                                    Interest::READABLE.add(Interest::WRITABLE),
                                )
                                .expect("stream registration");
                            conns.insert(slot, conn);
                            let mut sh = lock(&shared);
                            sh.stats.connections_accepted += 1;
                            sh.stats.connections_open += 1;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }

            // Route finished documents to their connections' outboxes.
            let (routed, dispatcher_done) = {
                let mut sh = lock(&shared);
                (std::mem::take(&mut sh.responses), sh.dispatcher_done)
            };
            if !routed.is_empty() {
                let by_id: HashMap<u64, usize> =
                    conns.iter().map(|(&slot, c)| (c.id, slot)).collect();
                for (conn_id, doc) in routed {
                    // A vanished connection drops its responses — the
                    // peer that would have read them is gone.
                    if let Some(conn) = by_id.get(&conn_id).and_then(|s| conns.get_mut(s)) {
                        conn.outbox.push_back(doc);
                        conn.outstanding = conn.outstanding.saturating_sub(1);
                    }
                }
            }

            // Per-connection I/O.
            for conn in conns.values_mut() {
                conn.flush();
                if conn.dead {
                    continue;
                }
                // Backpressure: resume only when the outbox has drained
                // below the bound; count each engagement.
                if conn.outbox.len() >= cfg.queue_depth {
                    if !conn.paused {
                        conn.paused = true;
                        lock(&shared).stats.stalls += 1;
                    }
                } else {
                    conn.paused = false;
                }
                if conn.paused {
                    continue;
                }
                loop {
                    let mut stalled = false;
                    while let Some(framed) = conn.lines.pop_front() {
                        handle_line(framed, conn, &ingest, &shared, cfg.queue_depth, draining, started);
                        if !draining && lock(&shared).draining {
                            // A shutdown control arrived on this
                            // connection: close admission globally and
                            // cancel the in-flight batch gracefully.
                            draining = true;
                            drain_requester = Some(conn.id);
                            cancel.cancel_with(cyclecover_solver::api::CancelReason::Shutdown);
                            shared.1.notify_all();
                        }
                        if conn.outbox.len() >= cfg.queue_depth {
                            conn.paused = true;
                            lock(&shared).stats.stalls += 1;
                            stalled = true;
                            break;
                        }
                    }
                    if stalled || conn.eof || draining {
                        break;
                    }
                    let mut chunk = [0u8; 4096];
                    match (&conn.stream).read(&mut chunk) {
                        Ok(0) => {
                            conn.eof = true;
                        }
                        Ok(k) => {
                            conn.lines.extend(conn.framer.push(&chunk[..k]));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
            }

            // Reap connections: dead, or EOF with everything answered.
            let gone: Vec<usize> = conns
                .iter()
                .filter(|(_, c)| {
                    c.dead
                        || (c.eof && c.flushed() && c.lines.is_empty() && c.outstanding == 0)
                })
                .map(|(&slot, _)| slot)
                .collect();
            for slot in gone {
                if let Some(mut conn) = conns.remove(&slot) {
                    let _ = poll.registry().deregister(&mut conn.stream);
                    let mut sh = lock(&shared);
                    sh.stats.connections_open = sh.stats.connections_open.saturating_sub(1);
                    sh.stats.connections_closed += 1;
                }
            }

            // Graceful-drain epilogue: dispatcher finished, responses
            // routed — answer the requester with the final stats
            // document, flush everyone, and stop.
            if draining && dispatcher_done && lock(&shared).responses.is_empty() {
                if !final_stats_sent {
                    let doc = {
                        let mut sh = lock(&shared);
                        sh.stats.wall = started.elapsed();
                        daemon_stats_json(&sh.stats)
                    };
                    if let Some(req) = drain_requester {
                        if let Some(conn) = conns.values_mut().find(|c| c.id == req) {
                            conn.outbox.push_back(doc);
                        }
                    }
                    final_stats_sent = true;
                }
                for conn in conns.values_mut() {
                    conn.flush();
                }
                // A peer that stops reading must not pin the drain
                // forever: give stragglers a grace window, then leave.
                let since = *drain_flush_started.get_or_insert_with(Instant::now);
                if conns.values().all(|c| c.dead || c.flushed())
                    || since.elapsed() > Duration::from_secs(5)
                {
                    break;
                }
            }
        }

        let _ = dispatcher.join();
        let mut sh = lock(&shared);
        sh.stats.connections_closed += sh.stats.connections_open;
        sh.stats.connections_open = 0;
        sh.stats.wall = started.elapsed();
        sh.stats.clone()
    }
}

/// Event-loop handling of one framed line: admission, control, and the
/// reject paths. Pushes at most one response document.
fn handle_line(
    framed: FramedLine,
    conn: &mut Conn,
    ingest: &Ingest,
    shared: &Shared,
    queue_depth: usize,
    draining: bool,
    started: Instant,
) {
    let line = match framed {
        FramedLine::Oversized { bytes } => {
            lock(shared).stats.rejected_oversized += 1;
            conn.outbox.push_back(reject_json(
                None,
                "oversized",
                &format!("line of {bytes} bytes exceeds the per-line bound"),
                None,
            ));
            return;
        }
        FramedLine::Line(line) => line,
    };
    let queued = lock(shared).pending.len();
    match ingest.admit(&line, queued) {
        IngestAction::Ignore => {}
        IngestAction::Submit(job, _prediction) => {
            if draining {
                lock(shared).stats.rejected_admission += 1;
                conn.outbox.push_back(reject_json(
                    Some(job.id.as_str()).filter(|s| !s.is_empty()),
                    "admission",
                    "daemon is draining",
                    None,
                ));
                return;
            }
            let mut sh = lock(shared);
            if sh.pending.len() >= queue_depth {
                sh.stats.rejected_overload += 1;
                drop(sh);
                conn.outbox.push_back(reject_json(
                    Some(job.id.as_str()).filter(|s| !s.is_empty()),
                    "overload",
                    "admission queue full",
                    None,
                ));
                return;
            }
            sh.stats.jobs_received += 1;
            sh.pending.push_back((conn.id, *job));
            drop(sh);
            conn.outstanding += 1;
            shared.1.notify_all();
        }
        IngestAction::Reject {
            id,
            reason,
            detail,
            prediction,
        } => {
            {
                let mut sh = lock(shared);
                match reason {
                    "overload" => sh.stats.rejected_overload += 1,
                    "predicted_unmeetable" => sh.stats.rejected_predicted += 1,
                    _ => sh.stats.rejected_parse += 1,
                }
            }
            conn.outbox
                .push_back(reject_json(id.as_deref(), reason, &detail, prediction));
        }
        IngestAction::Shutdown => {
            lock(shared).draining = true;
            // The event loop notices `draining` right after this line
            // and cancels the service root; nothing else to do here.
        }
        IngestAction::Stats => {
            let doc = {
                let mut sh = lock(shared);
                sh.stats.wall = started.elapsed();
                daemon_stats_json(&sh.stats)
            };
            conn.outbox.push_back(doc);
        }
    }
}

/// The dispatcher: owns the long-lived [`SolveService`], drains the
/// admission queue in micro-batch generations, and routes one terminal
/// document per job back to its connection.
fn dispatcher_loop(
    mut service: SolveService,
    shared: &Shared,
    cfg: DaemonConfig,
    cert_save: Option<PathBuf>,
) {
    let mut generation: u64 = 0;
    loop {
        // Gather a generation: wait for work, then one tick more so a
        // burst lands in a single batch (coalescing and universe
        // sharing work across the whole generation).
        let batch: Vec<(u64, SolveJob)> = {
            let (mutex, cv) = &**shared;
            let mut sh = mutex.lock().expect("daemon state poisoned");
            loop {
                if !sh.pending.is_empty() {
                    break;
                }
                if sh.draining {
                    sh.dispatcher_done = true;
                    cv.notify_all();
                    return;
                }
                sh = cv
                    .wait_timeout(sh, cfg.tick.max(Duration::from_millis(1)))
                    .expect("daemon state poisoned")
                    .0;
            }
            drop(sh);
            std::thread::sleep(cfg.tick);
            let mut sh = mutex.lock().expect("daemon state poisoned");
            sh.pending.drain(..).collect()
        };

        // Warm-start accounting, before the drain touches the cache:
        // generations after the first count how many of their distinct
        // ring shapes are already resident.
        let mut warm_lookups = 0u64;
        let mut warm_hits = 0u64;
        if generation > 0 {
            let mut seen = HashSet::new();
            for (_, job) in &batch {
                if seen.insert(job.universe_key()) {
                    warm_lookups += 1;
                    if service.universe_resident(job.universe_key()) {
                        warm_hits += 1;
                    }
                }
            }
        }

        let mut route: HashMap<String, u64> = HashMap::with_capacity(batch.len());
        let mut out: Vec<(u64, String)> = Vec::new();
        let mut admission_rejects = 0u64;
        for (conn_id, job) in batch {
            let id_hint = Some(job.id.clone()).filter(|s| !s.is_empty());
            match service.submit(job) {
                Ok(id) => {
                    route.insert(id, conn_id);
                }
                Err(e) => {
                    admission_rejects += 1;
                    out.push((
                        conn_id,
                        reject_json(id_hint.as_deref(), "admission", &e, None),
                    ));
                }
            }
        }
        let report = service.drain();
        generation += 1;

        let mut answered = 0u64;
        let mut unstarted = 0u64;
        let mut predicted_jobs = 0u64;
        let mut predicted_nodes = 0u64;
        let mut actual_nodes = 0u64;
        for r in &report.jobs {
            let Some(&conn_id) = route.get(&r.id) else {
                continue;
            };
            let doc = match (&r.error, &r.solution) {
                (Some(e), _) => {
                    admission_rejects += 1;
                    reject_json(Some(&r.id), "admission", e, None)
                }
                (None, Some(sol)) => {
                    answered += 1;
                    if r.unstarted {
                        unstarted += 1;
                    }
                    if let (Some(p), false) = (r.predicted, r.coalesced) {
                        predicted_jobs += 1;
                        predicted_nodes += p.nodes;
                        actual_nodes += sol.stats().nodes;
                    }
                    to_single_line(&solution_to_json_with_id(
                        sol,
                        &r.id,
                        r.predicted.map(|p| p.nodes),
                    ))
                }
                (None, None) => {
                    admission_rejects += 1;
                    reject_json(Some(&r.id), "admission", "no solution produced", None)
                }
            };
            out.push((conn_id, doc));
        }

        // Persist the grown certificate cache before publishing the
        // generation (whole-file, best-effort, outside the shared lock):
        // a crash after this point loses no certificates.
        if cert_save.is_some() {
            if let (Some(path), Some(doc)) = (cert_save.as_ref(), service.cert_cache_json()) {
                let _ = std::fs::write(path, doc);
            }
        }

        let (mutex, cv) = &**shared;
        let mut sh = mutex.lock().expect("daemon state poisoned");
        sh.responses.extend(out);
        sh.stats.generations += 1;
        sh.stats.jobs_answered += answered;
        sh.stats.unstarted += unstarted;
        sh.stats.rejected_admission += admission_rejects;
        sh.stats.warm_universe_lookups += warm_lookups;
        sh.stats.warm_universe_hits += warm_hits;
        sh.stats.predicted_jobs += predicted_jobs;
        sh.stats.predicted_nodes += predicted_nodes;
        sh.stats.actual_nodes += actual_nodes;
        sh.stats.memo_hits += report.stats.memo_hits;
        sh.stats.shared_hits += report.stats.shared_hits;
        sh.stats.cert_cache_hits += report.stats.cert_cache_hits as u64;
        if let Some((entries, _, _)) = service.cert_cache_stats() {
            sh.stats.cert_cache_entries = entries as u64;
        }
        cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framer_reassembles_split_lines() {
        let mut f = LineFramer::new(64);
        let mut got = Vec::new();
        for chunk in [&b"{\"a\": 1"[..], &b"}\n{\"b\""[..], &b": 2}\n"[..]] {
            got.extend(f.push(chunk));
        }
        assert_eq!(
            got,
            vec![
                FramedLine::Line("{\"a\": 1}".into()),
                FramedLine::Line("{\"b\": 2}".into()),
            ]
        );
    }

    #[test]
    fn framer_drops_oversized_lines_and_resyncs() {
        let mut f = LineFramer::new(8);
        let long = vec![b'x'; 30];
        let mut got = f.push(&long);
        got.extend(f.push(b"tail\nok\n"));
        assert_eq!(
            got,
            vec![
                FramedLine::Oversized { bytes: 34 },
                FramedLine::Line("ok".into())
            ]
        );
    }

    #[test]
    fn ingest_classifies_every_line_kind() {
        let ingest = Ingest::new(None, 2);
        assert!(matches!(ingest.admit("", 0), IngestAction::Ignore));
        assert!(matches!(ingest.admit("# comment", 0), IngestAction::Ignore));
        assert!(matches!(
            ingest.admit("{not json", 0),
            IngestAction::Reject { reason: "parse", .. }
        ));
        assert!(matches!(
            ingest.admit(
                r#"{"format": "cyclecover-control", "version": 1, "op": "shutdown"}"#,
                0
            ),
            IngestAction::Shutdown
        ));
        assert!(matches!(
            ingest.admit(r#"{"format": "cyclecover-control", "op": "stats"}"#, 0),
            IngestAction::Stats
        ));
        let req = r#"{"format": "cyclecover-request", "version": 1, "id": "a", "n": 6}"#;
        assert!(matches!(ingest.admit(req, 0), IngestAction::Submit(..)));
        assert!(matches!(
            ingest.admit(req, 2),
            IngestAction::Reject {
                reason: "overload",
                ..
            }
        ));
    }

    #[test]
    fn ingest_predictive_refusal_carries_the_prediction() {
        let model = CostModel::new(vec![crate::predict::CalibrationRow {
            n: 10,
            objective: "find_optimal".into(),
            symmetry: "root".into(),
            memo: true,
            nodes: 250_000,
            wall_ms: 80.0,
        }]);
        let ingest = Ingest::new(Some(model), 8);
        let doomed = r#"{"format": "cyclecover-request", "version": 1, "id": "d", "n": 10, "deadline_ms": 1}"#;
        match ingest.admit(doomed, 0) {
            IngestAction::Reject {
                reason: "predicted_unmeetable",
                prediction: Some(p),
                id,
                ..
            } => {
                assert_eq!(p.nodes, 250_000);
                assert_eq!(id.as_deref(), Some("d"));
            }
            other => panic!("expected predictive reject, got {other:?}"),
        }
        // The same job with a feasible deadline is admitted.
        let fine = r#"{"format": "cyclecover-request", "version": 1, "id": "d", "n": 10, "deadline_ms": 5000}"#;
        assert!(matches!(ingest.admit(fine, 0), IngestAction::Submit(..)));
    }

    #[test]
    fn stats_document_round_trips() {
        let stats = DaemonStats {
            connections_accepted: 3,
            connections_refused: 1,
            connections_open: 2,
            connections_closed: 1,
            jobs_received: 40,
            jobs_answered: 38,
            unstarted: 2,
            rejected_parse: 1,
            rejected_oversized: 1,
            rejected_overload: 2,
            rejected_admission: 1,
            rejected_predicted: 1,
            stalls: 4,
            generations: 5,
            warm_universe_lookups: 6,
            warm_universe_hits: 5,
            predicted_jobs: 30,
            predicted_nodes: 123_456,
            actual_nodes: 120_000,
            memo_hits: 2_000,
            shared_hits: 150,
            cert_cache_hits: 7,
            cert_cache_entries: 3,
            wall: Duration::from_millis(1500),
        };
        let doc = daemon_stats_json(&stats);
        assert!(!doc.contains('\n'));
        let back = DaemonStats::from_json(&doc).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn reject_document_shape() {
        let doc = reject_json(Some("j1"), "overload", "queue full", None);
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("format").and_then(Json::as_str),
            Some("cyclecover-reject")
        );
        assert_eq!(
            parsed.get("reason").and_then(Json::as_str),
            Some("overload")
        );
        let predicted = reject_json(
            None,
            "predicted_unmeetable",
            "too slow",
            Some(Prediction {
                nodes: 99,
                wall_ms: 12.5,
                exact: true,
            }),
        );
        let parsed = Json::parse(&predicted).unwrap();
        assert_eq!(
            parsed.get("predicted_nodes").and_then(Json::as_num),
            Some(99.0)
        );
    }
}
