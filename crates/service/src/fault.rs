//! Deterministic fault injection for the solve service.
//!
//! A [`FaultPlan`] is a seeded, declarative list of faults to fire at
//! specific points of a batch: *panic on the Nth engine dispatch*,
//! *force this job's deadline to zero*, *stall the worker*, *fail the
//! Nth universe construction*. The service threads the plan through a
//! [`FaultInjector`] that every dispatch consults — compiled in always,
//! a guaranteed no-op with the empty plan — so CI chaos tests exercise
//! the exact production code paths, deterministically.
//!
//! # Wire format — `"format": "cyclecover-fault-plan"` (version 1)
//!
//! ```json
//! {"format": "cyclecover-fault-plan", "version": 1, "seed": 42,
//!  "faults": [
//!    {"on_solve": 3, "kind": "panic"},
//!    {"job": "poison", "kind": "panic"},
//!    {"on_solve": 7, "kind": "deadline"},
//!    {"on_solve": 9, "kind": "stall", "ms": 5},
//!    {"on_build": 1, "kind": "build_fail"}
//!  ]}
//! ```
//!
//! | field | meaning |
//! |-------|---------|
//! | `seed` | seeds the service's retry-backoff jitter for the run (optional; default 0) |
//! | `faults` | array of fault objects, each one trigger + one kind |
//!
//! Triggers (exactly one per fault):
//!
//! * `"on_solve": N` — fires on the Nth engine dispatch of the service's
//!   lifetime (1-based, counted across retries, ladder rungs, and
//!   drains). Fires once.
//! * `"job": "id"` — fires on *every* dispatch whose group primary has
//!   this job id: a poison instance, for exercising retry exhaustion and
//!   quarantine.
//! * `"on_build": N` — fires on the Nth universe-cache miss (1-based).
//!   Fires once.
//!
//! Kinds:
//!
//! * `"panic"` — the dispatch panics (caught at the service's isolation
//!   boundary).
//! * `"deadline"` — the dispatch runs with a zero deadline, so the
//!   engine genuinely returns `budget_exhausted`/`deadline` (the job's
//!   real deadline keeps its slack — the retry path recovers).
//! * `"stall", "ms": M` — the worker sleeps `M` ms before solving
//!   (deadline pressure without touching the request).
//! * `"build_fail"` — the universe construction "fails": the group is
//!   reported `failed`/`internal` without a kernel run.
//!
//! Counters are 1-based and global per service instance, so a plan is
//! deterministic whenever the dispatch order is (one worker, or
//! `job`-triggered faults only).

use cyclecover_io::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// What an injected fault does to the dispatch it fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the engine dispatch.
    Panic,
    /// Run the dispatch with a zero deadline (forced exhaustion).
    Deadline,
    /// Sleep this many milliseconds before solving.
    Stall(u64),
    /// Fail the universe construction for the group.
    BuildFail,
}

/// When a fault fires.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Trigger {
    /// The Nth engine dispatch (1-based, global; fires once).
    OnSolve(u64),
    /// Every dispatch of the group whose primary job has this id.
    Job(String),
    /// The Nth universe construction (1-based, global; fires once).
    OnBuild(u64),
}

/// One fault: a trigger and what happens when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    trigger: Trigger,
    kind: FaultKind,
}

/// A seeded, declarative fault schedule (the module docs at the top of
/// `fault.rs` define the wire format).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seeds the service's retry-backoff jitter while this plan is
    /// installed.
    pub seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, costs nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can ever fire.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Parses a `cyclecover-fault-plan` document.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let doc = Json::parse(text)?;
        match doc.get("format").and_then(Json::as_str) {
            Some("cyclecover-fault-plan") => {}
            other => return Err(format!("not a cyclecover-fault-plan document: {other:?}")),
        }
        match doc.get("version").and_then(Json::as_num) {
            Some(v) if (v - 1.0).abs() < f64::EPSILON => {}
            Some(v) => return Err(format!("unsupported fault-plan version {v}")),
            None => return Err("missing 'version'".into()),
        }
        let seed = match doc.get("seed") {
            None | Some(Json::Null) => 0,
            Some(v) => {
                let x = v.as_num().ok_or("'seed' must be a number")?;
                if x.fract() != 0.0 || x < 0.0 {
                    return Err(format!("'seed' = {x} must be a non-negative integer"));
                }
                x as u64
            }
        };
        let mut faults = Vec::new();
        if let Some(list) = doc.get("faults") {
            let list = list
                .as_arr()
                .ok_or("'faults' must be an array of fault objects")?;
            for (i, f) in list.iter().enumerate() {
                faults.push(parse_fault(f).map_err(|e| format!("fault {i}: {e}"))?);
            }
        }
        Ok(FaultPlan { seed, faults })
    }
}

fn parse_fault(f: &Json) -> Result<Fault, String> {
    let counter = |key: &str| -> Result<Option<u64>, String> {
        match f.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => {
                let x = v.as_num().ok_or_else(|| format!("'{key}' must be a number"))?;
                if x.fract() != 0.0 || x < 1.0 {
                    return Err(format!("'{key}' = {x} must be a positive integer (1-based)"));
                }
                Ok(Some(x as u64))
            }
        }
    };
    let trigger = match (counter("on_solve")?, f.get("job"), counter("on_build")?) {
        (Some(n), None, None) => Trigger::OnSolve(n),
        (None, Some(id), None) => {
            let id = id.as_str().ok_or("'job' must be a job id string")?;
            if id.is_empty() {
                return Err("'job' must not be empty".into());
            }
            Trigger::Job(id.to_string())
        }
        (None, None, Some(n)) => Trigger::OnBuild(n),
        _ => return Err("want exactly one trigger: 'on_solve', 'job', or 'on_build'".into()),
    };
    let kind = match f.get("kind").and_then(Json::as_str) {
        Some("panic") => FaultKind::Panic,
        Some("deadline") => FaultKind::Deadline,
        Some("stall") => {
            let ms = match f.get("ms") {
                None | Some(Json::Null) => 1,
                Some(v) => {
                    let x = v.as_num().ok_or("'ms' must be a number")?;
                    if x.fract() != 0.0 || x < 0.0 {
                        return Err(format!("'ms' = {x} must be a non-negative integer"));
                    }
                    x as u64
                }
            };
            FaultKind::Stall(ms)
        }
        Some("build_fail") => FaultKind::BuildFail,
        other => {
            return Err(format!(
                "bad fault kind {other:?} (want panic|deadline|stall|build_fail)"
            ))
        }
    };
    if kind == FaultKind::BuildFail && !matches!(trigger, Trigger::OnBuild(_)) {
        return Err("'build_fail' needs an 'on_build' trigger".into());
    }
    if kind != FaultKind::BuildFail && matches!(trigger, Trigger::OnBuild(_)) {
        return Err("'on_build' only triggers 'build_fail'".into());
    }
    Ok(Fault { trigger, kind })
}

/// The hook the service consults at every dispatch and universe build.
/// With the empty plan both probes are a single branch — the fault
/// machinery is compiled in always and costs nothing when disabled.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    solves: AtomicU64,
    builds: AtomicU64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector driving the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            solves: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Called before every engine dispatch with the group primary's job
    /// id; returns the fault to apply, if any fires. Counts dispatches
    /// even when nothing fires (so `on_solve` indices stay meaningful
    /// across a mixed plan), but skips all bookkeeping on the empty plan.
    pub fn before_solve(&self, job_id: &str) -> Option<FaultKind> {
        if self.plan.is_empty() {
            return None;
        }
        let nth = self.solves.fetch_add(1, Ordering::SeqCst) + 1;
        let fired = self.plan.faults.iter().find_map(|f| match &f.trigger {
            Trigger::OnSolve(n) if *n == nth => Some(f.kind),
            Trigger::Job(id) if id == job_id => Some(f.kind),
            _ => None,
        });
        if fired.is_some() {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Called before every universe construction (cache miss); `true`
    /// means the build must fail.
    pub fn before_build(&self) -> bool {
        if self.plan.is_empty() {
            return false;
        }
        let nth = self.builds.fetch_add(1, Ordering::SeqCst) + 1;
        let fired = self
            .plan
            .faults
            .iter()
            .any(|f| matches!(f.trigger, Trigger::OnBuild(n) if n == nth));
        if fired {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Total faults fired over the injector's lifetime.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = r#"{"format": "cyclecover-fault-plan", "version": 1, "seed": 42,
        "faults": [
          {"on_solve": 2, "kind": "panic"},
          {"job": "poison", "kind": "deadline"},
          {"on_solve": 4, "kind": "stall", "ms": 3},
          {"on_build": 1, "kind": "build_fail"}
        ]}"#;

    #[test]
    fn plan_parses_and_fires_deterministically() {
        let plan = FaultPlan::from_json(PLAN).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.len(), 4);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.before_solve("a"), None); // dispatch 1
        assert_eq!(inj.before_solve("a"), Some(FaultKind::Panic)); // 2
        assert_eq!(inj.before_solve("poison"), Some(FaultKind::Deadline)); // 3, by id
        assert_eq!(inj.before_solve("b"), Some(FaultKind::Stall(3))); // 4
        assert_eq!(inj.before_solve("b"), None); // 5
        assert!(inj.before_build());
        assert!(!inj.before_build());
        assert_eq!(inj.injected(), 4);
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..100 {
            assert_eq!(inj.before_solve("x"), None);
            assert!(!inj.before_build());
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn parser_rejects_malformed_plans() {
        for (bad, want) in [
            (r#"{"format": "cyclecover-request", "version": 1}"#, "not a cyclecover-fault-plan"),
            (r#"{"format": "cyclecover-fault-plan", "version": 2}"#, "version 2"),
            (r#"{"format": "cyclecover-fault-plan", "version": 1,
                 "faults": [{"kind": "panic"}]}"#, "exactly one trigger"),
            (r#"{"format": "cyclecover-fault-plan", "version": 1,
                 "faults": [{"on_solve": 1, "job": "x", "kind": "panic"}]}"#, "exactly one trigger"),
            (r#"{"format": "cyclecover-fault-plan", "version": 1,
                 "faults": [{"on_solve": 0, "kind": "panic"}]}"#, "positive integer"),
            (r#"{"format": "cyclecover-fault-plan", "version": 1,
                 "faults": [{"on_solve": 1, "kind": "levitate"}]}"#, "fault kind"),
            (r#"{"format": "cyclecover-fault-plan", "version": 1,
                 "faults": [{"on_solve": 1, "kind": "build_fail"}]}"#, "on_build"),
            (r#"{"format": "cyclecover-fault-plan", "version": 1,
                 "faults": [{"on_build": 1, "kind": "panic"}]}"#, "on_build"),
        ] {
            let err = FaultPlan::from_json(bad).unwrap_err();
            assert!(err.contains(want), "{bad}: {err}");
        }
    }
}
