//! The persistent certificate cache: ring three of the shared
//! refutation-store design.
//!
//! Rings one and two (cross-budget and cross-worker sharing) reuse
//! *partial* work — refutations of residual states — inside one
//! process. This module closes the loop on *complete* work: a terminal
//! `optimal`/`infeasible` answer is persisted keyed by the request's
//! coalescing key, and a wire-identical request in any later batch (or
//! any later process, via `serve --cert-cache FILE`) is answered with
//! **zero kernel nodes**, marked `cached: true` on the wire.
//!
//! # Trust model
//!
//! A cache file is *input*, not *state*: it may be stale, truncated,
//! hand-edited, or adversarial. Every entry is therefore re-validated
//! on load — the key must re-parse as a canonical complete-spec
//! request, the verdict must be one of the two cacheable kinds, and an
//! `optimal` covering must re-pass the DRC and full-coverage checks
//! ([`json::certificate_from_solution_json`] plus
//! [`DrcCovering::validate`]) and agree in size with its lower-bound
//! proof. Entries that fail any check are dropped individually and
//! counted ([`CertCache::rejected_on_load`]); a malformed file never
//! poisons the answers the service gives. What re-validation *cannot*
//! re-establish is the exhaustive-search side of a certificate (that no
//! smaller covering exists / that the budget is truly infeasible) —
//! that is exactly the trust being persisted, which is why the cache
//! file deserves the same protection as the binary that wrote it (see
//! `docs/robustness.md`).
//!
//! Caching is restricted to unit complete-`K_n` requests: a v1 solution
//! document does not carry the demand spec, so neither a
//! partial-instance nor a λ-fold covering can be coverage-checked from
//! the file alone.

use cyclecover_io::json::{self, Json, SolveJob};
use cyclecover_ring::{Ring, Tile};
use cyclecover_solver::api::{engine_by_name, Optimality, Solution};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One re-validated cache entry, ready to serve.
struct CertEntry {
    /// The single-line solution document, exactly as persisted (and as
    /// re-emitted by [`CertCache::to_json`]).
    doc: String,
    /// Ring size the certificate answers.
    n: u32,
    /// Registry name of the engine that originally produced it.
    engine: &'static str,
    /// The verdict (`Optimal { .. }` or `Infeasible`).
    optimality: Optimality,
    /// The re-validated covering, exactly when the verdict carries one.
    covering: Option<Vec<Tile>>,
}

/// The persisted answer store: coalescing key → re-validated terminal
/// certificate. Serialized as the `cyclecover-certificate-cache` wire
/// document (version 1; normative field list in [`cyclecover_io::json`]).
#[derive(Default)]
pub struct CertCache {
    entries: HashMap<String, CertEntry>,
    hits: u64,
    rejected_on_load: u64,
}

impl CertCache {
    /// An empty cache.
    pub fn new() -> Self {
        CertCache::default()
    }

    /// Parses a `cyclecover-certificate-cache` document, re-validating
    /// every entry. A malformed *document* (wrong format, bad version,
    /// unparsable JSON) is an error; a malformed *entry* is dropped and
    /// counted in [`CertCache::rejected_on_load`] — per-entry rejection
    /// keeps one corrupt line from discarding the rest of the cache.
    pub fn from_json(text: &str) -> Result<CertCache, String> {
        let doc = Json::parse(text)?;
        match doc.get("format").and_then(Json::as_str) {
            Some("cyclecover-certificate-cache") => {}
            other => {
                return Err(format!(
                    "not a cyclecover-certificate-cache document: {other:?}"
                ))
            }
        }
        match doc.get("version").and_then(Json::as_num) {
            Some(1.0) => {}
            Some(v) => {
                return Err(format!(
                    "unsupported certificate-cache version {v} (this parser speaks 1)"
                ))
            }
            None => return Err("missing 'version'".into()),
        }
        let raw = match doc.get("entries") {
            Some(Json::Arr(entries)) => entries,
            _ => return Err("missing 'entries' array".into()),
        };
        let mut cache = CertCache::new();
        for e in raw {
            let (Some(key), Some(sol)) = (
                e.get("key").and_then(Json::as_str),
                e.get("solution").and_then(Json::as_str),
            ) else {
                cache.rejected_on_load += 1;
                continue;
            };
            match validate_entry(key, sol) {
                Ok(entry) => {
                    cache.entries.insert(key.to_string(), entry);
                }
                Err(_) => cache.rejected_on_load += 1,
            }
        }
        Ok(cache)
    }

    /// Serializes the cache as a `cyclecover-certificate-cache`
    /// document (single-line entries, deterministic key order).
    pub fn to_json(&self) -> String {
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        let mut s = String::new();
        s.push_str("{\"format\": \"cyclecover-certificate-cache\", \"version\": 1, \"entries\": [");
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let entry = &self.entries[*key];
            let _ = write!(
                s,
                "{{\"key\": {}, \"solution\": {}}}",
                json::quote(key),
                json::quote(&entry.doc)
            );
        }
        s.push_str("]}\n");
        s
    }

    /// Serves the certificate for a coalescing key, when one is held:
    /// a [`Solution`] marked [`Solution::cached`] with all-zero search
    /// statistics, carrying the original verdict, covering, and engine
    /// provenance. Counts a hit.
    pub fn lookup(&mut self, key: &str) -> Option<Solution> {
        let entry = self.entries.get(key)?;
        self.hits += 1;
        Some(Solution::from_certificate(
            Ring::new(entry.n),
            entry.covering.clone(),
            entry.optimality,
            entry.engine,
        ))
    }

    /// Records a freshly-computed answer, when it qualifies: terminal
    /// verdict (`Optimal`/`Infeasible`), direct (not degraded, not
    /// itself served from a cache), and a complete-`K_n` job (the only
    /// spec a persisted document can be re-validated against). The
    /// recorded document round-trips through the same validation as a
    /// loaded one, so the cache never holds an entry it would reject.
    pub fn record(&mut self, job: &SolveJob, key: &str, solution: &Solution) {
        if solution.cached()
            || solution.degraded().is_some()
            || job.requests.is_some()
            || job.lambda > 1
            || !matches!(
                solution.optimality(),
                Optimality::Optimal { .. } | Optimality::Infeasible
            )
            || self.entries.contains_key(key)
        {
            return;
        }
        let doc = json::to_single_line(&json::solution_to_json(solution));
        // Self-check through the load path: an entry this cache cannot
        // re-validate must never be written out.
        if let Ok(entry) = validate_entry(key, &doc) {
            self.entries.insert(key.to_string(), entry);
        }
    }

    /// Entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries dropped by re-validation during [`CertCache::from_json`].
    pub fn rejected_on_load(&self) -> u64 {
        self.rejected_on_load
    }
}

/// The full per-entry trust boundary (see the module docs).
fn validate_entry(key: &str, solution_doc: &str) -> Result<CertEntry, String> {
    let job = json::request_from_json(key)?;
    if job.requests.is_some() {
        return Err("partial-instance requests are not cacheable".into());
    }
    if job.lambda > 1 {
        // A v1 solution document cannot be re-validated against a
        // λ-fold multiplicity spec (the coverage check below asserts
        // the unit complete-K_n spec), so λ-fold answers stay uncached.
        return Err("lambda-fold requests are not cacheable".into());
    }
    if !job.id.is_empty() || job.deadline_ms.is_some() {
        return Err("key is not canonical: 'id'/'deadline_ms' must be blanked".into());
    }
    let parsed = json::certificate_from_solution_json(solution_doc)?;
    if parsed.n != job.n {
        return Err(format!(
            "certificate answers n = {} but the key asks n = {}",
            parsed.n, job.n
        ));
    }
    let engine = engine_by_name(&parsed.engine)
        .ok_or_else(|| format!("unknown engine '{}'", parsed.engine))?
        .name();
    use cyclecover_solver::api::Objective;
    let covering = match (&parsed.optimality, parsed.covering) {
        (Optimality::Optimal { .. }, Some(covering)) => {
            if job.objective != Objective::FindOptimal {
                return Err("an optimal certificate answers only find_optimal".into());
            }
            // Full coverage against the complete-K_n spec (the DRC
            // checks already ran inside the parser), plus the universe
            // constraint the key's tile enumeration imposes.
            covering.validate().map_err(|e| format!("{e:?}"))?;
            if covering
                .tiles()
                .iter()
                .any(|t| t.vertices().len() > job.max_len as usize)
            {
                return Err("covering uses a cycle longer than the key's max_len".into());
            }
            Some(covering.tiles().to_vec())
        }
        (Optimality::Infeasible, None) => {
            if job.objective == Objective::FindOptimal {
                return Err("find_optimal never answers infeasible".into());
            }
            None
        }
        _ => return Err("verdict/covering mismatch".into()),
    };
    Ok(CertEntry {
        doc: solution_doc.to_string(),
        n: job.n,
        engine,
        optimality: parsed.optimality,
        covering,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclecover_solver::api::{engine_by_name as engine, Problem, SolveRequest};

    fn solved(n: u32) -> (SolveJob, String, Solution) {
        let job = SolveJob::new("", n);
        let key = json::request_to_json(&job);
        let sol = engine("bitset")
            .unwrap()
            .solve(&Problem::complete(n), &job.to_solve_request());
        (job, key, sol)
    }

    #[test]
    fn record_then_lookup_serves_zero_node_cached_answer() {
        let (job, key, sol) = solved(7);
        let mut cache = CertCache::new();
        cache.record(&job, &key, &sol);
        assert_eq!(cache.len(), 1);
        let served = cache.lookup(&key).expect("recorded entry serves");
        assert!(served.cached());
        assert_eq!(served.stats().nodes, 0);
        assert_eq!(served.optimality(), sol.optimality());
        assert_eq!(served.covering(), sol.covering());
        assert_eq!(served.stats().engine, "bitset");
        assert_eq!(cache.hits(), 1);
        assert!(cache.lookup("nonsense").is_none());
    }

    #[test]
    fn round_trips_through_the_wire_document() {
        let (job, key, sol) = solved(7);
        let mut cache = CertCache::new();
        cache.record(&job, &key, &sol);
        let doc = cache.to_json();
        let reloaded = CertCache::from_json(&doc).expect("self-emitted doc parses");
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.rejected_on_load(), 0);
        assert_eq!(reloaded.to_json(), doc);
    }

    #[test]
    fn tampered_entries_are_rejected_individually() {
        let (job, key, sol) = solved(7);
        let mut cache = CertCache::new();
        cache.record(&job, &key, &sol);
        let good = cache.to_json();
        // Swap a vertex index out of range inside the persisted cycles:
        // the DRC re-validation must drop the entry, not trust it.
        let bad = good.replace("[0, 1, 2", "[0, 99, 2");
        assert_ne!(good, bad, "tamper target present");
        let reloaded = CertCache::from_json(&bad).expect("document still parses");
        assert_eq!(reloaded.len(), 0);
        assert_eq!(reloaded.rejected_on_load(), 1);
    }

    #[test]
    fn malformed_documents_are_errors_but_entries_fail_soft() {
        assert!(CertCache::from_json("{").is_err());
        assert!(CertCache::from_json(r#"{"format": "x", "version": 1, "entries": []}"#).is_err());
        assert!(CertCache::from_json(
            r#"{"format": "cyclecover-certificate-cache", "version": 2, "entries": []}"#
        )
        .is_err());
        // An entry that is not even an object: dropped, counted.
        let doc = r#"{"format": "cyclecover-certificate-cache", "version": 1,
                      "entries": [{"key": "junk", "solution": "junk"}]}"#;
        let cache = CertCache::from_json(doc).expect("document parses");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.rejected_on_load(), 1);
    }

    #[test]
    fn non_terminal_and_degraded_answers_are_not_recorded() {
        let (job, key, _) = solved(7);
        // A feasible (non-terminal) answer: greedy never proves bounds.
        let feasible = engine("greedy")
            .unwrap()
            .solve(&Problem::complete(7), &SolveRequest::find_optimal());
        let mut cache = CertCache::new();
        cache.record(&job, &key, &feasible);
        assert!(cache.is_empty());
        // A served-from-cache answer must not be re-recorded.
        let (job2, key2, sol2) = solved(7);
        cache.record(&job2, &key2, &sol2);
        let served = cache.lookup(&key2).unwrap();
        let mut fresh = CertCache::new();
        fresh.record(&job2, &key2, &served);
        assert!(fresh.is_empty());
    }

    #[test]
    fn lambda_fold_answers_are_not_recorded() {
        let mut job = SolveJob::new("", 5);
        job.lambda = 2;
        let key = json::request_to_json(&job);
        let sol = engine("bitset").unwrap().solve(
            &Problem::new(
                cyclecover_solver::TileUniverse::new(Ring::new(5), 5),
                job.spec(),
            ),
            &job.to_solve_request(),
        );
        assert!(matches!(sol.optimality(), Optimality::Optimal { .. }));
        let mut cache = CertCache::new();
        cache.record(&job, &key, &sol);
        assert!(cache.is_empty(), "λ-fold certificates must stay uncached");
    }

    #[test]
    fn infeasible_answers_cache_without_a_covering() {
        let mut job = SolveJob::new("", 8);
        job.objective = Objective::ProveInfeasible(5);
        let key = json::request_to_json(&job);
        let sol = engine("bitset")
            .unwrap()
            .solve(&Problem::complete(8), &job.to_solve_request());
        assert!(matches!(sol.optimality(), Optimality::Infeasible));
        let mut cache = CertCache::new();
        cache.record(&job, &key, &sol);
        assert_eq!(cache.len(), 1);
        let reloaded = CertCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(reloaded.len(), 1);
    }

    use cyclecover_solver::api::Objective;
}
