//! Property tests for the daemon's connection reader: however the TCP
//! layer fragments the byte stream, framing is invariant — every input
//! line surfaces exactly once, in order — and admission classifies each
//! framed line into exactly one action, so a client that streams k job
//! lines gets exactly k terminal documents back, never 0 and never 2.

use cyclecover_io::json::{request_to_json, to_single_line, SolveJob};
use cyclecover_service::{CostModel, FramedLine, Ingest, IngestAction, LineFramer};
use proptest::prelude::*;

/// One logical input line, by how admission must treat it.
#[derive(Clone, Debug, PartialEq)]
enum Line {
    /// Well-formed request document (→ exactly one `Submit`).
    Job { id: u32, n: u32 },
    /// Non-empty, non-comment, unparseable (→ exactly one `Reject`).
    Garbage(String),
    /// Blank or `#` comment (→ `Ignore`, no response document).
    Silent(String),
}

impl Line {
    fn render(&self) -> String {
        match self {
            Line::Job { id, n } => {
                to_single_line(&request_to_json(&SolveJob::new(format!("j{id}"), *n)))
            }
            Line::Garbage(s) | Line::Silent(s) => s.clone(),
        }
    }
}

/// (kind, salt, n) → a line; kinds weight jobs at ~40%.
fn make_line((kind, salt, n): (u8, u32, u32)) -> Line {
    match kind {
        0 | 1 => Line::Job { id: salt, n },
        2 => Line::Garbage(format!("!not json {salt} {{\"truncated\": ")),
        3 => Line::Silent(format!("# comment {salt}")),
        _ => Line::Silent(String::new()),
    }
}

fn lines_strategy() -> impl Strategy<Value = Vec<Line>> {
    prop::collection::vec(
        (0u8..5, 0u32..1000, 6u32..=10).prop_map(make_line),
        0..24,
    )
}

/// Splits `bytes` at the (wrapped) cut points and feeds the fragments to
/// the framer, collecting everything it yields.
fn frame_in_fragments(framer: &mut LineFramer, bytes: &[u8], cuts: &[usize]) -> Vec<FramedLine> {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|c| if bytes.is_empty() { 0 } else { c % bytes.len() })
        .collect();
    points.push(0);
    points.push(bytes.len());
    points.sort_unstable();
    let mut out = Vec::new();
    for pair in points.windows(2) {
        out.extend(framer.push(&bytes[pair[0]..pair[1]]));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Framing is split-invariant: any fragmentation of the same byte
    /// stream yields the same lines, in order, with CRLF tolerated.
    #[test]
    fn framing_is_invariant_under_arbitrary_chunk_splits(
        lines in lines_strategy(),
        cuts in prop::collection::vec(0usize..4096, 0..12),
        crlf in any::<bool>(),
    ) {
        let ending = if crlf { "\r\n" } else { "\n" };
        let mut bytes = Vec::new();
        for line in &lines {
            bytes.extend_from_slice(line.render().as_bytes());
            bytes.extend_from_slice(ending.as_bytes());
        }
        let mut framer = LineFramer::new(1 << 20);
        let framed = frame_in_fragments(&mut framer, &bytes, &cuts);
        prop_assert_eq!(framed.len(), lines.len());
        for (got, want) in framed.iter().zip(&lines) {
            match got {
                FramedLine::Line(text) => prop_assert_eq!(text, &want.render()),
                FramedLine::Oversized { .. } => prop_assert!(false, "no line is oversized here"),
            }
        }
    }

    /// Oversized lines are dropped wholesale — the framer resyncs at the
    /// next newline and the neighbours come through untouched.
    #[test]
    fn oversized_lines_drop_without_corrupting_neighbours(
        pad in 1usize..200,
        cuts in prop::collection::vec(0usize..512, 0..8),
    ) {
        let max = 32usize;
        let big = "x".repeat(max + pad);
        let stream = format!("before\n{big}\nafter\n");
        let mut framer = LineFramer::new(max);
        let framed = frame_in_fragments(&mut framer, stream.as_bytes(), &cuts);
        prop_assert_eq!(framed.len(), 3);
        prop_assert_eq!(&framed[0], &FramedLine::Line("before".to_string()));
        prop_assert!(matches!(framed[1], FramedLine::Oversized { .. }));
        prop_assert_eq!(&framed[2], &FramedLine::Line("after".to_string()));
    }

    /// Exactly one terminal response per job: across any fragmentation,
    /// admission produces one `Submit` per well-formed line, one
    /// `Reject` per malformed line, and silence only for blank/comment
    /// lines — the invariant behind "k job lines in, k documents out".
    #[test]
    fn admission_yields_exactly_one_action_per_line(
        lines in lines_strategy(),
        cuts in prop::collection::vec(0usize..4096, 0..12),
    ) {
        let mut bytes = Vec::new();
        for line in &lines {
            bytes.extend_from_slice(line.render().as_bytes());
            bytes.push(b'\n');
        }
        let mut framer = LineFramer::new(1 << 20);
        let framed = frame_in_fragments(&mut framer, &bytes, &cuts);
        let ingest = Ingest::new(Some(CostModel::builtin().clone()), usize::MAX);
        let (mut submits, mut rejects, mut ignores) = (0usize, 0usize, 0usize);
        for f in framed {
            match f {
                FramedLine::Line(text) => match ingest.admit(&text, 0) {
                    IngestAction::Submit(..) => submits += 1,
                    IngestAction::Reject { .. } => rejects += 1,
                    IngestAction::Ignore => ignores += 1,
                    other => prop_assert!(false, "unexpected action {other:?}"),
                },
                FramedLine::Oversized { .. } => prop_assert!(false, "no oversized lines here"),
            }
        }
        let jobs = lines.iter().filter(|l| matches!(l, Line::Job { .. })).count();
        let garbage = lines.iter().filter(|l| matches!(l, Line::Garbage(_))).count();
        let silent = lines.iter().filter(|l| matches!(l, Line::Silent(_))).count();
        prop_assert_eq!(submits, jobs, "one Submit per well-formed job line");
        prop_assert_eq!(rejects, garbage, "one Reject per malformed line");
        prop_assert_eq!(ignores, silent, "blank/comment lines answer nothing");
    }
}
