//! Behavioral suite for the batching solve service: universe-cache
//! accounting, deadline-aware (EDF) scheduling, coalescing, and the
//! cancellation tree.

use cyclecover_io::json::{self, SolveJob};
use cyclecover_service::{
    batch_summary_json, BatchReport, ServiceConfig, SolveService, UniverseCache,
};
use cyclecover_solver::api::{Exhaustion, Objective, Optimality, SymmetryMode};
use proptest::prelude::*;
use std::sync::Arc;

fn service() -> SolveService {
    SolveService::new(ServiceConfig::default())
}

fn by_id<'r>(report: &'r BatchReport, id: &str) -> &'r cyclecover_service::JobReport {
    report
        .jobs
        .iter()
        .find(|j| j.id == id)
        .unwrap_or_else(|| panic!("no report for {id}"))
}

#[test]
fn edf_admission_early_deadline_cannot_be_starved() {
    let mut svc = service();
    // Submitted first, generous deadline; then no deadline; then tight.
    let mut relaxed = SolveJob::new("relaxed", 8);
    relaxed.deadline_ms = Some(600_000);
    svc.submit(relaxed).unwrap();
    svc.submit(SolveJob::new("unbounded", 7)).unwrap();
    let mut urgent = SolveJob::new("urgent", 6);
    urgent.deadline_ms = Some(60_000);
    svc.submit(urgent).unwrap();

    let report = svc.drain();
    assert_eq!(report.stats.solved, 3);
    assert_eq!(report.stats.expired, 0);
    // Admission must follow deadlines, not submission: urgent first,
    // relaxed second, the deadline-free job last.
    assert_eq!(by_id(&report, "urgent").admit_order, 0);
    assert_eq!(by_id(&report, "relaxed").admit_order, 1);
    assert_eq!(by_id(&report, "unbounded").admit_order, 2);
    for id in ["urgent", "relaxed", "unbounded"] {
        let sol = by_id(&report, id).solution.as_ref().unwrap();
        assert!(
            matches!(sol.optimality(), Optimality::Optimal { .. }),
            "{id}: {:?}",
            sol.optimality()
        );
    }
}

#[test]
fn expired_jobs_are_rejected_without_running() {
    let mut svc = service();
    let mut doomed = SolveJob::new("doomed", 10);
    doomed.deadline_ms = Some(0); // unmeetable: expired the moment the batch clock starts
    svc.submit(doomed).unwrap();
    svc.submit(SolveJob::new("fine", 6)).unwrap();

    let report = svc.drain();
    assert_eq!(report.stats.expired, 1);
    assert_eq!(report.stats.solved, 1);
    let doomed = by_id(&report, "doomed");
    assert!(doomed.expired);
    let sol = doomed.solution.as_ref().unwrap();
    assert_eq!(
        *sol.optimality(),
        Optimality::BudgetExhausted {
            reason: Exhaustion::Deadline
        }
    );
    // "Without running": zero nodes, zero budgets tried, attributed to
    // the scheduler — no kernel was ever entered.
    assert_eq!(sol.stats().nodes, 0);
    assert_eq!(sol.stats().budgets_tried, 0);
    assert_eq!(sol.stats().engine, "service");
    // The survivor is untouched.
    assert_eq!(by_id(&report, "fine").solution.as_ref().unwrap().size(), Some(5));
}

#[test]
fn identical_requests_coalesce_into_one_solve() {
    let mut svc = service();
    for id in ["a", "b", "c"] {
        let mut job = SolveJob::new(id, 8);
        job.symmetry = Some(SymmetryMode::Root);
        svc.submit(job).unwrap();
    }
    // Same ring shape, different objective: shares the universe but not
    // the solve.
    let mut probe = SolveJob::new("probe", 8);
    probe.objective = Objective::WithinBudget(9);
    svc.submit(probe).unwrap();

    let report = svc.drain();
    assert_eq!(report.stats.solved, 4);
    assert_eq!(report.stats.coalesced, 2, "b and c ride along with a");
    // One universe build for all four jobs.
    assert_eq!(report.stats.cache.misses, 1);
    assert!(report.stats.cache.hits >= 1);
    // Exactly two kernel runs were charged.
    let totals = &report.stats.engines;
    assert_eq!(totals.len(), 1);
    assert_eq!(totals[0].name, "bitset");
    assert_eq!(totals[0].solves, 2);
    assert_eq!(totals[0].jobs, 4);
    assert!(totals[0].nodes > 0);
    // All coalesced waiters got the same answer.
    let size_a = by_id(&report, "a").solution.as_ref().unwrap().size();
    for id in ["b", "c"] {
        assert_eq!(by_id(&report, id).solution.as_ref().unwrap().size(), size_a);
        assert!(by_id(&report, id).coalesced);
    }
    assert_eq!(size_a, Some(9));
}

#[test]
fn deadlines_do_not_fragment_coalescing_groups() {
    // Same request, different deadlines: still one solve, and the late
    // waiter's generous deadline governs the kernel.
    let mut svc = service();
    let mut tight = SolveJob::new("tight", 6);
    tight.deadline_ms = Some(120_000);
    let mut loose = SolveJob::new("loose", 6);
    loose.deadline_ms = Some(240_000);
    svc.submit(tight).unwrap();
    svc.submit(loose).unwrap();
    let report = svc.drain();
    assert_eq!(report.stats.coalesced, 1);
    assert_eq!(report.stats.engines[0].solves, 1);
    assert_eq!(by_id(&report, "tight").solution.as_ref().unwrap().size(), Some(5));
    assert_eq!(by_id(&report, "loose").solution.as_ref().unwrap().size(), Some(5));
}

#[test]
fn multi_worker_drain_matches_single_worker() {
    let build = |workers: usize| {
        let mut svc = SolveService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        for (id, n) in [("w6", 6u32), ("w7", 7), ("w8", 8), ("w6b", 6)] {
            svc.submit(SolveJob::new(id, n)).unwrap();
        }
        svc.drain()
    };
    let solo = build(1);
    let duo = build(3);
    assert_eq!(solo.stats.solved, duo.stats.solved);
    for job in &solo.jobs {
        let twin = by_id(&duo, &job.id);
        assert_eq!(
            job.solution.as_ref().unwrap().size(),
            twin.solution.as_ref().unwrap().size(),
            "{}",
            job.id
        );
    }
}

#[test]
fn cancel_all_aborts_the_batch_through_the_token_tree() {
    let mut svc = service();
    // Symmetry off: the budget-8 probe needs ~97k nodes, far past the
    // ~4096-node cancellation check interval (under Root the whole solve
    // finishes in 10 nodes — before any check could fire).
    let mut victim = SolveJob::new("victim", 8);
    victim.objective = Objective::WithinBudget(8);
    victim.symmetry = Some(SymmetryMode::Off);
    svc.submit(victim).unwrap();
    svc.cancel_all();
    let report = svc.drain();
    let sol = by_id(&report, "victim").solution.as_ref().unwrap();
    assert_eq!(
        *sol.optimality(),
        Optimality::BudgetExhausted {
            reason: Exhaustion::Cancelled
        }
    );
    assert!(sol.stats().nodes <= 8192, "{:?}", sol.stats());
}

#[test]
fn admission_validation_and_errors() {
    let mut svc = service();
    let mut bad = SolveJob::new("bad", 6);
    bad.engine = "warp-drive".to_string();
    let err = svc.submit(bad).unwrap_err();
    assert!(err.contains("unknown engine"), "{err}");

    svc.submit(SolveJob::new("dup", 6)).unwrap();
    let err = svc.submit(SolveJob::new("dup", 7)).unwrap_err();
    assert!(err.contains("duplicate"), "{err}");

    // Heuristics can't prove infeasibility: admission reports the error
    // instead of lying.
    let mut unsupported = SolveJob::new("greedy-proof", 7);
    unsupported.engine = "greedy".to_string();
    unsupported.objective = Objective::ProveInfeasible(5);
    svc.submit(unsupported).unwrap();
    let report = svc.drain();
    assert_eq!(report.stats.errors, 1);
    let r = by_id(&report, "greedy-proof");
    assert!(r.error.as_ref().unwrap().contains("does not support"));
    assert!(r.solution.is_none());

    // Unnamed jobs get sequential ids…
    let mut svc = service();
    let id = svc.submit(SolveJob::new("", 6)).unwrap();
    assert_eq!(id, "job-0");
    // …which skip over names the user already took.
    svc.submit(SolveJob::new("job-1", 7)).unwrap();
    let id = svc.submit(SolveJob::new("", 8)).unwrap();
    assert_eq!(id, "job-2");
}

#[test]
fn mixed_batch_meets_the_acceptance_shape() {
    // The ISSUE acceptance scenario, in-library: >= 3 distinct (n, spec)
    // keys, repeated requests, one unmeetable deadline.
    let mut svc = service();
    let mut jobs = vec![
        SolveJob::new("k6-a", 6),
        SolveJob::new("k6-b", 6), // repeat → coalesces
        SolveJob::new("k7", 7),
        SolveJob::new("k8", 8),
    ];
    let mut partial = SolveJob::new("k8-partial", 8);
    partial.requests = Some(vec![(0, 2), (1, 5), (3, 7)]);
    jobs.push(partial); // same universe key as k8 → cache hit
    let mut hopeless = SolveJob::new("hopeless", 9);
    hopeless.deadline_ms = Some(0);
    jobs.push(hopeless);
    for job in jobs {
        svc.submit(job).unwrap();
    }
    let report = svc.drain();
    assert_eq!(report.stats.submitted, 6);
    assert_eq!(report.stats.expired, 1);
    assert!(report.stats.cache.hits > 0, "{:?}", report.stats.cache);
    assert!(report.stats.coalesced >= 1);
    // Every served job carries a covering that re-validates through the
    // wire format. Complete-spec solutions pass the full `cyclecover
    // validate` check; the partial job's covering is re-validated at the
    // DRC trust boundary (full validation demands all of K_n).
    let mut validated = 0;
    for r in &report.jobs {
        if r.expired {
            continue;
        }
        let sol = r.solution.as_ref().unwrap();
        if sol.covering().is_some() {
            let doc = json::solution_to_json(sol);
            let covering = json::covering_from_solution_json(&doc).unwrap();
            if r.id != "k8-partial" {
                covering.validate().unwrap();
            }
            validated += 1;
        }
    }
    assert!(validated >= 4, "only {validated} coverings validated");

    // The summary document is well-formed JSON carrying the headline
    // numbers.
    let summary = batch_summary_json(&report);
    let doc = json::Json::parse(&summary).expect("summary parses");
    assert_eq!(
        doc.get("format").and_then(json::Json::as_str),
        Some("cyclecover-batch-summary")
    );
    let stats = doc.get("stats").unwrap();
    assert_eq!(stats.get("expired").and_then(json::Json::as_num), Some(1.0));
    assert!(stats.get("cache").unwrap().get("hits").and_then(json::Json::as_num).unwrap() > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cache keyed equality: a repeated key always returns the same
    /// allocation (and counts a hit); the key fully determines the
    /// universe shape.
    #[test]
    fn cache_key_determines_identity(
        n in 4u32..9,
        len_off in 0u32..3,
        gap in 1u32..9,
    ) {
        let key = (n, (3 + len_off).min(n), gap.min(n));
        let mut cache = UniverseCache::new(usize::MAX);
        let (a, hit_a) = cache.get_or_build(key);
        let (b, hit_b) = cache.get_or_build(key);
        prop_assert!(!hit_a && hit_b);
        prop_assert!(Arc::ptr_eq(&a, &b));
        // A fresh build from the same key is structurally identical.
        let mut other = UniverseCache::new(usize::MAX);
        let (c, _) = other.get_or_build(key);
        prop_assert_eq!(a.len(), c.len());
        prop_assert_eq!(a.approx_bytes(), c.approx_bytes());
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);
    }

    /// The (n, max_len, max_gap) key is what SolveJob exposes, and jobs
    /// differing only in spec/objective share it.
    #[test]
    fn universe_key_ignores_spec_and_objective(
        n in 4u32..9,
        budget in 1u32..20,
    ) {
        let complete = SolveJob::new("x", n);
        let mut partial = SolveJob::new("y", n);
        partial.requests = Some(vec![(0, 2)]);
        partial.objective = Objective::WithinBudget(budget);
        prop_assert_eq!(complete.universe_key(), partial.universe_key());
    }
}
