//! Behavioral suite for the batching solve service: universe-cache
//! accounting, deadline-aware (EDF) scheduling, coalescing, the
//! cancellation tree, and the fault-tolerance layer (panic isolation,
//! retry, degradation ladder, quarantine, graceful shutdown) under
//! deterministic fault injection.

use cyclecover_io::json::{self, SolveJob};
use cyclecover_service::{
    batch_summary_json, BatchReport, CertCache, FaultPlan, ServiceConfig, SolveService,
    UniverseCache,
};
use cyclecover_solver::api::{Exhaustion, FailureKind, Objective, Optimality, SymmetryMode};
use proptest::prelude::*;
use std::sync::Arc;

fn service() -> SolveService {
    SolveService::new(ServiceConfig::default())
}

/// A single-worker service with no backoff sleeps and `retries + 1`
/// attempts per rung, driving `plan` — the chaos-test harness shape.
fn chaos_service(plan: &str, retries: u32) -> SolveService {
    let mut svc = SolveService::new(ServiceConfig {
        workers: 1,
        backoff_base_ms: 0,
        max_attempts: retries + 1,
        ..ServiceConfig::default()
    });
    svc.set_fault_plan(FaultPlan::from_json(plan).expect("test plan parses"));
    svc
}

fn by_id<'r>(report: &'r BatchReport, id: &str) -> &'r cyclecover_service::JobReport {
    report
        .jobs
        .iter()
        .find(|j| j.id == id)
        .unwrap_or_else(|| panic!("no report for {id}"))
}

#[test]
fn edf_admission_early_deadline_cannot_be_starved() {
    let mut svc = service();
    // Submitted first, generous deadline; then no deadline; then tight.
    let mut relaxed = SolveJob::new("relaxed", 8);
    relaxed.deadline_ms = Some(600_000);
    svc.submit(relaxed).unwrap();
    svc.submit(SolveJob::new("unbounded", 7)).unwrap();
    let mut urgent = SolveJob::new("urgent", 6);
    urgent.deadline_ms = Some(60_000);
    svc.submit(urgent).unwrap();

    let report = svc.drain();
    assert_eq!(report.stats.solved, 3);
    assert_eq!(report.stats.expired, 0);
    // Admission must follow deadlines, not submission: urgent first,
    // relaxed second, the deadline-free job last.
    assert_eq!(by_id(&report, "urgent").admit_order, 0);
    assert_eq!(by_id(&report, "relaxed").admit_order, 1);
    assert_eq!(by_id(&report, "unbounded").admit_order, 2);
    for id in ["urgent", "relaxed", "unbounded"] {
        let sol = by_id(&report, id).solution.as_ref().unwrap();
        assert!(
            matches!(sol.optimality(), Optimality::Optimal { .. }),
            "{id}: {:?}",
            sol.optimality()
        );
    }
}

#[test]
fn expired_jobs_are_rejected_without_running() {
    let mut svc = service();
    let mut doomed = SolveJob::new("doomed", 10);
    doomed.deadline_ms = Some(0); // unmeetable: expired the moment the batch clock starts
    svc.submit(doomed).unwrap();
    svc.submit(SolveJob::new("fine", 6)).unwrap();

    let report = svc.drain();
    assert_eq!(report.stats.expired, 1);
    assert_eq!(report.stats.solved, 1);
    let doomed = by_id(&report, "doomed");
    assert!(doomed.expired);
    let sol = doomed.solution.as_ref().unwrap();
    assert_eq!(
        *sol.optimality(),
        Optimality::BudgetExhausted {
            reason: Exhaustion::Deadline
        }
    );
    // "Without running": zero nodes, zero budgets tried, attributed to
    // the scheduler — no kernel was ever entered.
    assert_eq!(sol.stats().nodes, 0);
    assert_eq!(sol.stats().budgets_tried, 0);
    assert_eq!(sol.stats().engine, "service");
    // The survivor is untouched.
    assert_eq!(by_id(&report, "fine").solution.as_ref().unwrap().size(), Some(5));
}

#[test]
fn identical_requests_coalesce_into_one_solve() {
    let mut svc = service();
    for id in ["a", "b", "c"] {
        let mut job = SolveJob::new(id, 8);
        job.symmetry = Some(SymmetryMode::Root);
        svc.submit(job).unwrap();
    }
    // Same ring shape, different objective: shares the universe but not
    // the solve.
    let mut probe = SolveJob::new("probe", 8);
    probe.objective = Objective::WithinBudget(9);
    svc.submit(probe).unwrap();

    let report = svc.drain();
    assert_eq!(report.stats.solved, 4);
    assert_eq!(report.stats.coalesced, 2, "b and c ride along with a");
    // One universe build for all four jobs.
    assert_eq!(report.stats.cache.misses, 1);
    assert!(report.stats.cache.hits >= 1);
    // Exactly two kernel runs were charged.
    let totals = &report.stats.engines;
    assert_eq!(totals.len(), 1);
    assert_eq!(totals[0].name, "bitset");
    assert_eq!(totals[0].solves, 2);
    assert_eq!(totals[0].jobs, 4);
    assert!(totals[0].nodes > 0);
    // All coalesced waiters got the same answer.
    let size_a = by_id(&report, "a").solution.as_ref().unwrap().size();
    for id in ["b", "c"] {
        assert_eq!(by_id(&report, id).solution.as_ref().unwrap().size(), size_a);
        assert!(by_id(&report, id).coalesced);
    }
    assert_eq!(size_a, Some(9));
}

#[test]
fn deadlines_do_not_fragment_coalescing_groups() {
    // Same request, different deadlines: still one solve, and the late
    // waiter's generous deadline governs the kernel.
    let mut svc = service();
    let mut tight = SolveJob::new("tight", 6);
    tight.deadline_ms = Some(120_000);
    let mut loose = SolveJob::new("loose", 6);
    loose.deadline_ms = Some(240_000);
    svc.submit(tight).unwrap();
    svc.submit(loose).unwrap();
    let report = svc.drain();
    assert_eq!(report.stats.coalesced, 1);
    assert_eq!(report.stats.engines[0].solves, 1);
    assert_eq!(by_id(&report, "tight").solution.as_ref().unwrap().size(), Some(5));
    assert_eq!(by_id(&report, "loose").solution.as_ref().unwrap().size(), Some(5));
}

#[test]
fn multi_worker_drain_matches_single_worker() {
    let build = |workers: usize| {
        let mut svc = SolveService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        for (id, n) in [("w6", 6u32), ("w7", 7), ("w8", 8), ("w6b", 6)] {
            svc.submit(SolveJob::new(id, n)).unwrap();
        }
        svc.drain()
    };
    let solo = build(1);
    let duo = build(3);
    assert_eq!(solo.stats.solved, duo.stats.solved);
    for job in &solo.jobs {
        let twin = by_id(&duo, &job.id);
        assert_eq!(
            job.solution.as_ref().unwrap().size(),
            twin.solution.as_ref().unwrap().size(),
            "{}",
            job.id
        );
    }
}

#[test]
fn cancel_all_aborts_the_batch_through_the_token_tree() {
    let mut svc = service();
    // Symmetry off: the budget-8 probe needs ~97k nodes, far past the
    // ~4096-node cancellation check interval (under Root the whole solve
    // finishes in 10 nodes — before any check could fire).
    let mut victim = SolveJob::new("victim", 8);
    victim.objective = Objective::WithinBudget(8);
    victim.symmetry = Some(SymmetryMode::Off);
    svc.submit(victim).unwrap();
    svc.cancel_all();
    let report = svc.drain();
    let sol = by_id(&report, "victim").solution.as_ref().unwrap();
    assert_eq!(
        *sol.optimality(),
        Optimality::BudgetExhausted {
            reason: Exhaustion::Cancelled
        }
    );
    assert!(sol.stats().nodes <= 8192, "{:?}", sol.stats());
}

#[test]
fn admission_validation_and_errors() {
    let mut svc = service();
    let mut bad = SolveJob::new("bad", 6);
    bad.engine = "warp-drive".to_string();
    let err = svc.submit(bad).unwrap_err();
    assert!(err.contains("unknown engine"), "{err}");

    svc.submit(SolveJob::new("dup", 6)).unwrap();
    let err = svc.submit(SolveJob::new("dup", 7)).unwrap_err();
    assert!(err.contains("duplicate"), "{err}");

    // Heuristics can't prove infeasibility: admission reports the error
    // instead of lying.
    let mut unsupported = SolveJob::new("greedy-proof", 7);
    unsupported.engine = "greedy".to_string();
    unsupported.objective = Objective::ProveInfeasible(5);
    svc.submit(unsupported).unwrap();
    let report = svc.drain();
    assert_eq!(report.stats.errors, 1);
    let r = by_id(&report, "greedy-proof");
    assert!(r.error.as_ref().unwrap().contains("does not support"));
    assert!(r.solution.is_none());

    // Unnamed jobs get sequential ids…
    let mut svc = service();
    let id = svc.submit(SolveJob::new("", 6)).unwrap();
    assert_eq!(id, "job-0");
    // …which skip over names the user already took.
    svc.submit(SolveJob::new("job-1", 7)).unwrap();
    let id = svc.submit(SolveJob::new("", 8)).unwrap();
    assert_eq!(id, "job-2");
}

#[test]
fn lambda_fold_jobs_bypass_predictive_admission_and_solve() {
    use cyclecover_service::{CalibrationRow, CostModel};
    // A model whose only point says the unit n = 6 certification takes
    // an hour: the unit twin is predicted-rejected at a 10 ms deadline,
    // but the λ-fold job — same n, same deadline wired in — runs a
    // different kernel the table knows nothing about, so it is always
    // admitted (and then actually solves: ρ₂(6) = 9).
    let mut svc = service();
    svc.set_cost_model(CostModel::new(vec![CalibrationRow {
        n: 6,
        objective: "find_optimal".to_string(),
        symmetry: "root".to_string(),
        memo: true,
        nodes: 1_000_000_000,
        wall_ms: 3_600_000.0,
    }]));
    let mut unit = SolveJob::new("unit", 6);
    unit.deadline_ms = Some(10);
    svc.submit(unit).unwrap();
    let mut double = SolveJob::new("double", 6);
    double.lambda = 2;
    double.deadline_ms = Some(10_000);
    svc.submit(double).unwrap();
    let mut triple = SolveJob::new("triple", 6);
    triple.lambda = 3;
    svc.submit(triple).unwrap();

    let report = svc.drain();
    assert_eq!(report.stats.predicted_rejected, 1);
    assert!(by_id(&report, "unit").predicted_reject);

    let double = by_id(&report, "double");
    assert!(!double.predicted_reject, "λ-fold jobs are always admitted");
    assert!(double.predicted.is_none(), "no unit-table prediction applies");
    let sol = double.solution.as_ref().unwrap();
    assert!(
        matches!(sol.optimality(), Optimality::Optimal { .. }),
        "{:?}",
        sol.optimality()
    );
    assert_eq!(sol.size(), Some(9), "ρ₂(6) = 9 (the capacity bound)");
    // The double cover's solution document round-trips the wire format
    // and passes the full `cyclecover validate` coverage check (λ-fold
    // coverings cover every request ≥ λ ≥ 1 times).
    let doc = json::solution_to_json(sol);
    let covering = json::covering_from_solution_json(&doc).unwrap();
    covering.validate().unwrap();

    let triple = by_id(&report, "triple").solution.as_ref().unwrap();
    assert!(matches!(triple.optimality(), Optimality::Optimal { .. }));
    assert_eq!(triple.size(), Some(14), "ρ₃(6) = 14");
}

#[test]
fn lambda_is_part_of_the_coalescing_key() {
    // A unit job and a double-cover job at the same ring size must not
    // coalesce: λ is wire-visible, so it is part of the key.
    let mut svc = service();
    svc.submit(SolveJob::new("unit", 6)).unwrap();
    let mut double = SolveJob::new("double", 6);
    double.lambda = 2;
    svc.submit(double).unwrap();
    let mut double2 = SolveJob::new("double2", 6);
    double2.lambda = 2;
    svc.submit(double2).unwrap();

    let report = svc.drain();
    assert_eq!(report.stats.solved, 3);
    assert_eq!(report.stats.coalesced, 1, "only the two λ = 2 jobs coalesce");
    assert_eq!(by_id(&report, "unit").solution.as_ref().unwrap().size(), Some(5));
    assert_eq!(by_id(&report, "double").solution.as_ref().unwrap().size(), Some(9));
    assert!(by_id(&report, "double2").coalesced);
}

#[test]
fn mixed_batch_meets_the_acceptance_shape() {
    // The ISSUE acceptance scenario, in-library: >= 3 distinct (n, spec)
    // keys, repeated requests, one unmeetable deadline.
    let mut svc = service();
    let mut jobs = vec![
        SolveJob::new("k6-a", 6),
        SolveJob::new("k6-b", 6), // repeat → coalesces
        SolveJob::new("k7", 7),
        SolveJob::new("k8", 8),
    ];
    let mut partial = SolveJob::new("k8-partial", 8);
    partial.requests = Some(vec![(0, 2), (1, 5), (3, 7)]);
    jobs.push(partial); // same universe key as k8 → cache hit
    let mut hopeless = SolveJob::new("hopeless", 9);
    hopeless.deadline_ms = Some(0);
    jobs.push(hopeless);
    for job in jobs {
        svc.submit(job).unwrap();
    }
    let report = svc.drain();
    assert_eq!(report.stats.submitted, 6);
    assert_eq!(report.stats.expired, 1);
    assert!(report.stats.cache.hits > 0, "{:?}", report.stats.cache);
    assert!(report.stats.coalesced >= 1);
    // Every served job carries a covering that re-validates through the
    // wire format. Complete-spec solutions pass the full `cyclecover
    // validate` check; the partial job's covering is re-validated at the
    // DRC trust boundary (full validation demands all of K_n).
    let mut validated = 0;
    for r in &report.jobs {
        if r.expired {
            continue;
        }
        let sol = r.solution.as_ref().unwrap();
        if sol.covering().is_some() {
            let doc = json::solution_to_json(sol);
            let covering = json::covering_from_solution_json(&doc).unwrap();
            if r.id != "k8-partial" {
                covering.validate().unwrap();
            }
            validated += 1;
        }
    }
    assert!(validated >= 4, "only {validated} coverings validated");

    // The summary document is well-formed JSON carrying the headline
    // numbers.
    let summary = batch_summary_json(&report);
    let doc = json::Json::parse(&summary).expect("summary parses");
    assert_eq!(
        doc.get("format").and_then(json::Json::as_str),
        Some("cyclecover-batch-summary")
    );
    let stats = doc.get("stats").unwrap();
    assert_eq!(stats.get("expired").and_then(json::Json::as_num), Some(1.0));
    assert!(stats.get("cache").unwrap().get("hits").and_then(json::Json::as_num).unwrap() > 0.0);
}

#[test]
fn panic_is_isolated_and_fanned_to_coalesced_waiters() {
    // "boom" panics on every dispatch; its wire-identical twin rides the
    // same group. Both must get a terminal failed answer, the worker must
    // survive to solve "fine", and the poison key is quarantined.
    let plan = r#"{"format": "cyclecover-fault-plan", "version": 1,
                   "faults": [{"job": "boom", "kind": "panic"}]}"#;
    let mut svc = chaos_service(plan, 1);
    svc.submit(SolveJob::new("boom", 6)).unwrap();
    svc.submit(SolveJob::new("boom-twin", 6)).unwrap();
    svc.submit(SolveJob::new("fine", 7)).unwrap();
    let report = svc.drain();

    assert_eq!(report.stats.failed, 2);
    assert_eq!(report.stats.solved, 1);
    assert_eq!(report.stats.quarantined, 1);
    // Two attempts on the one rung (1 retry), both panicked.
    assert_eq!(report.stats.retries, 1);
    assert_eq!(report.stats.faults_injected, 2);
    for id in ["boom", "boom-twin"] {
        let r = by_id(&report, id);
        let sol = r.solution.as_ref().unwrap();
        assert_eq!(
            *sol.optimality(),
            Optimality::Failed {
                kind: FailureKind::Panic
            },
            "{id}"
        );
        assert!(sol.covering().is_none());
        assert!(
            r.failure.as_ref().unwrap().contains("injected fault"),
            "{id}: {:?}",
            r.failure
        );
    }
    assert!(by_id(&report, "boom-twin").coalesced);
    assert_eq!(by_id(&report, "fine").solution.as_ref().unwrap().size(), Some(6));

    // Resubmitting the poison request (any id) is refused from quarantine
    // without a dispatch — the batch cannot be re-panicked.
    svc.submit(SolveJob::new("boom-again", 6)).unwrap();
    let report = svc.drain();
    let r = by_id(&report, "boom-again");
    assert!(matches!(
        r.solution.as_ref().unwrap().optimality(),
        Optimality::Failed {
            kind: FailureKind::Panic
        }
    ));
    assert!(r.failure.as_ref().unwrap().contains("quarantined"), "{:?}", r.failure);
    assert_eq!(r.solution.as_ref().unwrap().stats().attempts, 0);
    assert_eq!(report.stats.faults_injected, 0, "no dispatch reached the injector");
}

#[test]
fn transient_panic_recovers_on_retry() {
    // Only the first dispatch of the service's lifetime panics: the retry
    // must recover with the real answer on the same rung — no
    // degradation, one recorded retry.
    let plan = r#"{"format": "cyclecover-fault-plan", "version": 1,
                   "faults": [{"on_solve": 1, "kind": "panic"}]}"#;
    let mut svc = chaos_service(plan, 1);
    svc.submit(SolveJob::new("flaky", 6)).unwrap();
    let report = svc.drain();
    assert_eq!(report.stats.failed, 0);
    assert_eq!(report.stats.solved, 1);
    assert_eq!(report.stats.retries, 1);
    assert_eq!(report.stats.degraded, 0);
    assert_eq!(report.stats.quarantined, 0);
    let sol = by_id(&report, "flaky").solution.as_ref().unwrap();
    assert_eq!(sol.size(), Some(5));
    assert_eq!(sol.stats().attempts, 2);
    assert!(sol.degraded().is_none());
    assert!(by_id(&report, "flaky").failure.is_none(), "a recovered job carries no failure");
}

#[test]
fn forced_deadline_exhaustion_retries_while_slack_remains() {
    // An injected zero-deadline dispatch genuinely exhausts, but the job
    // itself has no deadline — slack remains, so the service retries and
    // the second dispatch answers. The probe must be big enough (~97k
    // nodes with symmetry off) to actually reach a deadline check
    // (~4096-node granularity).
    let plan = r#"{"format": "cyclecover-fault-plan", "version": 1,
                   "faults": [{"on_solve": 1, "kind": "deadline"}]}"#;
    let mut svc = chaos_service(plan, 1);
    let mut job = SolveJob::new("slow-start", 8);
    job.objective = Objective::WithinBudget(8);
    job.symmetry = Some(SymmetryMode::Off);
    svc.submit(job).unwrap();
    let report = svc.drain();
    let sol = by_id(&report, "slow-start").solution.as_ref().unwrap();
    assert!(matches!(sol.optimality(), Optimality::Infeasible), "{:?}", sol.optimality());
    assert_eq!(sol.stats().attempts, 2);
    assert_eq!(report.stats.retries, 1);
    assert_eq!(report.stats.degraded, 0);
}

#[test]
fn degradation_ladder_reports_honest_provenance() {
    // A node budget far too small for the exact kernel (symmetry off so
    // the search is genuinely large), with a heuristic fallback: the
    // answer must come from the fallback and say so.
    let mut svc = SolveService::new(ServiceConfig {
        backoff_base_ms: 0,
        ..ServiceConfig::default()
    });
    let mut job = SolveJob::new("degrade-me", 8);
    job.symmetry = Some(SymmetryMode::Off);
    job.max_nodes = Some(5);
    job.fallback = vec!["greedy".to_string()];
    svc.submit(job).unwrap();
    let report = svc.drain();

    assert_eq!(report.stats.degraded, 1);
    assert_eq!(report.stats.failed, 0);
    let sol = by_id(&report, "degrade-me").solution.as_ref().unwrap();
    let d = sol.degraded().expect("degradation recorded");
    assert_eq!(d.from, "bitset");
    assert_eq!(d.to, "greedy");
    assert_eq!(sol.stats().engine, "greedy");
    // The fallback's covering is a real covering.
    let doc = json::solution_to_json(sol);
    assert!(doc.contains("\"degraded\": {\"from\": \"bitset\""), "{doc}");
    json::covering_from_solution_json(&doc).unwrap().validate().unwrap();
    // The engine totals charge the rung that answered.
    assert!(report.stats.engines.iter().any(|e| e.name == "greedy" && e.jobs == 1));
}

#[test]
fn injected_build_failure_is_a_terminal_internal_failure() {
    let plan = r#"{"format": "cyclecover-fault-plan", "version": 1,
                   "faults": [{"on_build": 1, "kind": "build_fail"}]}"#;
    let mut svc = chaos_service(plan, 0);
    svc.submit(SolveJob::new("built-on-sand", 6)).unwrap();
    svc.submit(SolveJob::new("fine", 7)).unwrap();
    let report = svc.drain();
    assert_eq!(report.stats.failed, 1);
    assert_eq!(report.stats.solved, 1);
    let r = by_id(&report, "built-on-sand");
    assert_eq!(
        *r.solution.as_ref().unwrap().optimality(),
        Optimality::Failed {
            kind: FailureKind::Internal
        }
    );
    assert!(r.failure.as_ref().unwrap().contains("universe construction"), "{:?}", r.failure);
    // A failed build is not a panic: the key is NOT quarantined, and the
    // second universe build (for "fine") went through.
    assert_eq!(report.stats.quarantined, 0);
}

#[test]
fn shutdown_reports_queued_work_unstarted() {
    let mut svc = service();
    for (id, n) in [("s6", 6u32), ("s7", 7), ("s8", 8)] {
        svc.submit(SolveJob::new(id, n)).unwrap();
    }
    svc.shutdown();
    let report = svc.drain();
    assert_eq!(report.stats.unstarted, 3);
    assert_eq!(report.stats.solved, 0);
    for id in ["s6", "s7", "s8"] {
        let r = by_id(&report, id);
        assert!(r.unstarted, "{id}");
        let sol = r.solution.as_ref().unwrap();
        assert_eq!(
            *sol.optimality(),
            Optimality::BudgetExhausted {
                reason: Exhaustion::Shutdown
            },
            "{id}"
        );
        assert_eq!(sol.stats().nodes, 0, "{id}: shutdown must not burn nodes");
    }
    // The wire distinguishes shutdown from a plain cancel.
    let summary = batch_summary_json(&report);
    assert!(summary.contains("\"reason\": \"shutdown\""), "{summary}");
    assert!(summary.contains("\"unstarted\": 3"), "{summary}");
}

#[test]
fn shared_memo_spreads_refutations_across_a_generation() {
    // Two non-coalescing jobs over the same tile universe: a ρ−1
    // refutation and a full certification. With `shared_memo` on they
    // feed one store, so the second job answers partly from the first
    // one's refutations — visible in the summary's memo counters.
    let jobs = || {
        let mut refute = SolveJob::new("refute", 8);
        refute.objective = Objective::WithinBudget(8);
        refute.symmetry = Some(SymmetryMode::Off);
        let mut certify = SolveJob::new("certify", 8);
        certify.symmetry = Some(SymmetryMode::Off);
        [refute, certify]
    };

    let mut baseline = service();
    for job in jobs() {
        baseline.submit(job).unwrap();
    }
    let cold = baseline.drain();
    assert_eq!(cold.stats.solved, 2);
    assert_eq!(cold.stats.shared_hits, 0, "private memos cannot cross-hit");

    let mut shared = SolveService::new(ServiceConfig {
        shared_memo: true,
        ..ServiceConfig::default()
    });
    for job in jobs() {
        shared.submit(job).unwrap();
    }
    let warm = shared.drain();
    assert_eq!(warm.stats.solved, 2);
    assert!(
        warm.stats.shared_hits > 0,
        "the generation's store must carry refutations between jobs"
    );
    // Same verdicts either way — sharing is an accelerator, not an oracle.
    for id in ["refute", "certify"] {
        let a = by_id(&cold, id).solution.as_ref().unwrap();
        let b = by_id(&warm, id).solution.as_ref().unwrap();
        assert_eq!(a.size(), b.size(), "{id}");
    }
    assert!(
        by_id(&warm, "certify").solution.as_ref().unwrap().stats().nodes
            <= by_id(&cold, "certify").solution.as_ref().unwrap().stats().nodes,
        "sharing must not expand the certification"
    );
}

#[test]
fn certificate_cache_answers_repeat_requests_without_running() {
    // First service run: cold, records the certificate and persists it.
    let mut first = service();
    first.set_cert_cache(CertCache::new());
    first.submit(SolveJob::new("orig", 6)).unwrap();
    let cold = first.drain();
    let orig = by_id(&cold, "orig").solution.as_ref().unwrap();
    assert!(!orig.cached());
    assert!(orig.stats().nodes > 0);
    assert_eq!(cold.stats.cert_cache_hits, 0);
    let doc = first.cert_cache_json().expect("cache installed");

    // Second run, handed the persisted document: a key-identical job
    // (different id — ids are blanked out of the cache key, exactly as
    // in coalescing) answers from the certificate with zero kernel
    // nodes, and so does its coalesced twin.
    let cache = CertCache::from_json(&doc).expect("persisted cache loads");
    assert_eq!(cache.rejected_on_load(), 0);
    let mut second = service();
    second.set_cert_cache(cache);
    second.submit(SolveJob::new("repeat", 6)).unwrap();
    second.submit(SolveJob::new("repeat-twin", 6)).unwrap();
    let warm = second.drain();
    assert_eq!(warm.stats.cert_cache_hits, 2);
    for id in ["repeat", "repeat-twin"] {
        let sol = by_id(&warm, id).solution.as_ref().unwrap();
        assert!(sol.cached(), "{id} must be served from the cache");
        assert_eq!(sol.stats().nodes, 0, "{id} must not run the kernel");
        assert_eq!(sol.size(), orig.size(), "{id} verdict must match");
        assert!(matches!(sol.optimality(), Optimality::Optimal { .. }));
        // The served document still validates end to end.
        let rendered = json::solution_to_json(sol);
        json::covering_from_solution_json(&rendered)
            .expect("cached covering parses")
            .validate()
            .expect("cached covering validates");
    }
    // A *different* request misses the cache and runs normally.
    let mut third = service();
    third.set_cert_cache(CertCache::from_json(&doc).unwrap());
    third.submit(SolveJob::new("other", 7)).unwrap();
    let miss = third.drain();
    assert_eq!(miss.stats.cert_cache_hits, 0);
    let other = by_id(&miss, "other").solution.as_ref().unwrap();
    assert!(!other.cached());
    // ...and is recorded, growing the persisted document.
    let grown = CertCache::from_json(&third.cert_cache_json().unwrap()).unwrap();
    assert_eq!(grown.len(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cache keyed equality: a repeated key always returns the same
    /// allocation (and counts a hit); the key fully determines the
    /// universe shape.
    #[test]
    fn cache_key_determines_identity(
        n in 4u32..9,
        len_off in 0u32..3,
        gap in 1u32..9,
    ) {
        let key = (n, (3 + len_off).min(n), gap.min(n));
        let mut cache = UniverseCache::new(usize::MAX);
        let (a, hit_a) = cache.get_or_build(key);
        let (b, hit_b) = cache.get_or_build(key);
        prop_assert!(!hit_a && hit_b);
        prop_assert!(Arc::ptr_eq(&a, &b));
        // A fresh build from the same key is structurally identical.
        let mut other = UniverseCache::new(usize::MAX);
        let (c, _) = other.get_or_build(key);
        prop_assert_eq!(a.len(), c.len());
        prop_assert_eq!(a.approx_bytes(), c.approx_bytes());
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);
    }

    /// The (n, max_len, max_gap) key is what SolveJob exposes, and jobs
    /// differing only in spec/objective share it.
    #[test]
    fn universe_key_ignores_spec_and_objective(
        n in 4u32..9,
        budget in 1u32..20,
    ) {
        let complete = SolveJob::new("x", n);
        let mut partial = SolveJob::new("y", n);
        partial.requests = Some(vec![(0, 2)]);
        partial.objective = Objective::WithinBudget(budget);
        prop_assert_eq!(complete.universe_key(), partial.universe_key());
    }

    /// Chaos invariant: under ANY seeded fault plan, every submitted job
    /// reaches exactly one terminal status (drain returns — no waiter
    /// hangs), the per-status counts partition the batch, and every
    /// emitted covering still re-validates through the wire format.
    #[test]
    fn any_fault_plan_yields_exactly_one_terminal_status_per_job(
        seed in any::<u64>(),
        ns in prop::collection::vec(6u32..9, 3..6),
        faults in prop::collection::vec(
            (0u8..3, 1u64..8, 0u64..3),
            0..5,
        ),
    ) {
        // Plans are built over the wire format — the same path CI uses.
        let mut plan = format!(
            r#"{{"format": "cyclecover-fault-plan", "version": 1, "seed": {seed}, "faults": ["#
        );
        for (i, (kind, nth, ms)) in faults.iter().enumerate() {
            if i > 0 {
                plan.push_str(", ");
            }
            let f = match kind {
                // Every third fault targets job "p0" by id (the poison /
                // retry-exhaustion path); the rest fire by dispatch count.
                0 if i % 3 == 2 => r#"{"job": "p0", "kind": "panic"}"#.to_string(),
                0 => format!(r#"{{"on_solve": {nth}, "kind": "panic"}}"#),
                1 => format!(r#"{{"on_solve": {nth}, "kind": "deadline"}}"#),
                _ => format!(r#"{{"on_solve": {nth}, "kind": "stall", "ms": {ms}}}"#),
            };
            plan.push_str(&f);
        }
        plan.push_str("]}");
        let mut svc = chaos_service(&plan, 1);
        for (i, &n) in ns.iter().enumerate() {
            let mut job = SolveJob::new(format!("p{i}"), n);
            if i % 2 == 1 {
                job.fallback = vec!["greedy".to_string()];
            }
            svc.submit(job).unwrap();
        }
        // One exact duplicate: coalesced waiters must share the terminal
        // status, whatever it is. (No deadline: EDF would promote a
        // deadlined twin to group primary, flipping the coalesced flags.)
        svc.submit(SolveJob::new("p0-twin", ns[0])).unwrap();

        let report = svc.drain();
        prop_assert_eq!(report.jobs.len(), ns.len() + 1);
        let st = &report.stats;
        prop_assert_eq!(
            st.solved + st.expired + st.errors + st.failed + st.unstarted,
            st.submitted,
            "statuses must partition the batch"
        );
        for r in &report.jobs {
            // Exactly one terminal outcome: an error XOR a solution
            // document (expired/unstarted jobs carry their rejection
            // document).
            prop_assert!(r.error.is_some() ^ r.solution.is_some(), "{}", r.id);
            let Some(sol) = r.solution.as_ref() else { continue };
            // A failure detail appears iff the answer is terminal-failed.
            prop_assert_eq!(
                r.failure.is_some(),
                matches!(sol.optimality(), Optimality::Failed { .. }),
                "{}", r.id
            );
            // Every covering that came out re-validates (complete specs
            // throughout, so full validation applies).
            if sol.covering().is_some() {
                let doc = json::solution_to_json(sol);
                let covering = json::covering_from_solution_json(&doc);
                prop_assert!(covering.is_ok(), "{}: {:?}", r.id, covering.err());
                let valid = covering.unwrap().validate();
                prop_assert!(valid.is_ok(), "{}: {:?}", r.id, valid.err());
            }
        }
        // The twin coalesced with p0 and shares its terminal status.
        let twin = by_id(&report, "p0-twin");
        let p0 = by_id(&report, "p0");
        prop_assert!(twin.coalesced);
        match (&p0.solution, &twin.solution) {
            (Some(a), Some(b)) => prop_assert_eq!(a.optimality(), b.optimality()),
            (a, b) => prop_assert!(false, "p0 {:?} vs twin {:?}", a.is_some(), b.is_some()),
        }
    }
}
